#!/usr/bin/env python
"""Multi-core ORAM contention: many cores, one oblivious memory.

The paper's platform is a tiled multicore sharing a single memory
controller; because a single ORAM access saturates the pin bandwidth, the
controller serializes *everyone*.  This example co-runs 1, 2, and 4 copies
of a memory-hungry workload on the shared ORAM and shows (a) how completion
time degrades with core count, (b) that PrORAM's access savings help every
core, and (c) that the shared LLC lets PrORAM merge pairs whose halves are
touched by *different* cores.

Run:
    python examples/multicore_contention.py
"""

from repro.analysis.experiments import experiment_config
from repro.sim.multicore import MultiCoreSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


def hungry_trace(name: str, seed: int, footprint=8192, n=15_000) -> Trace:
    """A scan-heavy, memory-bound program."""
    rng = DeterministicRng(seed)
    trace = Trace(name, footprint_blocks=footprint)
    pointer = 0
    for _ in range(n):
        if rng.random() < 0.8:
            addr = pointer
            pointer = (pointer + 1) % footprint
        else:
            addr = rng.randint(0, footprint - 1)
        trace.append(rng.expovariate_int(120), addr)
    return trace


def run(scheme: str, cores: int) -> float:
    traces = [hungry_trace(f"w{i}", seed=10 + i) for i in range(cores)]
    system = MultiCoreSystem.build(scheme, traces, config=experiment_config())
    results = system.run(traces)
    return max(r.cycles for r in results)


def main() -> None:
    print("completion time (max over cores) for N copies of the workload:\n")
    print(f"{'cores':>5s} {'oram':>14s} {'dyn':>14s} {'PrORAM gain':>12s}")
    base_one = None
    for cores in (1, 2, 4):
        oram_cycles = run("oram", cores)
        dyn_cycles = run("dyn", cores)
        if base_one is None:
            base_one = oram_cycles
        gain = oram_cycles / dyn_cycles - 1
        print(
            f"{cores:5d} {oram_cycles:14d} {dyn_cycles:14d} {gain:+12.1%}"
            f"   (oram {oram_cycles / base_one:.2f}x of 1-core)"
        )
    print(
        "\nThe serialized ORAM makes co-runners queue; PrORAM's halved\n"
        "access counts are worth the most exactly when the controller is\n"
        "the bottleneck.  Security note: the interleaved access stream is\n"
        "one uniform sequence -- the bus reveals nothing about which core\n"
        "(or which program) is active."
    )


if __name__ == "__main__":
    main()
