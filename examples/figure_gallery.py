#!/usr/bin/env python
"""Render the recorded figure tables as terminal bar charts.

After a benchmark run (``pytest benchmarks/ --benchmark-only``) every
figure's series is written to ``benchmarks/results/*.txt``.  This example
re-renders the key ones as bar charts so the paper's shapes are visible at
a glance — who wins, where the crossovers fall.

Run:
    python examples/figure_gallery.py [results_dir]
"""

import sys
from pathlib import Path

from repro.analysis.charts import grouped_bar_chart


def parse_table(path: Path):
    """Parse a recorded table into (title, headers, rows-of-strings)."""
    lines = [line.rstrip("\n") for line in path.read_text().splitlines() if line.strip()]
    title = lines[0]
    headers = lines[1].split()
    rows = [line.split() for line in lines[3:]]
    return title, headers, rows


def numeric(cell: str):
    try:
        return float(cell.replace("+", ""))
    except ValueError:
        return None


def chart_from_table(path: Path, series_columns):
    title, headers, rows = parse_table(path)
    labels = []
    series = {name: [] for name in series_columns}
    for row in rows:
        values = dict(zip(headers, row))
        picked = {name: numeric(values.get(name, "")) for name in series_columns}
        if any(v is None for v in picked.values()):
            continue
        labels.append(row[0])
        for name, value in picked.items():
            series[name].append(value)
    if not labels:
        return f"{title}\n  (no numeric rows)"
    return grouped_bar_chart(labels, series, title=title, width=36)


GALLERY = [
    ("fig06a_locality_sweep.txt", ["stat", "dyn"]),
    ("fig07_sbsize_sweep.txt", ["stat", "dyn"]),
    ("fig08a_splash2.txt", ["stat", "dyn"]),
    ("fig08b_spec06.txt", ["stat", "dyn"]),
    ("fig08c_dbms.txt", ["stat", "dyn"]),
    ("fig09a_splash2_miss_rate.txt", ["stat", "dyn"]),
]


def main() -> None:
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).parent.parent / "benchmarks" / "results"
    )
    if not results.is_dir():
        raise SystemExit(
            f"no results at {results}; run `pytest benchmarks/ --benchmark-only` first"
        )
    shown = 0
    for name, columns in GALLERY:
        path = results / name
        if not path.exists():
            continue
        print(chart_from_table(path, columns))
        print()
        shown += 1
    if not shown:
        raise SystemExit("no recorded figures found; run the benchmark suite first")


if __name__ == "__main__":
    main()
