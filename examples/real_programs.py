#!/usr/bin/env python
"""Run *real programs* obliviously: capture, simulate, compare.

The other examples use statistical workload models; this one records the
memory behaviour of three actual algorithms through the instrumented heap
(`repro.workloads.capture`) and feeds the captured traces to the
secure-processor simulator:

* naive matrix multiply     -- streaming rows: PrORAM's best case;
* random pointer chasing    -- zero spatial locality: PrORAM must do no harm;
* repeated binary search    -- hot top-of-tree, random leaves: in between;
* breadth-first search      -- streaming queue + random adjacency: mixed.

Run:
    python examples/real_programs.py
"""

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.experiments import experiment_config, run_schemes
from repro.workloads.capture import (
    record_bfs,
    record_binary_search,
    record_matmul,
    record_pointer_chase,
)


def main() -> None:
    programs = {
        "matmul": record_matmul(n=40),
        "chase": record_pointer_chase(nodes=8192, hops=30_000),
        "bsearch": record_binary_search(elements=1 << 15, lookups=3_000),
        "bfs": record_bfs(nodes=8192, avg_degree=4),
    }
    config = experiment_config()
    stat_gains, dyn_gains = [], []
    for name, trace in programs.items():
        print(
            f"{name}: captured {len(trace)} accesses over "
            f"{trace.footprint_blocks} blocks"
        )
        res = run_schemes(trace, ["oram", "stat", "dyn"], config=config, warmup_fraction=0.4)
        stat_gains.append(res["stat"].speedup_over(res["oram"]))
        dyn_gains.append(res["dyn"].speedup_over(res["oram"]))

    print()
    print(
        grouped_bar_chart(
            list(programs),
            {"stat": stat_gains, "dyn": dyn_gains},
            title="speedup over baseline ORAM (captured programs)",
        )
    )
    print()
    print(
        "PrORAM harvests the matrix rows, ignores the pointer chase, and\n"
        "picks up whatever block pairs the search's hot tree levels offer."
    )


if __name__ == "__main__":
    main()
