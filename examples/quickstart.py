#!/usr/bin/env python
"""Quickstart: simulate PrORAM vs baseline Path ORAM in ~20 lines.

Builds the paper's secure processor (in-order core, L1 + LLC, Path ORAM
main memory), runs a synthetic workload with 80% spatial locality through
the baseline ORAM, the static super block scheme, and PrORAM's dynamic
scheme, and prints the headline numbers.

Run:
    python examples/quickstart.py
"""

from repro import locality_mix_trace, run_schemes
from repro.analysis.experiments import experiment_config


def main() -> None:
    # A synthetic program: 80% of its data is scanned sequentially, the
    # rest is accessed at random.  12k blocks x 128 B = 1.5 MB footprint,
    # three times the 512 KB LLC.
    trace = locality_mix_trace(locality=0.8, footprint_blocks=12_288, accesses=60_000)

    # Run the same trace through four memory systems.  warmup_fraction
    # discards the cold-cache / merge-training prefix so the comparison is
    # steady state, like the paper's long Graphite runs.
    results = run_schemes(
        trace,
        ["dram", "oram", "stat", "dyn"],
        config=experiment_config(),
        warmup_fraction=0.5,
    )

    dram, oram = results["dram"], results["oram"]
    print(f"workload: {trace.name}, {len(trace)} memory references")
    print(f"ORAM slowdown over insecure DRAM: {oram.cycles / dram.cycles:.1f}x")
    print()
    print(f"{'scheme':8s} {'cycles':>12s} {'LLC misses':>11s} {'ORAM accesses':>14s} {'speedup':>8s}")
    for name in ("oram", "stat", "dyn"):
        r = results[name]
        print(
            f"{name:8s} {r.cycles:12d} {r.llc_misses:11d} "
            f"{r.total_memory_accesses:14d} {r.speedup_over(oram):+8.1%}"
        )
    dyn = results["dyn"]
    print()
    print(f"PrORAM merged {dyn.merges} super blocks and broke {dyn.breaks};")
    print(
        f"prefetch hit rate "
        f"{dyn.prefetch_hits}/{dyn.prefetch_hits + dyn.prefetch_misses} "
        f"on prefetched blocks."
    )


if __name__ == "__main__":
    main()
