#!/usr/bin/env python
"""Watch the stash breathe: why super blocks need background eviction.

The stash is Path ORAM's pressure gauge (sections 2.4 and 5.5.3).  This
example profiles its occupancy, access by access, under the baseline ORAM,
the static super block scheme, and PrORAM on a locality-rich workload --
showing how pair fetches raise the operating point, how background
evictions cap it, and how PrORAM's adaptive throttle keeps pressure lower
than blind static merging.

Run:
    python examples/stash_pressure.py
"""

from repro.analysis.charts import sparkline
from repro.analysis.experiments import experiment_config
from repro.analysis.stash_study import compare_schemes
from repro.workloads.base import trace_for
from repro.workloads.splash2 import SPLASH2_BY_NAME


def main() -> None:
    trace = trace_for(SPLASH2_BY_NAME["ocean_c"], accesses=40_000)
    config = experiment_config()
    print(
        f"workload: ocean_c, {len(trace)} references, "
        f"stash capacity {config.oram.stash_blocks} blocks\n"
    )
    profiles = compare_schemes(trace, ("oram", "stat", "dyn"), config=config)
    for profile in profiles:
        print(profile.summary())
    print()
    print("occupancy over time (each glyph = ~200 accesses):")
    for profile in profiles:
        stride = max(1, len(profile.samples) // 80)
        print(f"  {profile.scheme:5s} {sparkline(profile.samples[::stride])}")
    print()
    baseline, static, dynamic = profiles
    print(
        f"pair fetches raise mean occupancy from {baseline.mean:.0f} "
        f"(baseline) to {static.mean:.0f} (static); PrORAM sits at "
        f"{dynamic.mean:.0f} with {dynamic.background_evictions} background "
        f"evictions vs the static scheme's {static.background_evictions}."
    )


if __name__ == "__main__":
    main()
