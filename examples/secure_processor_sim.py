#!/usr/bin/env python
"""Reproduce one Figure 8 bar: a named benchmark across all schemes.

Usage:
    python examples/secure_processor_sim.py [benchmark] [accesses]

``benchmark`` is any of the paper's workloads -- the fourteen Splash2 names
(water_ns ... ocean_nc), the ten SPEC06 names (h264 ... mcf), or YCSB /
TPCC.  Default: ocean_c, the paper's flagship (42% gain for PrORAM).
"""

import sys

from repro.analysis.experiments import experiment_config, run_schemes
from repro.analysis.tables import format_table
from repro.workloads.base import trace_for
from repro.workloads.dbms import dbms_trace
from repro.workloads.spec06 import SPEC06_BY_NAME
from repro.workloads.splash2 import SPLASH2_BY_NAME


def build_trace(name: str, accesses: int):
    if name in SPLASH2_BY_NAME:
        return trace_for(SPLASH2_BY_NAME[name], accesses=accesses)
    if name in SPEC06_BY_NAME:
        return trace_for(SPEC06_BY_NAME[name], accesses=accesses)
    if name in ("YCSB", "TPCC"):
        return dbms_trace(name, accesses=accesses)
    known = list(SPLASH2_BY_NAME) + list(SPEC06_BY_NAME) + ["YCSB", "TPCC"]
    raise SystemExit(f"unknown benchmark '{name}'; choose from: {', '.join(known)}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ocean_c"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000
    trace = build_trace(name, accesses)
    print(f"Simulating {name}: {len(trace)} references over {trace.footprint_blocks} blocks ...")

    results = run_schemes(
        trace,
        ["dram", "oram", "stat", "dyn"],
        config=experiment_config(),
        warmup_fraction=0.5,
    )
    oram = results["oram"]
    rows = []
    for scheme in ("dram", "oram", "stat", "dyn"):
        r = results[scheme]
        rows.append(
            [
                scheme,
                r.cycles,
                r.llc_misses,
                r.total_memory_accesses,
                r.speedup_over(oram),
                r.normalized_memory_accesses(oram) if oram.total_memory_accesses else 0.0,
            ]
        )
    print(
        format_table(
            ["scheme", "cycles", "llc_misses", "mem_accesses", "speedup_vs_oram", "norm_energy"],
            rows,
        )
    )
    print()
    print(f"ORAM overhead over DRAM: {oram.cycles / results['dram'].cycles:.1f}x")
    dyn = results["dyn"]
    print(
        f"PrORAM: {dyn.merges} merges, {dyn.breaks} breaks, "
        f"prefetch miss rate {dyn.prefetch_miss_rate:.1%}, "
        f"background eviction rate {dyn.background_eviction_rate:.1%}"
    )


if __name__ == "__main__":
    main()
