#!/usr/bin/env python
"""A functional oblivious key-value store, audited by a curious adversary.

Demonstrates the *data path* of the Path ORAM substrate: values are stored
with probabilistic encryption, moved by real path accesses, and survive
background evictions -- while an attached observer records exactly what an
adversary on the memory bus would see, and statistical tests confirm the
access pattern leaks nothing.

Run:
    python examples/oblivious_kv_store.py
"""

from repro import AccessObserver, ObliviousKVStore
from repro.config import ORAMConfig
from repro.security.statistics import chi_square_uniformity, lag_autocorrelation
from repro.utils.rng import DeterministicRng


def main() -> None:
    observer = AccessObserver()
    store = ObliviousKVStore(
        config=ORAMConfig(levels=8, bucket_size=4, stash_blocks=60, utilization=0.5),
        observer=observer,
    )
    print(f"store capacity: {store.capacity} keys x {store.payload_bytes} B values")

    # ---- functional use -------------------------------------------------
    store.put(17, b"attack at dawn")
    store.put(42, b"the answer")
    assert store.get(17) == b"attack at dawn"
    assert store.get(42) == b"the answer"
    store.delete(17)
    assert store.get(17) is None
    print("put/get/delete round-trips: ok")

    # A burst of random writes, then verify everything.
    rng = DeterministicRng(7)
    expected = {}
    for i in range(500):
        key = rng.randint(0, store.capacity - 1)
        value = f"value-{i}".encode()
        store.put(key, value)
        expected[key] = value
    assert all(store.get(k) == v for k, v in expected.items())
    store.oram.check_invariants()
    print(f"500 random writes verified; {store.access_count()} total path accesses")

    # ---- what the adversary saw -----------------------------------------
    leaves = observer.leaves()
    print(f"\nadversary observed {len(leaves)} path accesses")
    num_leaves = store.config.num_leaves
    _, p_uniform = chi_square_uniformity(leaves, num_leaves)
    autocorr = lag_autocorrelation(leaves, lag=1)
    print(f"uniformity over {num_leaves} leaves: chi^2 p-value = {p_uniform:.3f}")
    print(f"lag-1 autocorrelation (unlinkability): {autocorr:+.4f}")
    if p_uniform > 0.001 and abs(autocorr) < 0.05:
        print("=> the access pattern is indistinguishable from random: oblivious.")
    else:
        print("=> WARNING: access pattern shows structure!")

    # The same key accessed twice touches unrelated paths.
    before = len(observer)
    store.get(42)
    store.get(42)
    first, second = observer.leaves()[before], observer.leaves()[before + 1]
    print(f"\nsame key, two reads -> paths {first} and {second} (unlinkable)")


if __name__ == "__main__":
    main()
