#!/usr/bin/env python
"""Timing-channel protection: periodic ORAM accesses (sections 2.5, 5.6).

Even a perfect ORAM leaks through *when* accesses happen: a burst of memory
traffic reveals a loop, silence reveals computation.  The fix is a strictly
periodic access schedule (one access every Oint cycles, dummies filling
idle slots).  This example shows:

1. the adversary-visible access COUNT over a horizon is identical for a
   memory-hungry and an almost-idle program once periodicity is on;
2. the performance cost of periodicity at the paper's Oint = 100 is small;
3. PrORAM keeps its gains under the periodic schedule (Figure 15).

Run:
    python examples/timing_channel_demo.py
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.workloads.base import trace_for
from repro.workloads.splash2 import SPLASH2_BY_NAME
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


def make_traces(footprint=4096, horizon_refs=20_000):
    """Two programs with identical length but opposite memory appetites."""
    rng = DeterministicRng(5)
    hungry = Trace("hungry", footprint_blocks=footprint)
    idle = Trace("idle", footprint_blocks=footprint)
    for _ in range(horizon_refs):
        hungry.append(2, rng.randint(0, footprint - 1))
        # The idle program computes ~50x longer between references and
        # stays in a tiny hot set (it almost never touches the ORAM).
        idle.append(100, rng.randint(0, 63))
    return hungry, idle


def main() -> None:
    config = experiment_config()

    # ---- 1. the schedule hides memory appetite --------------------------
    hungry, idle = make_traces()
    res_hungry = run_schemes(hungry, ["oram_intvl"], config=config)["oram_intvl"]
    res_idle = run_schemes(idle, ["oram_intvl"], config=config)["oram_intvl"]

    def rate(result):
        return result.total_memory_accesses / result.cycles

    print("periodic ORAM, Oint = 100 cycles:")
    print(
        f"  memory-hungry program: {res_hungry.total_memory_accesses} accesses "
        f"in {res_hungry.cycles} cycles  ({rate(res_hungry) * 1e3:.3f} /kcycle)"
    )
    print(
        f"  almost-idle program:   {res_idle.total_memory_accesses} accesses "
        f"in {res_idle.cycles} cycles  ({rate(res_idle) * 1e3:.3f} /kcycle)"
    )
    print(
        "  => the adversary sees the same fixed access *rate* either way;\n"
        "     dummies fill every idle slot "
        f"({res_idle.dummy_accesses} dummies for the idle program)."
    )

    # ---- 2 & 3. cost of periodicity, PrORAM under periodicity -----------
    trace = trace_for(SPLASH2_BY_NAME["ocean_c"], accesses=60_000)
    res = run_schemes(
        trace, ["oram", "oram_intvl", "dyn_intvl"], config=config, warmup_fraction=0.5
    )
    base = res["oram_intvl"]
    print(f"\nocean_c under periodic accesses (Oint = 100):")
    print(f"  periodicity cost vs free-running ORAM: "
          f"{base.cycles / res['oram'].cycles - 1:+.1%}")
    print(f"  PrORAM gain over the periodic baseline: "
          f"{res['dyn_intvl'].speedup_over(base):+.1%}")
    print("  => timing protection and dynamic super blocks compose.")


if __name__ == "__main__":
    main()
