#!/usr/bin/env python
"""DBMS-on-ORAM: the paper's YCSB and TPC-C experiment (Figure 8c).

Private databases are the paper's motivating cloud workload: an OLTP engine
whose tables live in ORAM so the server learns nothing from the access
pattern.  This example generates transaction-level traces for a YCSB-style
key-value table (Zipfian rows, whole-row scans -- lots of harvestable
locality) and a TPC-C-style order workload (small scattered rows, heavy
writes -- hostile to blind prefetching), then compares schemes.

Run:
    python examples/database_oram.py
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.analysis.tables import format_table
from repro.workloads.dbms import tpcc_trace, ycsb_trace


def compare(title, trace):
    print(f"\n=== {title}: {len(trace)} block references, "
          f"{trace.footprint_blocks} blocks, {trace.write_fraction:.0%} writes ===")
    results = run_schemes(
        trace, ["oram", "stat", "dyn"], config=experiment_config(), warmup_fraction=0.5
    )
    oram = results["oram"]
    rows = []
    for scheme in ("oram", "stat", "dyn"):
        r = results[scheme]
        rows.append(
            [
                scheme,
                r.cycles,
                r.speedup_over(oram),
                r.normalized_memory_accesses(oram),
                r.prefetch_miss_rate,
            ]
        )
    print(format_table(["scheme", "cycles", "speedup", "norm_energy", "pf_miss_rate"], rows))
    return results


def main() -> None:
    ycsb = compare("YCSB (read-mostly key-value, 1 KB rows)", ycsb_trace(operations=8_000))
    tpcc = compare("TPC-C (OLTP transactions, scattered small rows)", tpcc_trace(transactions=2_500))

    ygain = ycsb["dyn"].speedup_over(ycsb["oram"])
    tgain = tpcc["dyn"].speedup_over(tpcc["oram"])
    print(
        f"\nPrORAM gains: YCSB {ygain:+.1%} vs TPCC {tgain:+.1%} "
        "(the paper reports 23.6% vs 5%: row scans are harvestable locality, "
        "scattered OLTP rows are not)"
    )


if __name__ == "__main__":
    main()
