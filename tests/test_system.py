"""Integration tests for the full secure-processor system."""

import pytest

from repro.analysis.experiments import run_schemes
from repro.config import CacheConfig, ORAMConfig, SystemConfig
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


def small_config(bucket_size=4):
    return SystemConfig(
        oram=ORAMConfig(levels=8, bucket_size=bucket_size, stash_blocks=60, utilization=0.5),
        l1=CacheConfig(capacity_bytes=4 * 1024, associativity=4),
        llc=CacheConfig(capacity_bytes=16 * 1024, associativity=8, hit_latency=8),
    )


def sequential_trace(n=2000, footprint=512, gap=10):
    trace = Trace("seq", footprint_blocks=footprint)
    for i in range(n):
        trace.append(gap, i % footprint)
    return trace


def random_trace(n=2000, footprint=512, gap=10, seed=1):
    rng = DeterministicRng(seed)
    trace = Trace("rand", footprint_blocks=footprint)
    for _ in range(n):
        trace.append(gap, rng.randint(0, footprint - 1))
    return trace


class TestBuild:
    def test_all_scheme_labels_build(self):
        for label in ["dram", "dram_pre", "dram_spre", "oram", "oram_pre",
                      "oram_spre", "stat", "dyn",
                      "dyn_sm_nb", "dyn_am_nb", "dyn_am_ab", "dyn_sm_ab",
                      "oram_intvl", "stat_intvl", "dyn_intvl"]:
            system = SecureSystem.build(label, footprint_blocks=256, config=small_config())
            assert system.label == label

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            SecureSystem.build("bogus", footprint_blocks=256)
        with pytest.raises(ValueError):
            SecureSystem.build("dyn_xx_yy", footprint_blocks=256)

    def test_periodic_dram_rejected(self):
        with pytest.raises(ValueError):
            SecureSystem.build("dram_intvl", footprint_blocks=256)


class TestBasicRuns:
    def test_dram_faster_than_oram(self):
        trace = sequential_trace()
        res = run_schemes(trace, ["dram", "oram"], config=small_config())
        assert res["oram"].cycles > 2 * res["dram"].cycles

    def test_deterministic_replay(self):
        trace = random_trace()
        a = SecureSystem.build("dyn", trace.footprint_blocks, small_config()).run(trace)
        b = SecureSystem.build("dyn", trace.footprint_blocks, small_config()).run(trace)
        assert a.cycles == b.cycles
        assert a.llc_misses == b.llc_misses
        assert a.merges == b.merges

    def test_cached_workload_is_cheap(self):
        # Footprint far below the LLC: after the cold pass everything hits.
        trace = sequential_trace(n=2000, footprint=64)
        res = SecureSystem.build("oram", 64, small_config()).run(trace)
        assert res.l1_hits + res.llc_hits > 0.9 * len(trace)

    def test_oram_functional_state_consistent_after_run(self):
        trace = random_trace(n=1500)
        system = SecureSystem.build("dyn", trace.footprint_blocks, small_config())
        system.run(trace)
        system.backend.oram.check_invariants()

    def test_llc_contents_are_copies_of_oram_blocks(self):
        trace = random_trace(n=500)
        system = SecureSystem.build("oram", trace.footprint_blocks, small_config())
        system.run(trace)
        n = system.backend.oram.position_map.num_blocks
        for addr in system.hierarchy.resident_addresses():
            assert 0 <= addr < n


class TestWarmup:
    def test_warmup_excludes_cold_misses(self):
        trace = sequential_trace(n=1000, footprint=64)
        cold = SecureSystem.build("oram", 64, small_config()).run(trace)
        warm = SecureSystem.build("oram", 64, small_config()).run(trace, warmup_entries=500)
        assert warm.llc_misses < cold.llc_misses
        assert warm.cycles < cold.cycles
        assert warm.trace_entries == 500

    def test_run_schemes_warmup_fraction(self):
        trace = sequential_trace(n=1000, footprint=64)
        res = run_schemes(trace, ["oram"], config=small_config(), warmup_fraction=0.5)
        assert res["oram"].trace_entries == 500

    def test_bad_warmup_fraction(self):
        trace = sequential_trace(n=10)
        with pytest.raises(ValueError):
            run_schemes(trace, ["oram"], config=small_config(), warmup_fraction=1.0)


class TestSchemeComparisons:
    def test_static_beats_baseline_on_pure_sequential(self):
        trace = sequential_trace(n=4000, footprint=512, gap=10)
        res = run_schemes(trace, ["oram", "stat"], config=small_config(), warmup_fraction=0.3)
        assert res["stat"].speedup_over(res["oram"]) > 0.1
        assert res["stat"].llc_misses < res["oram"].llc_misses

    def test_dynamic_matches_baseline_on_random(self):
        trace = random_trace(n=4000, footprint=4096)
        res = run_schemes(trace, ["oram", "dyn"], config=small_config(), warmup_fraction=0.3)
        assert abs(res["dyn"].speedup_over(res["oram"])) < 0.05

    def test_dynamic_gains_on_sequential(self):
        trace = sequential_trace(n=6000, footprint=512, gap=10)
        res = run_schemes(trace, ["oram", "dyn"], config=small_config(), warmup_fraction=0.5)
        assert res["dyn"].speedup_over(res["oram"]) > 0.05
        # Merging happened during warmup (excluded from the delta); the
        # measured window shows its effect as prefetch hits.
        assert res["dyn"].prefetch_hits > 0

    def test_traditional_prefetch_helps_dram(self):
        trace = sequential_trace(n=4000, footprint=2048, gap=30)
        res = run_schemes(trace, ["dram", "dram_pre"], config=small_config(), warmup_fraction=0.3)
        assert res["dram_pre"].speedup_over(res["dram"]) > 0.0

    def test_traditional_prefetch_does_not_help_oram(self):
        trace = sequential_trace(n=3000, footprint=2048, gap=5)
        res = run_schemes(trace, ["oram", "oram_pre"], config=small_config(), warmup_fraction=0.3)
        # Memory bound: ORAM has no spare bandwidth for prefetches.
        assert res["oram_pre"].speedup_over(res["oram"]) < 0.05

    def test_periodic_oram_slower_but_close(self):
        trace = random_trace(n=2000, footprint=2048, gap=5)
        res = run_schemes(trace, ["oram", "oram_intvl"], config=small_config(), warmup_fraction=0.3)
        slowdown = res["oram_intvl"].normalized_completion_time(res["oram"])
        assert 1.0 <= slowdown < 1.5


class TestPendingFills:
    """Regression: stale in-flight prefetch fills must be purged when the
    line leaves the LLC, so a later re-fetch of the same address cannot
    stall on a dead completion cycle and the tracking dict stays bounded."""

    def test_evicted_prefetch_purges_pending_fill(self):
        system = SecureSystem.build("dram_pre", footprint_blocks=256, config=small_config())
        system.hierarchy.fill_prefetch(7)
        system._pending_fills[7] = 10**15  # fill still "in flight"
        system.hierarchy.invalidate(7)  # line leaves the LLC before use
        assert 7 not in system._pending_fills

    def test_pending_fills_bounded_by_llc_capacity(self):
        # Footprint far beyond the LLC: every prefetched line is eventually
        # evicted, so entries must not accumulate across the whole trace.
        trace = sequential_trace(n=6000, footprint=2048)
        system = SecureSystem.build("dram_pre", footprint_blocks=2048, config=small_config())
        system.run(trace)
        assert len(system._pending_fills) <= system.config.llc.num_lines

    def test_refetched_line_hits_without_stale_stall(self):
        system = SecureSystem.build("dram_pre", footprint_blocks=256, config=small_config())
        system.hierarchy.fill_prefetch(9)
        system._pending_fills[9] = 10**15
        system.hierarchy.invalidate(9)
        # Re-fetch on demand and hit it: the run loop must not pick up the
        # stale completion cycle.
        trace = Trace("refetch", footprint_blocks=256)
        trace.append(10, 9)
        trace.append(10, 9)
        result = system.run(trace)
        assert result.cycles < 10**12
