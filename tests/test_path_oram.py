"""Unit + property tests for the core Path ORAM protocol.

The central property (P1 in DESIGN.md): after any sequence of accesses,
every block is on the path of its mapped leaf or in the stash, nothing is
duplicated, and nothing is lost.  ``check_invariants`` asserts exactly
that; the hypothesis test drives random access sequences against it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ORAMConfig
from repro.oram.path_oram import PathORAM
from repro.security.observer import AccessObserver
from repro.utils.rng import DeterministicRng


def make_oram(levels=5, bucket_size=3, stash=30, utilization=0.5, seed=3, observer=None):
    config = ORAMConfig(
        levels=levels, bucket_size=bucket_size, stash_blocks=stash, utilization=utilization
    )
    return PathORAM(config, DeterministicRng(seed), observer=observer)


class TestConstruction:
    def test_population_conserves_blocks(self):
        oram = make_oram()
        oram.check_invariants()

    def test_double_populate_rejected(self):
        oram = make_oram()
        with pytest.raises(RuntimeError):
            oram.populate()

    def test_deferred_population(self):
        config = ORAMConfig(levels=4)
        oram = PathORAM(config, DeterministicRng(1), populate=False)
        assert oram.tree.occupancy() == 0
        oram.populate()
        oram.check_invariants()


class TestAccess:
    def test_access_returns_block_and_remaps(self):
        oram = make_oram()
        before = oram.position_map.leaf(7)
        blocks = oram.access([7], new_leaf=(before + 1) % oram.config.num_leaves)
        assert blocks[7].addr == 7
        assert oram.position_map.leaf(7) != before
        oram.check_invariants()

    def test_block_stays_in_oram_domain(self):
        oram = make_oram()
        oram.access([7])
        assert oram.locate(7) in ("tree", "stash")

    def test_super_block_access_shares_new_leaf(self):
        oram = make_oram()
        oram.position_map.remap([4, 5], leaf=oram.position_map.leaf(4))
        # Relocate physically so the invariant holds before the access:
        # easiest is to access each individually onto the shared leaf.
        oram2 = make_oram(seed=9)
        leaf = oram2.position_map.leaf(4)
        # force 5 onto the same leaf via an access with explicit new_leaf
        oram2.access([5], new_leaf=leaf)
        blocks = oram2.access([4, 5])
        assert set(blocks) == {4, 5}
        assert oram2.position_map.leaf(4) == oram2.position_map.leaf(5)
        oram2.check_invariants()

    def test_access_rejects_split_group(self):
        oram = make_oram(levels=6)
        a, b = 0, 1
        if oram.position_map.leaf(a) == oram.position_map.leaf(b):
            oram.position_map.set_leaf(b, (oram.position_map.leaf(b) + 1) % 64)
        with pytest.raises(ValueError):
            oram.access([a, b])

    def test_access_empty_rejected(self):
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access([])

    def test_begin_finish_protocol(self):
        oram = make_oram()
        blocks = oram.begin_access([3])
        assert 3 in blocks
        # Mid-access: the member is guaranteed to be in the stash.
        assert 3 in oram.stash
        with pytest.raises(RuntimeError):
            oram.begin_access([4])
        oram.finish_access()
        with pytest.raises(RuntimeError):
            oram.finish_access()
        oram.check_invariants()

    def test_remap_group_mid_access_moves_blocks(self):
        oram = make_oram()
        oram.begin_access([3])
        new_leaf = oram.remap_group([3])
        assert oram.position_map.leaf(3) == new_leaf
        assert oram.stash.peek(3).leaf == new_leaf
        oram.finish_access()
        oram.check_invariants()


class TestDummyAccessAndDrain:
    def test_dummy_access_does_not_remap(self):
        oram = make_oram()
        leaves_before = [oram.position_map.leaf(a) for a in range(10)]
        oram.dummy_access()
        assert [oram.position_map.leaf(a) for a in range(10)] == leaves_before
        oram.check_invariants()

    def test_dummy_access_never_grows_stash(self):
        oram = make_oram()
        for _ in range(20):
            before = len(oram.stash)
            oram.dummy_access()
            assert len(oram.stash) <= before

    def test_drain_stash_counts(self):
        oram = make_oram()
        assert oram.drain_stash() == 0  # nothing to do on a fresh ORAM

    def test_counters(self):
        oram = make_oram()
        oram.access([1])
        oram.dummy_access()
        assert oram.real_accesses == 1
        assert oram.dummy_accesses == 1


class TestObserver:
    def test_observer_sees_mapped_leaf(self):
        observer = AccessObserver()
        oram = make_oram(observer=observer)
        target = oram.position_map.leaf(5)
        oram.access([5])
        assert observer.accesses[-1].leaf == target
        assert observer.accesses[-1].kind == "real"

    def test_observer_sees_dummies(self):
        observer = AccessObserver()
        oram = make_oram(observer=observer)
        oram.dummy_access()
        assert observer.accesses[-1].kind == "dummy"


class TestInvariantProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
    def test_random_access_sequences_preserve_invariants(self, raw_addrs):
        oram = make_oram(levels=4, stash=25, seed=11)
        n = oram.position_map.num_blocks
        for raw in raw_addrs:
            oram.access([raw % n])
            oram.drain_stash()
        oram.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_interleaved_dummy_and_real(self, seed):
        rng = DeterministicRng(seed)
        oram = make_oram(levels=4, stash=25, seed=seed % 97)
        n = oram.position_map.num_blocks
        for _ in range(30):
            if rng.random() < 0.3:
                oram.dummy_access()
            else:
                oram.access([rng.randint(0, n - 1)])
        oram.check_invariants()
