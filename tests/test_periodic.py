"""Unit tests for the periodic (timing-channel protected) ORAM backend."""

from repro.config import DRAMConfig, ORAMConfig, TimingProtectionConfig
from repro.memory.periodic import PeriodicORAMBackend
from repro.observability import InMemoryRecorder
from repro.oram.super_block import BaselineScheme
from repro.security.observer import AccessObserver
from repro.utils.rng import DeterministicRng


def make_backend(interval=100, observer=None):
    return PeriodicORAMBackend(
        ORAMConfig(levels=7, bucket_size=4, stash_blocks=50, utilization=0.5),
        DRAMConfig(),
        BaselineScheme(),
        DeterministicRng(4),
        TimingProtectionConfig(enabled=True, interval_cycles=interval),
        observer=observer,
    )


class TestSchedule:
    def test_consecutive_accesses_spaced_by_interval(self):
        backend = make_backend(interval=100)
        first = backend.demand_access(1, now=0, is_write=False)
        second = backend.demand_access(2, now=first.completion_cycle, is_write=False)
        # The second access starts exactly Oint after the first finishes.
        gap = second.completion_cycle - first.completion_cycle
        assert gap >= 100 + backend.timing.path_cycles

    def test_idle_periods_filled_with_dummies(self):
        backend = make_backend(interval=100)
        first = backend.demand_access(1, now=0, is_write=False)
        # Arrive a long time later: slots in between must have fired.
        idle = 20 * (backend.timing.path_cycles + 100)
        backend.demand_access(2, now=first.completion_cycle + idle, is_write=False)
        assert backend.stats.dummy_accesses >= 18

    def test_request_waits_for_next_slot(self):
        backend = make_backend(interval=1000)
        first = backend.demand_access(1, now=0, is_write=False)
        # A request arriving mid-interval is delayed to the slot.
        second = backend.demand_access(2, now=first.completion_cycle + 1, is_write=False)
        assert second.completion_cycle >= first.completion_cycle + 1000

    def test_finalize_accounts_trailing_dummies(self):
        backend = make_backend(interval=100)
        backend.demand_access(1, now=0, is_write=False)
        before = backend.stats.dummy_accesses
        backend.finalize(now=50 * (backend.timing.path_cycles + 100))
        assert backend.stats.dummy_accesses > before


class TestSlotGridInvariant:
    """Regression tests for the timing-slot drift bug.

    The schedule used to be reset from each access's *completion* cycle,
    so any access train that ran long (PosMap misses, background
    evictions) or any request arriving mid-slot pushed every later access
    off the public grid -- data-dependent jitter in what is supposed to be
    a fixed cadence.  The invariant now: every access, real or dummy,
    issues at a cycle congruent to 0 modulo ``path_cycles + Oint``.
    """

    def test_issue_times_congruent_mod_period(self):
        backend = make_backend(interval=100)
        recorder = InMemoryRecorder()
        backend.set_recorder(recorder)
        period = backend.timing.path_cycles + backend.interval
        rng = DeterministicRng(9)
        now = 0
        for i in range(60):
            # Bursty mix: back-to-back demands, dirty write-backs,
            # prefetches, and idle stretches that land arrivals mid-slot.
            choice = rng.randbelow(4)
            if choice == 0:
                result = backend.demand_access(
                    1 + (i % 32), now=now, is_write=bool(i % 2)
                )
                now = result.completion_cycle
            elif choice == 1:
                backend.evict_line(1 + (i % 32), dirty=True, now=now)
                now = backend.busy_until
            elif choice == 2:
                result = backend.prefetch_access(33 + (i % 16), now=now)
                if result is not None:
                    now = result.completion_cycle
            else:
                now += 1 + rng.randbelow(3 * period)
        backend.finalize(now + 5 * period)
        starts = [r["start"] for r in recorder.records if "event" not in r]
        assert len(starts) >= 20
        assert all(start % period == 0 for start in starts)
        # The dummies covering unused/expired slots are on the grid too.
        dummy_slots = [
            r["slot"] for r in recorder.records if r.get("event") == "periodic_dummy"
        ]
        assert dummy_slots
        assert all(slot % period == 0 for slot in dummy_slots)

    def test_mid_slot_arrival_burns_open_slot_as_dummy(self):
        backend = make_backend(interval=100)
        period = backend.timing.path_cycles + backend.interval
        backend.demand_access(1, now=0, is_write=False)
        open_slot = backend._next_slot
        assert open_slot % period == 0
        before = backend.stats.dummy_accesses
        # Arriving strictly after the slot opened cannot use it: in
        # hardware that slot's access already began (as a dummy).
        backend.demand_access(2, now=open_slot + 7, is_write=False)
        assert backend.stats.dummy_accesses == before + 1
        assert backend._next_slot % period == 0


class TestObliviousSchedule:
    def test_adversary_sees_uniform_schedule_regardless_of_demand(self):
        """The access *count* over a horizon is determined by Oint alone."""
        horizon = 40 * 1448  # ~40 slots

        obs_busy = AccessObserver()
        busy = make_backend(interval=100, observer=obs_busy)
        now = 0
        for i in range(10):
            result = busy.demand_access(i + 1, now=now, is_write=False)
            now = result.completion_cycle
        busy.finalize(horizon)

        obs_idle = AccessObserver()
        idle = make_backend(interval=100, observer=obs_idle)
        idle.demand_access(1, now=0, is_write=False)
        idle.finalize(horizon)

        # Counting charged dummies too (some are charged without a
        # functional path read), total accesses match within rounding.
        busy_total = busy.stats.demand_requests + busy.stats.dummy_accesses + busy.stats.posmap_accesses
        idle_total = idle.stats.demand_requests + idle.stats.dummy_accesses + idle.stats.posmap_accesses
        assert abs(busy_total - idle_total) <= 3

    def test_writeback_rides_schedule(self):
        backend = make_backend(interval=100)
        backend.demand_access(1, now=0, is_write=False)
        busy_before = backend.busy_until
        backend.evict_line(1, dirty=True, now=busy_before)
        assert backend.busy_until >= busy_before + 100
        assert backend.stats.write_accesses == 1
