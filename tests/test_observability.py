"""Tests for the tracing & metrics subsystem (``repro.observability``).

Three layers are covered:

* unit: instruments, registry, recorders, JSONL round-trip, the live
  leaf-uniformity monitor;
* integration: spans emitted by real runs reconcile exactly with the
  pinned ``SimResult`` accounting (per-phase cycles, request counts,
  latency arithmetic), on single controllers, sharded banks, periodic
  backends, and fault-injected runs;
* non-perturbation: attaching a recorder must not change the simulated
  outcome, and the written JSONL must be a pure function of the seed.
"""

import dataclasses
import json

import pytest

from repro.analysis.experiments import experiment_config
from repro.faults import FaultConfig, FaultInjector
from repro.observability import (
    CycleHistogram,
    InMemoryRecorder,
    JsonlTraceRecorder,
    LeafUniformityMonitor,
    MetricsRegistry,
    NullRecorder,
    Span,
    attach_recorder,
    read_jsonl_trace,
)
from repro.observability.collect import collect_system, collect_trace, system_counters
from repro.profiling import Profiler
from repro.security.observer import AccessObserver
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace


def build_and_run(scheme="dyn", accesses=1500, recorder=None, **build_kwargs):
    trace = locality_mix_trace(0.8, footprint_blocks=4096, accesses=accesses)
    system = SecureSystem.build(
        scheme, trace.footprint_blocks, experiment_config(), **build_kwargs
    )
    if recorder is not None:
        system.attach_recorder(recorder)
    result = system.run(trace)
    return system, result


# --------------------------------------------------------------------- metrics
class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.set(2)
        counter.set(9)
        assert registry.value("a.b") == 9

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.set(3.5)
        assert registry.value("g") == 3.5

    def test_histogram_buckets_and_quantiles(self):
        histogram = CycleHistogram("h")
        with pytest.raises(ValueError):
            histogram.record(-1)
        assert histogram.quantile(0.5) == 0  # empty
        for value in (0, 1, 2, 3, 1348, 1348):
            histogram.record(value)
        assert histogram.total == 6
        assert histogram.sum == 2702
        assert histogram.mean == pytest.approx(2702 / 6)
        # 0 and 1 share bucket 0; 2 is in bucket 1 (upper bound 2).
        assert histogram.counts[0] == 2
        assert histogram.counts[1] == 1
        assert histogram.quantile(1.0) == 2048  # 1348 rounds up to 2^11
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_registry_exports_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc(2)
        registry.gauge("a.first").set(1)
        registry.histogram("m.mid").record(100)
        exported = registry.to_dict()
        assert list(exported) == sorted(exported)
        assert exported["z.last"] == {"kind": "counter", "value": 2}
        assert exported["m.mid"]["total"] == 1
        rendered = registry.render("report")
        assert "report:" in rendered
        assert "[a]" in rendered and "[m]" in rendered and "[z]" in rendered
        # Same content twice serializes identically.
        assert json.dumps(exported, sort_keys=True) == json.dumps(
            registry.to_dict(), sort_keys=True
        )


# ------------------------------------------------------------------- recorders
class TestRecorders:
    def test_null_recorder_normalized_to_none(self):
        system, _ = build_and_run(accesses=0)
        backend = system.backend
        backend.set_recorder(NullRecorder())
        assert backend.recorder is None
        recorder = InMemoryRecorder()
        backend.set_recorder(recorder)
        assert backend.recorder is recorder
        backend.set_recorder(None)
        assert backend.recorder is None

    def test_attach_recorder_noop_on_dram(self):
        trace = locality_mix_trace(0.8, accesses=10)
        system = SecureSystem.build("dram", trace.footprint_blocks, experiment_config())
        recorder = InMemoryRecorder()
        assert attach_recorder(system.backend, recorder) is recorder
        system.run(trace)  # run() tolerates a backend with no recorder
        assert recorder.records == []

    def test_in_memory_queries(self):
        recorder = InMemoryRecorder()
        recorder.record_event("run_start", workload="w")
        recorder.record_span(
            {
                "seq": recorder.next_seq(),
                "kind": "demand",
                "addr": 7,
                "shard": 0,
                "start": 0,
                "end": 1348,
                "phases": {"posmap": 0, "path_read": 1348},
                "fault_delay": 0,
                "retries": 0,
                "evictions": 0,
                "posmap_extra": 0,
                "stash": 3,
                "merges": 1,
                "breaks": 0,
            }
        )
        assert recorder.span_count() == 1
        assert len(list(recorder.events())) == 1
        span = next(recorder.spans())
        assert isinstance(span, Span)
        assert span.latency == 1348
        assert span.merges == 1
        assert recorder.phase_totals() == {"posmap": 0, "path_read": 1348, "fault": 0}

    def test_jsonl_roundtrip_and_determinism(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            recorder = JsonlTraceRecorder(str(path))
            build_and_run(accesses=400, recorder=recorder)
            recorder.close()
            recorder.close()  # idempotent
        first, second = (path.read_bytes() for path in paths)
        assert first == second  # fixed seed -> byte-identical trace file
        records = read_jsonl_trace(str(paths[0]))
        assert records
        assert records[0]["event"] == "run_start"
        assert records[-1]["event"] == "run_end"
        assert any("event" not in record for record in records)


# ----------------------------------------------------------------- integration
class TestTracedRuns:
    def test_tracing_does_not_perturb_simulation(self):
        _, untraced = build_and_run(accesses=1500)
        _, traced = build_and_run(accesses=1500, recorder=InMemoryRecorder())
        assert dataclasses.asdict(untraced) == dataclasses.asdict(traced)

    def test_spans_reconcile_with_sim_result(self):
        recorder = InMemoryRecorder()
        system, result = build_and_run(accesses=1500, recorder=recorder)
        spans = list(recorder.spans())
        # One span per pipeline trip: demand misses + dirty write-backs.
        assert len(spans) == result.demand_requests + result.write_accesses
        kinds = {span.kind for span in spans}
        assert "demand" in kinds
        # Exact per-phase reconciliation against the pinned accounting.
        totals = recorder.phase_totals()
        for name in ("posmap", "path_read", "remap", "writeback", "fault"):
            assert totals[name] == result.extra[f"phase_{name}_cycles"]
        # Span-local arithmetic: latency decomposes into phases + faults.
        sequences = [span.seq for span in spans]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        for span in spans:
            assert span.end - span.start == sum(span.phases.values()) + span.fault_delay
            assert span.shard == 0
        assert sum(span.merges for span in spans) == result.merges
        assert sum(span.breaks for span in spans) == result.breaks
        events = list(recorder.events())
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        assert events[-1]["cycles"] == result.cycles

    def test_sharded_bank_shares_one_sequence(self):
        recorder = InMemoryRecorder()
        system, result = build_and_run(accesses=1200, recorder=recorder, num_shards=2)
        bank = system.backend
        assert bank.recorder is recorder
        spans = list(recorder.spans())
        assert spans
        assert {span.shard for span in spans} == {0, 1}
        for span in spans:
            # Global addresses: the channel interleave is recoverable.
            assert span.addr % bank.num_shards == span.shard
        sequences = [span.seq for span in spans]
        assert sequences == sorted(sequences)

    def test_periodic_backend_emits_grid_spans_and_dummy_events(self):
        recorder = InMemoryRecorder()
        system, _ = build_and_run("dyn_intvl", accesses=250, recorder=recorder)
        backend = system.backend
        period = backend.timing.path_cycles + backend.interval
        spans = list(recorder.spans())
        assert spans
        assert all(span.start % period == 0 for span in spans)
        dummies = [e for e in recorder.events() if e["event"] == "periodic_dummy"]
        assert dummies
        assert all(event["slot"] % period == 0 for event in dummies)

    def test_fault_delays_attributed_to_spans(self):
        recorder = InMemoryRecorder()
        injector = FaultInjector(FaultConfig(seed=3, delay_rate=0.3, delay_cycles=500))
        system, result = build_and_run(
            accesses=600, recorder=recorder, fault_injector=injector
        )
        spans = list(recorder.spans())
        delayed = sum(span.fault_delay for span in spans)
        assert delayed > 0
        assert delayed == result.extra["fault_delay_cycles"]


# ------------------------------------------------------------------ collection
class TestCollection:
    def test_collect_system_matches_run(self):
        system, result = build_and_run(accesses=800)
        registry = system.metrics()
        assert registry.value("backend.demand_requests") == result.demand_requests
        assert registry.value("cache.llc_misses") == result.llc_misses
        assert registry.value("scheme.merges") == result.merges
        assert (
            registry.value("pipeline.phase_path_read_cycles")
            == result.extra["phase_path_read_cycles"]
        )
        # Callers may pass their own registry to aggregate into.
        merged = collect_system(system, MetricsRegistry())
        assert merged.to_dict() == registry.to_dict()

    def test_profiler_counters_come_from_collector(self):
        trace = locality_mix_trace(0.8, accesses=500)
        system = SecureSystem.build("dyn", trace.footprint_blocks, experiment_config())
        profiler = Profiler()
        profiler.attach(system)
        system.run(trace)
        assert profiler.profile is not None
        assert profiler.profile.counters == system_counters(system)
        # The flat keys are the registry names after the first dot.
        assert "demand_requests" in profiler.profile.counters
        assert "phase_posmap_cycles" in profiler.profile.counters

    def test_collect_trace_summarizes_spans(self):
        recorder = InMemoryRecorder()
        _, result = build_and_run(accesses=600, recorder=recorder)
        registry = collect_trace(recorder)
        assert registry.value("trace.spans.demand") == result.demand_requests
        assert registry.value("trace.events.run_start") == 1
        assert (
            registry.counter("trace.phase_path_read_cycles").value
            == result.extra["phase_path_read_cycles"]
        )
        latency = registry.histogram("trace.latency.demand")
        assert latency.total == result.demand_requests


# ------------------------------------------------------------------ uniformity
class TestLeafUniformityMonitor:
    def test_rejects_degenerate_leaf_space(self):
        with pytest.raises(ValueError):
            LeafUniformityMonitor(num_leaves=1)

    def test_uniform_stream_healthy(self):
        monitor = LeafUniformityMonitor(num_leaves=16, window=512)
        rng = DeterministicRng(2)
        for _ in range(2048):
            monitor.on_path_access(rng.randbelow(16))
        assert len(monitor.checks) == 4
        assert monitor.healthy
        assert "healthy" in monitor.render()

    def test_skewed_window_flagged(self):
        monitor = LeafUniformityMonitor(num_leaves=16, window=512)
        for _ in range(512):
            monitor.on_path_access(0)
        assert not monitor.healthy
        assert monitor.flagged[0].p_value < monitor.alpha
        assert "FLAGGED" in monitor.render()

    def test_short_tail_flush_is_insufficient_not_fatal(self):
        monitor = LeafUniformityMonitor(num_leaves=64, window=4096)
        for leaf in range(5):
            monitor.on_path_access(leaf)
        check = monitor.flush()
        assert check is not None
        assert check.p_value == 1.0  # the statistics guard, not a crash
        assert monitor.healthy
        assert monitor.flush() is None  # buffer drained

    def test_forwards_to_downstream_observer(self):
        downstream = AccessObserver()
        monitor = LeafUniformityMonitor(
            num_leaves=8, window=4, forward_to=downstream
        )
        for leaf in (1, 2, 3, 4, 5):
            monitor.on_path_access(leaf)
        assert downstream.leaves() == [1, 2, 3, 4, 5]
