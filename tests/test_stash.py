"""Unit tests for the stash."""

import pytest

from repro.oram.block import Block
from repro.oram.stash import Stash


class TestStash:
    def test_add_and_pop(self):
        stash = Stash(capacity=4)
        stash.add(Block(1, 0))
        assert 1 in stash
        assert len(stash) == 1
        block = stash.pop(1)
        assert block is not None and block.addr == 1
        assert 1 not in stash

    def test_pop_missing_returns_none(self):
        stash = Stash(capacity=4)
        assert stash.pop(99) is None

    def test_peek_does_not_remove(self):
        stash = Stash(capacity=4)
        stash.add(Block(1, 0))
        assert stash.peek(1) is not None
        assert 1 in stash

    def test_duplicate_rejected(self):
        stash = Stash(capacity=4)
        stash.add(Block(1, 0))
        with pytest.raises(ValueError):
            stash.add(Block(1, 5))

    def test_over_capacity_is_soft(self):
        # The stash may transiently exceed capacity (path buffer semantics);
        # over_capacity() reports it, nothing throws.
        stash = Stash(capacity=2)
        for addr in range(5):
            stash.add(Block(addr, 0))
        assert stash.over_capacity()
        assert len(stash) == 5

    def test_max_occupancy_watermark(self):
        stash = Stash(capacity=10)
        for addr in range(7):
            stash.add(Block(addr, 0))
        for addr in range(7):
            stash.pop(addr)
        assert stash.max_occupancy == 7
        assert len(stash) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Stash(capacity=0)

    def test_add_all(self):
        stash = Stash(capacity=10)
        stash.add_all([Block(i, 0) for i in range(5)])
        assert len(stash) == 5

    def test_iter_blocks_and_items(self):
        stash = Stash(capacity=10)
        stash.add_all([Block(i, i) for i in range(3)])
        assert {b.addr for b in stash.iter_blocks()} == {0, 1, 2}
        assert {addr for addr, _ in stash.items()} == {0, 1, 2}
