"""Unit tests for the workload/trace generators."""

import pytest

from repro.workloads.base import MixtureWorkload, WorkloadProfile, trace_for
from repro.workloads.dbms import DBMS_PROFILES, dbms_trace, tpcc_trace, ycsb_trace
from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_MISS_RATE_SET, SPLASH2_PROFILES
from repro.workloads.synthetic import (
    locality_mix_trace,
    phase_change_trace,
    sequential_trace,
    uniform_random_trace,
)


def sequential_fraction(trace):
    """Fraction of accesses that continue an ascending run."""
    seq = sum(
        1
        for prev, cur in zip(trace.entries, trace.entries[1:])
        if cur[1] == prev[1] + 1
    )
    return seq / max(1, len(trace) - 1)


class TestProfiles:
    def test_paper_benchmark_rosters(self):
        assert len(SPLASH2_PROFILES) == 14  # Figure 8a
        assert len(SPEC06_PROFILES) == 10   # Figure 8b
        assert len(DBMS_PROFILES) == 2      # Figure 8c

    def test_figure9_set_excludes_water(self):
        assert "water_ns" not in SPLASH2_MISS_RATE_SET
        assert "water_s" not in SPLASH2_MISS_RATE_SET
        assert len(SPLASH2_MISS_RATE_SET) == 12

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "s", footprint_blocks=4, gap_mean=1, seq_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "s", footprint_blocks=1, gap_mean=1, seq_fraction=0.5)

    def test_scaled(self):
        p = SPLASH2_PROFILES[0].scaled(123)
        assert p.accesses == 123
        assert p.name == SPLASH2_PROFILES[0].name


class TestMixtureGenerator:
    def test_respects_footprint_and_length(self):
        p = WorkloadProfile("t", "s", footprint_blocks=100, gap_mean=5, seq_fraction=0.5)
        trace = trace_for(p, accesses=500)
        assert len(trace) == 500
        assert all(0 <= e[1] < 100 for e in trace.entries)

    def test_seq_fraction_controls_runs(self):
        low = WorkloadProfile("lo", "s", footprint_blocks=4096, gap_mean=1, seq_fraction=0.05)
        high = WorkloadProfile("hi", "s", footprint_blocks=4096, gap_mean=1, seq_fraction=0.9, run_len_mean=8)
        assert sequential_fraction(trace_for(high, 3000)) > 3 * sequential_fraction(
            trace_for(low, 3000)
        )

    def test_write_fraction(self):
        p = WorkloadProfile(
            "w", "s", footprint_blocks=64, gap_mean=1, seq_fraction=0.0, write_fraction=0.5
        )
        trace = trace_for(p, accesses=3000)
        assert 0.4 < trace.write_fraction < 0.6

    def test_deterministic(self):
        p = SPLASH2_PROFILES[5]
        a = MixtureWorkload(p, seed=1).generate(300)
        b = MixtureWorkload(p, seed=1).generate(300)
        assert a.entries == b.entries

    def test_seed_changes_trace(self):
        p = SPLASH2_PROFILES[5]
        a = MixtureWorkload(p, seed=1).generate(300)
        b = MixtureWorkload(p, seed=2).generate(300)
        assert a.entries != b.entries


class TestSynthetic:
    def test_locality_extremes(self):
        seq = locality_mix_trace(1.0, accesses=2000, footprint_blocks=1024)
        rand = locality_mix_trace(0.0, accesses=2000, footprint_blocks=1024)
        assert sequential_fraction(seq) > 0.9
        assert sequential_fraction(rand) < 0.05

    def test_locality_partitions_address_space(self):
        trace = locality_mix_trace(0.5, accesses=5000, footprint_blocks=1000)
        seq_region = [a for _, a, _ in trace.entries if a < 500]
        rand_region = [a for _, a, _ in trace.entries if a >= 500]
        assert seq_region and rand_region

    def test_locality_validation(self):
        with pytest.raises(ValueError):
            locality_mix_trace(1.5)

    def test_phase_change_alternates_halves(self):
        trace = phase_change_trace(num_phases=2, accesses=4000, footprint_blocks=1000)
        half = len(trace) // 2
        first = trace.entries[:half]
        second = trace.entries[half:]

        def seq_in(entries, lo, hi):
            pairs = zip(entries, entries[1:])
            return sum(1 for p, c in pairs if c[1] == p[1] + 1 and lo <= c[1] < hi)

        # Phase 1 scans the low half; phase 2 scans the high half.
        assert seq_in(first, 0, 500) > seq_in(first, 500, 1000)
        assert seq_in(second, 500, 1000) > seq_in(second, 0, 500)

    def test_pure_generators(self):
        seq = sequential_trace(footprint_blocks=100, accesses=250)
        assert [e[1] for e in seq.entries[:5]] == [0, 1, 2, 3, 4]
        rand = uniform_random_trace(footprint_blocks=100, accesses=250)
        assert len(set(e[1] for e in rand.entries)) > 50


class TestDBMS:
    def test_ycsb_rows_are_aligned_runs(self):
        trace = ycsb_trace(num_records=64, operations=100)
        # Row scans appear as ascending runs of 8 starting at multiples of 8.
        runs = 0
        entries = trace.entries
        i = 0
        while i < len(entries) - 7:
            base = entries[i][1]
            if base % 8 == 0 and all(
                entries[i + k][1] == base + k for k in range(8)
            ):
                runs += 1
                i += 8
            else:
                i += 1
        assert runs >= 90  # almost every operation

    def test_ycsb_contains_index_traffic(self):
        trace = ycsb_trace(num_records=64, operations=50, row_blocks=8, index_touches=2)
        data_blocks = 64 * 8
        index_hits = [e for e in trace.entries if e[1] >= data_blocks]
        assert len(index_hits) == 100  # 2 per operation

    def test_ycsb_zipf_skews_rows(self):
        trace = ycsb_trace(num_records=256, operations=400, zipf_theta=0.9)
        from collections import Counter

        rows = Counter(e[1] // 8 for e in trace.entries if e[1] < 256 * 8)
        hottest = rows.most_common(1)[0][1]
        assert hottest > 3 * (sum(rows.values()) / len(rows))

    def test_tpcc_write_heavy(self):
        trace = tpcc_trace(transactions=200)
        assert trace.write_fraction > 0.4

    def test_tpcc_within_footprint(self):
        trace = tpcc_trace(transactions=100)
        assert all(0 <= e[1] < trace.footprint_blocks for e in trace.entries)

    def test_dbms_trace_dispatch(self):
        assert dbms_trace("YCSB", accesses=800).name == "YCSB"
        assert dbms_trace("TPCC", accesses=800).name == "TPCC"
        with pytest.raises(ValueError):
            dbms_trace("NOPE")

    def test_dbms_trace_length_scales(self):
        short = dbms_trace("YCSB", accesses=800)
        long = dbms_trace("YCSB", accesses=8000)
        assert len(long) > 5 * len(short)
