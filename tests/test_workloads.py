"""Unit tests for the workload/trace generators."""

import pytest

from repro.workloads.base import MixtureWorkload, WorkloadProfile, trace_for
from repro.workloads.dbms import DBMS_PROFILES, dbms_trace, tpcc_trace, ycsb_trace
from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_MISS_RATE_SET, SPLASH2_PROFILES
from repro.workloads.synthetic import (
    locality_mix_trace,
    phase_change_trace,
    sequential_trace,
    uniform_random_trace,
)


def sequential_fraction(trace):
    """Fraction of accesses that continue an ascending run."""
    seq = sum(
        1
        for prev, cur in zip(trace.entries, trace.entries[1:])
        if cur[1] == prev[1] + 1
    )
    return seq / max(1, len(trace) - 1)


class TestProfiles:
    def test_paper_benchmark_rosters(self):
        assert len(SPLASH2_PROFILES) == 14  # Figure 8a
        assert len(SPEC06_PROFILES) == 10   # Figure 8b
        assert len(DBMS_PROFILES) == 2      # Figure 8c

    def test_figure9_set_excludes_water(self):
        assert "water_ns" not in SPLASH2_MISS_RATE_SET
        assert "water_s" not in SPLASH2_MISS_RATE_SET
        assert len(SPLASH2_MISS_RATE_SET) == 12

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "s", footprint_blocks=4, gap_mean=1, seq_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "s", footprint_blocks=1, gap_mean=1, seq_fraction=0.5)

    def test_scaled(self):
        p = SPLASH2_PROFILES[0].scaled(123)
        assert p.accesses == 123
        assert p.name == SPLASH2_PROFILES[0].name


class TestMixtureGenerator:
    def test_respects_footprint_and_length(self):
        p = WorkloadProfile("t", "s", footprint_blocks=100, gap_mean=5, seq_fraction=0.5)
        trace = trace_for(p, accesses=500)
        assert len(trace) == 500
        assert all(0 <= e[1] < 100 for e in trace.entries)

    def test_seq_fraction_controls_runs(self):
        low = WorkloadProfile("lo", "s", footprint_blocks=4096, gap_mean=1, seq_fraction=0.05)
        high = WorkloadProfile("hi", "s", footprint_blocks=4096, gap_mean=1, seq_fraction=0.9, run_len_mean=8)
        assert sequential_fraction(trace_for(high, 3000)) > 3 * sequential_fraction(
            trace_for(low, 3000)
        )

    def test_write_fraction(self):
        p = WorkloadProfile(
            "w", "s", footprint_blocks=64, gap_mean=1, seq_fraction=0.0, write_fraction=0.5
        )
        trace = trace_for(p, accesses=3000)
        assert 0.4 < trace.write_fraction < 0.6

    def test_deterministic(self):
        p = SPLASH2_PROFILES[5]
        a = MixtureWorkload(p, seed=1).generate(300)
        b = MixtureWorkload(p, seed=1).generate(300)
        assert a.entries == b.entries

    def test_seed_changes_trace(self):
        p = SPLASH2_PROFILES[5]
        a = MixtureWorkload(p, seed=1).generate(300)
        b = MixtureWorkload(p, seed=2).generate(300)
        assert a.entries != b.entries


class TestSynthetic:
    def test_locality_extremes(self):
        seq = locality_mix_trace(1.0, accesses=2000, footprint_blocks=1024)
        rand = locality_mix_trace(0.0, accesses=2000, footprint_blocks=1024)
        assert sequential_fraction(seq) > 0.9
        assert sequential_fraction(rand) < 0.05

    def test_locality_partitions_address_space(self):
        trace = locality_mix_trace(0.5, accesses=5000, footprint_blocks=1000)
        seq_region = [a for _, a, _ in trace.entries if a < 500]
        rand_region = [a for _, a, _ in trace.entries if a >= 500]
        assert seq_region and rand_region

    def test_locality_validation(self):
        with pytest.raises(ValueError):
            locality_mix_trace(1.5)

    def test_phase_change_alternates_halves(self):
        trace = phase_change_trace(num_phases=2, accesses=4000, footprint_blocks=1000)
        half = len(trace) // 2
        first = trace.entries[:half]
        second = trace.entries[half:]

        def seq_in(entries, lo, hi):
            pairs = zip(entries, entries[1:])
            return sum(1 for p, c in pairs if c[1] == p[1] + 1 and lo <= c[1] < hi)

        # Phase 1 scans the low half; phase 2 scans the high half.
        assert seq_in(first, 0, 500) > seq_in(first, 500, 1000)
        assert seq_in(second, 500, 1000) > seq_in(second, 0, 500)

    def test_pure_generators(self):
        seq = sequential_trace(footprint_blocks=100, accesses=250)
        assert [e[1] for e in seq.entries[:5]] == [0, 1, 2, 3, 4]
        rand = uniform_random_trace(footprint_blocks=100, accesses=250)
        assert len(set(e[1] for e in rand.entries)) > 50


class TestGeneratorContracts:
    """Every generator honors its length and footprint exactly."""

    GENERATORS = [
        lambda fp, n: locality_mix_trace(0.37, footprint_blocks=fp, accesses=n),
        lambda fp, n: locality_mix_trace(0.0, footprint_blocks=fp, accesses=n),
        lambda fp, n: locality_mix_trace(1.0, footprint_blocks=fp, accesses=n),
        lambda fp, n: phase_change_trace(
            num_phases=7, footprint_blocks=fp, accesses=n
        ),
        lambda fp, n: sequential_trace(footprint_blocks=fp, accesses=n),
        lambda fp, n: uniform_random_trace(footprint_blocks=fp, accesses=n),
    ]

    @pytest.mark.parametrize("gen_index", range(len(GENERATORS)))
    @pytest.mark.parametrize("footprint,accesses", [
        (16, 1), (100, 97), (1024, 1000), (10, 333),
    ])
    def test_exact_length_and_footprint(self, gen_index, footprint, accesses):
        trace = self.GENERATORS[gen_index](footprint, accesses)
        assert len(trace) == accesses
        assert all(0 <= addr < footprint for _, addr, _ in trace.entries)

    @pytest.mark.parametrize("num_phases", [1, 3, 7, 9, 13])
    def test_phase_change_distributes_remainder(self, num_phases):
        # 1000 % 7 == 6 etc. -- the remainder used to be silently dropped.
        trace = phase_change_trace(
            num_phases=num_phases, footprint_blocks=64, accesses=1000
        )
        assert len(trace) == 1000

    def test_tiny_footprint_locality_not_degenerate(self):
        # int(10 * 0.05) == 0 used to collapse 5%-locality to pure random;
        # the sequential region must survive as >= 1 block.
        trace = locality_mix_trace(
            0.05, footprint_blocks=10, accesses=4000, seed=5
        )
        hits_block0 = sum(1 for _, addr, _ in trace.entries if addr == 0)
        # block 0 is the whole sequential region: it gets the ~5% of
        # accesses routed there *plus* nothing from the random region,
        # which draws from blocks 1..9 only.
        assert hits_block0 == pytest.approx(0.05 * 4000, rel=0.4)
        random_region = [addr for _, addr, _ in trace.entries if addr != 0]
        assert min(random_region) >= 1

    def test_full_locality_on_one_block(self):
        trace = locality_mix_trace(1.0, footprint_blocks=1, accesses=50)
        assert len(trace) == 50
        assert all(addr == 0 for _, addr, _ in trace.entries)


class TestDBMS:
    def test_ycsb_rows_are_aligned_runs(self):
        trace = ycsb_trace(num_records=64, operations=100)
        # Row scans appear as ascending runs of 8 starting at multiples of 8.
        runs = 0
        entries = trace.entries
        i = 0
        while i < len(entries) - 7:
            base = entries[i][1]
            if base % 8 == 0 and all(
                entries[i + k][1] == base + k for k in range(8)
            ):
                runs += 1
                i += 8
            else:
                i += 1
        assert runs >= 90  # almost every operation

    def test_ycsb_contains_index_traffic(self):
        trace = ycsb_trace(num_records=64, operations=50, row_blocks=8, index_touches=2)
        data_blocks = 64 * 8
        index_hits = [e for e in trace.entries if e[1] >= data_blocks]
        assert len(index_hits) == 100  # 2 per operation

    def test_ycsb_zipf_skews_rows(self):
        trace = ycsb_trace(num_records=256, operations=400, zipf_theta=0.9)
        from collections import Counter

        rows = Counter(e[1] // 8 for e in trace.entries if e[1] < 256 * 8)
        hottest = rows.most_common(1)[0][1]
        assert hottest > 3 * (sum(rows.values()) / len(rows))

    def test_tpcc_write_heavy(self):
        trace = tpcc_trace(transactions=200)
        assert trace.write_fraction > 0.4

    def test_tpcc_within_footprint(self):
        trace = tpcc_trace(transactions=100)
        assert all(0 <= e[1] < trace.footprint_blocks for e in trace.entries)

    def test_dbms_trace_dispatch(self):
        assert dbms_trace("YCSB", accesses=800).name == "YCSB"
        assert dbms_trace("TPCC", accesses=800).name == "TPCC"
        with pytest.raises(ValueError):
            dbms_trace("NOPE")

    def test_dbms_trace_length_scales(self):
        short = dbms_trace("YCSB", accesses=800)
        long = dbms_trace("YCSB", accesses=8000)
        assert len(long) > 5 * len(short)
