"""Unit tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheConfig


def make_cache(capacity=2048, assoc=2, block=128):
    return SetAssociativeCache(CacheConfig(capacity, assoc, block))


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        cache.insert(5)
        assert cache.lookup(5)
        assert cache.hits == 1 and cache.misses == 1

    def test_contains_no_lru_side_effect(self):
        cache = make_cache(capacity=512, assoc=2)  # 2 sets, 2 ways
        cache.insert(0)
        cache.insert(2)  # same set as 0 (addr % 2 == 0)
        cache.contains(0)  # probe must NOT refresh 0
        cache.insert(4)  # evicts LRU = 0
        assert not cache.contains(0)
        assert cache.contains(2)

    def test_lookup_refreshes_lru(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.insert(4)
        assert victim is not None and victim.addr == 2

    def test_insert_returns_victim(self):
        cache = make_cache(capacity=512, assoc=2)
        assert cache.insert(0) is None
        assert cache.insert(2) is None
        victim = cache.insert(4)
        assert victim is not None and victim.addr == 0

    def test_dirty_tracking(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(0)
        cache.lookup(0, is_write=True)
        cache.insert(2)
        victim = cache.insert(4)
        assert victim.addr == 0 and victim.dirty

    def test_mark_dirty(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(0)
        cache.mark_dirty(0)
        victim = cache.invalidate(0)
        assert victim.dirty

    def test_insert_existing_merges_dirty(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(0, dirty=True)
        cache.insert(0, dirty=False)
        victim = cache.invalidate(0)
        assert victim.dirty  # dirtiness is sticky

    def test_insert_at_lru_is_next_victim(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(0)
        cache.insert(2, at_mru=False)  # low-priority fill lands at LRU
        victim = cache.insert(4)
        assert victim is not None and victim.addr == 2

    def test_insert_present_line_demoted_with_at_mru_false(self):
        # Regression: a low-priority re-fill of an already-present line must
        # demote it to the LRU position, not leave it where it was.
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(2)
        cache.insert(0)  # LRU order now: 2, 0
        cache.insert(0, at_mru=False)  # demote 0 from MRU to LRU
        victim = cache.insert(4)
        assert victim is not None and victim.addr == 0

    def test_insert_present_line_demotion_keeps_dirty(self):
        cache = make_cache(capacity=512, assoc=2)
        cache.insert(2)
        cache.insert(0, dirty=True)
        cache.insert(0, at_mru=False)
        victim = cache.insert(4)
        assert victim.addr == 0 and victim.dirty

    def test_invalidate_missing(self):
        cache = make_cache()
        assert cache.invalidate(99) is None

    def test_occupancy_and_residents(self):
        cache = make_cache(capacity=1024, assoc=2)
        for addr in range(4):
            cache.insert(addr)
        assert cache.occupancy() == 4
        assert sorted(cache.resident_addresses()) == [0, 1, 2, 3]


class TestSetMapping:
    def test_different_sets_do_not_conflict(self):
        cache = make_cache(capacity=512, assoc=2)  # 2 sets
        cache.insert(0)
        cache.insert(1)  # other set
        cache.insert(2)
        cache.insert(3)
        assert cache.occupancy() == 4  # no evictions

    def test_adjacent_addresses_map_to_different_sets(self):
        # Pair members (addr, addr+1) never evict each other -- relied on
        # by the super block fill path.
        cache = make_cache(capacity=2048, assoc=2)  # 8 sets
        for addr in range(0, 64, 2):
            assert addr % 8 != (addr + 1) % 8


class TestProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_ways(self, addrs):
        cache = make_cache(capacity=1024, assoc=2)  # 4 sets x 2 ways
        for addr in addrs:
            if not cache.lookup(addr):
                cache.insert(addr)
        assert cache.occupancy() <= 8
        # Per-set constraint.
        for s in cache._sets:
            assert len(s) <= 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_most_recent_insert_is_resident(self, addrs):
        cache = make_cache(capacity=1024, assoc=2)
        for addr in addrs:
            cache.insert(addr)
            assert cache.contains(addr)
