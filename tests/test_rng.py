"""Unit tests for the deterministic RNG wrapper."""

from collections import Counter

from repro.utils.rng import DeterministicRng, make_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(50)] == [
            b.randint(0, 100) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.randint(0, 10**9) for _ in range(10)] != [
            b.randint(0, 10**9) for _ in range(10)
        ]

    def test_fork_is_deterministic_and_independent(self):
        a = DeterministicRng(7).fork(1)
        b = DeterministicRng(7).fork(1)
        c = DeterministicRng(7).fork(2)
        seq_a = [a.randint(0, 10**9) for _ in range(10)]
        seq_b = [b.randint(0, 10**9) for _ in range(10)]
        seq_c = [c.randint(0, 10**9) for _ in range(10)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_state_snapshot_restore(self):
        rng = DeterministicRng(3)
        rng.randint(0, 100)
        snap = rng.state_snapshot()
        first = [rng.randint(0, 100) for _ in range(5)]
        rng.state_restore(snap)
        assert [rng.randint(0, 100) for _ in range(5)] == first


class TestDistributions:
    def test_random_leaf_in_range(self):
        rng = DeterministicRng(1)
        for _ in range(1000):
            assert 0 <= rng.random_leaf(64) < 64

    def test_random_leaf_roughly_uniform(self):
        rng = DeterministicRng(1)
        counts = Counter(rng.random_leaf(8) for _ in range(8000))
        for leaf in range(8):
            assert 800 < counts[leaf] < 1200

    def test_geometric_mean(self):
        rng = DeterministicRng(2)
        draws = [rng.geometric(8.0) for _ in range(20000)]
        assert all(d >= 1 for d in draws)
        mean = sum(draws) / len(draws)
        assert 7.0 < mean < 9.0

    def test_geometric_degenerate(self):
        rng = DeterministicRng(2)
        assert all(rng.geometric(1.0) == 1 for _ in range(10))
        assert all(rng.geometric(0.5) == 1 for _ in range(10))

    def test_expovariate_int_mean(self):
        rng = DeterministicRng(3)
        draws = [rng.expovariate_int(10.0) for _ in range(20000)]
        assert all(d >= 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 8.5 < mean < 11.0

    def test_expovariate_int_zero_mean(self):
        rng = DeterministicRng(3)
        assert rng.expovariate_int(0.0) == 0

    def test_zipf_skews_towards_low_indices(self):
        rng = DeterministicRng(4)
        counts = Counter(rng.zipf(100, 0.99) for _ in range(20000))
        assert counts[0] > counts.get(50, 0)
        assert counts[0] > counts.get(99, 0)
        assert all(0 <= k < 100 for k in counts)

    def test_zipf_theta_zero_is_uniform_ish(self):
        rng = DeterministicRng(5)
        counts = Counter(rng.zipf(10, 0.0) for _ in range(20000))
        for i in range(10):
            assert 1600 < counts[i] < 2400

    def test_permutation(self):
        rng = DeterministicRng(6)
        perm = rng.permutation(50)
        assert sorted(perm) == list(range(50))


def test_make_rng_none_defaults_to_zero():
    assert make_rng(None).seed == 0
    assert make_rng(9).seed == 9
