"""Tests for the simulator throughput-profiling harness."""

from __future__ import annotations

import json

from repro.cli import main as cli_main
from repro.profiling import PhaseTimer, Profiler
from repro.profiling.profiler import dump_profiles
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace


def _small_trace():
    return locality_mix_trace(0.8, accesses=1500)


class TestPhaseTimer:
    def test_wrap_accumulates_calls_and_time(self):
        timer = PhaseTimer("work")
        wrapped = timer.wrap(lambda x: x * 2)
        assert wrapped(21) == 42
        assert wrapped(5) == 10
        assert timer.calls == 2
        assert timer.seconds >= 0.0

    def test_wrap_counts_raising_calls(self):
        timer = PhaseTimer("boom")

        def boom():
            raise RuntimeError("nope")

        wrapped = timer.wrap(boom)
        try:
            wrapped()
        except RuntimeError:
            pass
        assert timer.calls == 1

    def test_context_manager(self):
        timer = PhaseTimer("block")
        with timer:
            pass
        assert timer.calls == 1
        assert timer.seconds >= 0.0


class TestProfiler:
    def test_profile_populated_after_run(self):
        trace = _small_trace()
        system = SecureSystem.build("dyn", trace.footprint_blocks)
        profiler = Profiler().attach(system)
        assert system.profiler is profiler
        system.run(trace)
        profile = profiler.profile
        assert profile is not None
        assert profile.entries == len(trace)
        assert profile.wall_seconds > 0.0
        assert profile.accesses_per_sec > 0.0
        # The demand path must have been exercised and timed.
        assert profile.phases["backend_demand"]["calls"] > 0
        assert profile.phases["cache_hierarchy"]["calls"] == len(trace)
        # Component counters sampled from the finished system.
        assert profile.counters["demand_requests"] > 0
        assert profile.counters["l1_misses"] > 0
        assert "stash_max_occupancy" in profile.counters

    def test_profile_serializes_and_reports(self, tmp_path):
        trace = _small_trace()
        system = SecureSystem.build("dyn", trace.footprint_blocks)
        profiler = Profiler().attach(system)
        system.run(trace)
        payload = json.dumps(profiler.profile.to_json())
        parsed = json.loads(payload)
        assert parsed["entries"] == len(trace)
        report = profiler.profile.report()
        assert "accesses/sec" in report
        assert "backend_demand" in report
        out = tmp_path / "profiles.json"
        dump_profiles([profiler.profile], str(out))
        assert json.loads(out.read_text())[0]["label"] == system.label

    def test_profiling_does_not_change_simulated_outcome(self):
        """The shims must be observers only: bit-identical SimResult."""
        trace = _small_trace()
        bare = SecureSystem.build("dyn", trace.footprint_blocks)
        bare_result = bare.run(trace)
        profiled = SecureSystem.build("dyn", trace.footprint_blocks)
        Profiler().attach(profiled)
        profiled_result = profiled.run(trace)
        assert profiled_result == bare_result

    def test_dram_backend_profiles_without_oram_counters(self):
        trace = _small_trace()
        system = SecureSystem.build("dram", trace.footprint_blocks)
        profiler = Profiler().attach(system)
        system.run(trace)
        counters = profiler.profile.counters
        assert "stash_max_occupancy" not in counters
        assert "merges" not in counters
        assert counters["demand_requests"] > 0


class TestCliProfileFlag:
    def test_run_with_profile_flag(self, capsys):
        rc = cli_main(
            [
                "run",
                "-w",
                "locality:80",
                "-s",
                "dyn",
                "--accesses",
                "1500",
                "--warmup",
                "0",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile: dyn" in out
        assert "accesses/sec" in out

    def test_run_without_profile_flag_prints_no_profile(self, capsys):
        rc = cli_main(
            ["run", "-w", "locality:80", "-s", "dyn", "--accesses", "1500",
             "--warmup", "0"]
        )
        assert rc == 0
        assert "profile: dyn" not in capsys.readouterr().out
