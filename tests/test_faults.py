"""Tests for the fault-injection harness and the self-healing access path.

Covers the injector (schedule determinism, every fault class), the fsck
auditor (planted inconsistencies of each kind), the resilient KV store
(mini-soak under mixed faults with shadow verification, recovery
escalation, checkpoint durability), and the timing backend's retry /
degradation wiring (including bit-identical behaviour with faults off).
"""

import pytest

from repro.config import ORAMConfig
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FsckError,
    RecoveryError,
    ResilienceConfig,
    ResilientKVStore,
    TransientReadError,
    assert_consistent,
    run_fsck,
)
from repro.oram.block import Block
from repro.oram.integrity import IntegrityViolationError, VerifiedPathORAM
from repro.oram.kv_store import ObliviousKVStore
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace


def small_config(**overrides):
    defaults = dict(levels=6, bucket_size=4, stash_blocks=40, utilization=0.5)
    defaults.update(overrides)
    return ORAMConfig(**defaults)


MIXED_FAULTS = FaultConfig(
    seed=11,
    bitflip_rate=0.01,
    replay_rate=0.005,
    transient_rate=0.02,
    delay_rate=0.01,
    start_after=20,
)


def run_workload(store, ops, seed=99, shadow=None):
    """Mixed put/get workload verified against a shadow dict as it runs."""
    shadow = {} if shadow is None else shadow
    rng = DeterministicRng(seed)
    for i in range(ops):
        key = rng.randbelow(store.capacity)
        if rng.randbelow(100) < 60:
            value = bytes([i % 251]) * (1 + rng.randbelow(8))
            store.put(key, value)
            shadow[key] = value
        else:
            assert store.get(key) == shadow.get(key)
    return shadow


# =========================================================== injector
class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(bitflip_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(transient_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(delay_cycles=-1)

    def test_any_enabled(self):
        assert not FaultConfig().any_enabled
        assert FaultConfig(delay_rate=0.5).any_enabled


class TestFaultInjector:
    def test_transient_raises_and_counts(self):
        injector = FaultInjector(FaultConfig(transient_rate=1.0))
        with pytest.raises(TransientReadError):
            injector.on_memory_access()
        assert injector.stats.transients == 1
        assert injector.stats.total_injected == 1

    def test_delay_returns_cycles(self):
        injector = FaultInjector(FaultConfig(delay_rate=1.0, delay_cycles=77))
        assert injector.on_memory_access() == 77
        assert injector.stats.delay_cycles == 77

    def test_paused_suspends_injection(self):
        injector = FaultInjector(FaultConfig(transient_rate=1.0))
        with injector.paused():
            assert injector.on_memory_access() == 0
        assert injector.stats.transients == 0
        with pytest.raises(TransientReadError):
            injector.on_memory_access()

    def test_start_after_grace_period(self):
        injector = FaultInjector(FaultConfig(transient_rate=1.0, start_after=3))
        for _ in range(3):
            assert injector.on_memory_access() == 0
        with pytest.raises(TransientReadError):
            injector.on_memory_access()

    def test_schedule_is_deterministic(self):
        def schedule(seed):
            injector = FaultInjector(
                FaultConfig(seed=seed, transient_rate=0.3, delay_rate=0.3)
            )
            events = []
            for _ in range(200):
                try:
                    events.append(injector.on_memory_access())
                except TransientReadError:
                    events.append("T")
            return events, injector.stats.as_dict()

        assert schedule(5) == schedule(5)
        events_a, _ = schedule(5)
        events_b, _ = schedule(6)
        assert events_a != events_b

    def test_bitflip_caught_by_merkle(self):
        injector = FaultInjector(FaultConfig(bitflip_rate=1.0))
        oram = VerifiedPathORAM(small_config(), DeterministicRng(3), injector=injector)
        with pytest.raises(IntegrityViolationError):
            for addr in range(50):
                oram.access([addr])
        assert injector.stats.bitflips >= 1

    def test_replay_caught_by_merkle(self):
        injector = FaultInjector(FaultConfig(replay_rate=1.0))
        oram = VerifiedPathORAM(small_config(), DeterministicRng(3), injector=injector)
        with pytest.raises(IntegrityViolationError):
            # Same address repeatedly: its remapped path keeps crossing the
            # snapshotted buckets, so a stale image lands quickly.
            for _ in range(100):
                oram.access([1])
        assert injector.stats.replays >= 1


# =============================================================== fsck
class TestFsck:
    def make_oram(self):
        return VerifiedPathORAM(small_config(), DeterministicRng(3))

    def test_clean_store_passes(self):
        oram = self.make_oram()
        for addr in range(20):
            oram.access([addr])
        report = assert_consistent(oram)
        assert report.ok
        assert report.root_hash_checked
        assert (
            report.blocks_in_tree + report.blocks_in_stash == report.expected_blocks
        )

    def test_wrong_leaf_detected(self):
        oram = self.make_oram()
        for bucket in oram.tree._buckets:
            if bucket:
                bucket[0].leaf ^= 1
                break
        report = run_fsck(oram)
        assert not report.ok
        assert any("leaf" in error for error in report.errors)

    def test_duplicate_block_detected(self):
        oram = self.make_oram()
        donor = next(b for b in oram.tree._buckets if b)
        oram.stash.add(Block(donor[0].addr, donor[0].leaf))
        report = run_fsck(oram)
        assert not report.ok
        assert any("stash" in error for error in report.errors)

    def test_lost_block_detected(self):
        oram = self.make_oram()
        donor = next(b for b in oram.tree._buckets if b)
        donor.pop()
        report = run_fsck(oram)
        assert any("census" in error for error in report.errors)

    def test_root_hash_disagreement_detected(self):
        oram = self.make_oram()
        donor = next(b for b in oram.tree._buckets if b)
        # Payload-only mutation: census and placement stay legal, so only
        # the root-hash recomputation can catch it.
        donor[0].data = b"tampered"
        report = run_fsck(oram)
        assert any("root hash" in error for error in report.errors)

    def test_assert_consistent_raises(self):
        oram = self.make_oram()
        next(b for b in oram.tree._buckets if b)[0].leaf ^= 1
        with pytest.raises(FsckError) as excinfo:
            assert_consistent(oram)
        assert excinfo.value.report.errors

    def test_error_accumulation_capped(self):
        oram = self.make_oram()
        for bucket in oram.tree._buckets:
            for block in bucket:
                block.leaf ^= 1
        report = run_fsck(oram, max_errors=4)
        assert len(report.errors) == 4


# ==================================================== resilient store
class TestResilientKVStore:
    def make_store(self, fault_config=MIXED_FAULTS, **resilience_overrides):
        resilience = ResilienceConfig(checkpoint_interval=32, **resilience_overrides)
        return ResilientKVStore(
            small_config(), fault_config=fault_config, resilience=resilience, seed=5
        )

    def test_mini_soak_no_lost_writes(self):
        store = self.make_store()
        shadow = run_workload(store, 700)
        for key, value in shadow.items():
            assert store.get(key) == value
        assert store.fault_stats.total_injected > 0
        assert store.recovery.retries > 0
        assert store.recovery.recoveries > 0
        assert_consistent(store.oram)

    def test_fault_free_matches_plain_store(self):
        resilient = self.make_store(fault_config=FaultConfig())
        plain = ObliviousKVStore(small_config(), seed=5)
        shadow_r = run_workload(resilient, 300)
        shadow_p = run_workload(plain, 300)
        assert shadow_r == shadow_p
        assert store_values(resilient, shadow_r) == store_values(plain, shadow_p)
        assert resilient.fault_stats.total_injected == 0
        assert resilient.recovery.recoveries == 0

    def test_same_fault_seed_same_counters(self):
        # Acceptance criterion: same fault seed => same schedule, same
        # retry/recovery counters, byte for byte.
        def one_run():
            store = self.make_store()
            run_workload(store, 400)
            return store.fault_stats.as_dict(), store.recovery.as_dict()

        assert one_run() == one_run()

    def test_different_fault_seed_different_schedule(self):
        def one_run(seed):
            config = FaultConfig(
                seed=seed,
                bitflip_rate=0.01,
                replay_rate=0.005,
                transient_rate=0.02,
                delay_rate=0.01,
                start_after=20,
            )
            store = self.make_store(fault_config=config)
            run_workload(store, 400)
            return store.fault_stats.as_dict()

        assert one_run(11) != one_run(12)

    def test_persistent_failure_escalates_to_recovery_error(self):
        store = self.make_store(
            fault_config=FaultConfig(transient_rate=1.0), max_retries=2
        )
        with pytest.raises(RecoveryError):
            store.put(1, b"x")

    def test_checkpoint_roundtrip(self, tmp_path):
        store = self.make_store()
        shadow = run_workload(store, 200)
        store.checkpoint_now()
        path = str(tmp_path / "store.ckpt")
        with store.injector.paused():
            store.save(path)
        reopened = ResilientKVStore.open(
            path, seed=5, fault_config=FaultConfig(), resilience=ResilienceConfig()
        )
        for key, value in shadow.items():
            assert reopened.get(key) == value
        assert_consistent(reopened.oram)

    def test_forced_evictions_relieve_stash(self):
        # High utilization + Z=2 keeps residual stash occupancy above a
        # tight soft watermark, so the degradation rung must kick in.
        store = ResilientKVStore(
            small_config(bucket_size=2, utilization=0.9),
            fault_config=FaultConfig(),
            resilience=ResilienceConfig(
                checkpoint_interval=32,
                stash_soft_fraction=0.1,
                max_forced_evictions=4,
            ),
            seed=5,
        )
        run_workload(store, 200)
        assert store.recovery.degraded_events > 0
        assert store.recovery.forced_evictions > 0
        assert len(store.oram.stash) <= store.oram.stash.capacity


def store_values(store, shadow):
    return {key: store.get(key) for key in sorted(shadow)}


# ==================================================== timing backend
class TestBackendFaults:
    def run_system(self, fault_injector=None, resilience=None, scheme="dyn"):
        trace = locality_mix_trace(0.8, accesses=4000)
        system = SecureSystem.build(
            scheme,
            footprint_blocks=trace.footprint_blocks,
            fault_injector=fault_injector,
            resilience=resilience,
        )
        return system.run(trace)

    def test_faults_counted_and_charged(self):
        injector = FaultInjector(
            FaultConfig(seed=7, transient_rate=0.05, delay_rate=0.05, delay_cycles=90)
        )
        faulty = self.run_system(fault_injector=injector)
        clean = self.run_system()
        assert faulty.extra["transient_faults"] > 0
        assert faulty.extra["fault_retries"] > 0
        assert faulty.extra["fault_delay_cycles"] > 0
        assert faulty.extra["injected_total_injected"] > 0
        assert faulty.cycles > clean.cycles

    def test_same_fault_seed_bit_identical(self):
        def one_run():
            injector = FaultInjector(
                FaultConfig(seed=7, transient_rate=0.05, delay_rate=0.05)
            )
            result = self.run_system(fault_injector=injector)
            return result.cycles, result.total_memory_accesses, dict(result.extra)

        assert one_run() == one_run()

    def test_zero_rate_injector_changes_nothing(self):
        # An attached but silent injector must not perturb timing.
        silent = self.run_system(fault_injector=FaultInjector(FaultConfig()))
        clean = self.run_system()
        assert silent.cycles == clean.cycles
        assert silent.total_memory_accesses == clean.total_memory_accesses
        assert silent.merges == clean.merges

    def test_soft_overflows_always_reported(self):
        clean = self.run_system()
        assert "stash_soft_overflows" in clean.extra
        assert "transient_faults" not in clean.extra  # faults off: no noise

    def test_degradation_forces_evictions(self):
        result = self.run_system(
            resilience=ResilienceConfig(stash_soft_fraction=0.02, max_forced_evictions=4)
        )
        assert result.extra["forced_evictions"] > 0

    def test_dram_rejects_faults(self):
        with pytest.raises(ValueError, match="DRAM"):
            SecureSystem.build(
                "dram",
                footprint_blocks=4096,
                fault_injector=FaultInjector(FaultConfig()),
            )
