"""Security tests for the Shi et al. tree ORAM and square-root ORAM.

The security arguments differ per construction -- the tree ORAM's leaf
sequence must be uniform and unlinkable like Path ORAM's; the square-root
ORAM's probe sequence must consist of never-repeating slots per epoch --
but the operational standard is the same: the adversary's view carries no
information about the logical pattern.
"""

from repro.oram.square_root import SquareRootORAM
from repro.oram.tree_oram import ShiTreeORAM
from repro.security.observer import AccessObserver
from repro.security.statistics import (
    lag_autocorrelation,
    sequences_indistinguishable,
)
from repro.utils.rng import DeterministicRng


class TestShiTreeORAMSecurity:
    def run_pattern(self, addr_fn, seed):
        observer = AccessObserver()
        oram = ShiTreeORAM(
            levels=5, num_blocks=64, rng=DeterministicRng(seed), observer=observer
        )
        for i in range(2500):
            oram.access([addr_fn(i)])
        return observer.leaves()

    def test_unlinkability(self):
        leaves = self.run_pattern(lambda i: i % 64, seed=3)
        assert abs(lag_autocorrelation(leaves, lag=1)) < 0.07

    def test_sequential_vs_hammer_indistinguishable(self):
        seq = self.run_pattern(lambda i: i % 64, seed=3)
        hammer = self.run_pattern(lambda i: 7, seed=4)
        _, p = sequences_indistinguishable(seq, hammer, 32)
        assert p > 1e-4


class TestSquareRootORAMSecurity:
    def test_probe_streams_indistinguishable(self):
        def run(addr_fn, seed):
            observer = AccessObserver()
            oram = SquareRootORAM(64, rng=DeterministicRng(seed), observer=observer)
            for i in range(400):
                oram.access(addr_fn(i))
            return observer.leaves(), oram.server_slots

        seq, slots = run(lambda i: i % 64, seed=5)
        hammer, _ = run(lambda i: 3, seed=6)
        _, p = sequences_indistinguishable(seq, hammer, slots)
        assert p > 1e-4
