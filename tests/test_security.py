"""Obliviousness tests (P4): the adversary's view is pattern-independent.

These are the operational security checks of paper sections 2.1 and 4.6:
the observed leaf sequence must be uniform and unlinkable, and must be
statistically indistinguishable between different logical workloads --
including when super block schemes merge and break underneath.
"""

import pytest

from repro.config import ORAMConfig
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.oram.path_oram import PathORAM
from repro.security.observer import AccessObserver
from repro.security.statistics import (
    INSUFFICIENT_DATA,
    chi_square_uniformity,
    lag_autocorrelation,
    leaf_histogram,
    sequences_indistinguishable,
)
from repro.utils.rng import DeterministicRng

LEVELS = 6
NUM_LEAVES = 1 << LEVELS
P_FLOOR = 1e-4  # tests pass unless wildly non-uniform


def run_pattern(addr_fn, accesses=3000, seed=7, scheme_factory=None):
    """Drive an ORAM (optionally with a scheme) and return observed leaves."""
    observer = AccessObserver()
    config = ORAMConfig(levels=LEVELS, bucket_size=4, stash_blocks=60, utilization=0.5)
    oram = PathORAM(config, DeterministicRng(seed), observer=observer, populate=False)
    llc = set()
    scheme = scheme_factory() if scheme_factory else None
    if scheme is not None:
        scheme.attach(oram, lambda addr: addr in llc)
        scheme.initialize()
    oram.populate()
    n = oram.position_map.num_blocks
    for i in range(accesses):
        addr = addr_fn(i, n)
        if scheme is None:
            oram.access([addr])
        else:
            if addr in llc:
                scheme.on_llc_hit(addr)
                continue
            members = scheme.members_for(addr)
            blocks = oram.begin_access(members)
            fetched = {m: blocks[m] for m in members if m not in llc}
            outcome = scheme.process_fetch(addr, members, fetched)
            oram.finish_access()
            for a, _ in outcome.to_llc:
                llc.add(a)
            if len(llc) > 64:  # small LLC: evict oldest-ish arbitrarily
                victim = min(llc)
                llc.discard(victim)
                scheme.on_llc_evict(victim)
        oram.drain_stash()
    return observer.leaves()


class TestBaselineObliviousness:
    def test_sequential_pattern_uniform_leaves(self):
        leaves = run_pattern(lambda i, n: i % n)
        _, p = chi_square_uniformity(leaves, NUM_LEAVES)
        assert p > P_FLOOR

    def test_single_address_pattern_uniform_leaves(self):
        # Hammering one block still touches uniformly random paths.
        leaves = run_pattern(lambda i, n: 0)
        _, p = chi_square_uniformity(leaves, NUM_LEAVES)
        assert p > P_FLOOR

    def test_unlinkability(self):
        leaves = run_pattern(lambda i, n: i % n)
        assert abs(lag_autocorrelation(leaves, lag=1)) < 0.06
        assert abs(lag_autocorrelation(leaves, lag=2)) < 0.06

    def test_sequential_vs_random_indistinguishable(self):
        seq = run_pattern(lambda i, n: i % n, seed=7)
        rng = DeterministicRng(99)
        rand = run_pattern(lambda i, n: rng.randint(0, n - 1), seed=8)
        _, p = sequences_indistinguishable(seq, rand, NUM_LEAVES)
        assert p > P_FLOOR


class TestSuperBlockObliviousness:
    """Section 4.6: dynamic super blocks add no observable structure."""

    def test_dyn_scheme_leaves_uniform_under_streaming(self):
        leaves = run_pattern(
            lambda i, n: i % 128,  # heavy streaming: lots of merging
            scheme_factory=lambda: DynamicSuperBlockScheme(max_sbsize=2),
        )
        _, p = chi_square_uniformity(leaves, NUM_LEAVES)
        assert p > P_FLOOR

    def test_dyn_scheme_unlinkable(self):
        leaves = run_pattern(
            lambda i, n: i % 128,
            scheme_factory=lambda: DynamicSuperBlockScheme(max_sbsize=2),
        )
        assert abs(lag_autocorrelation(leaves, lag=1)) < 0.06

    def test_streaming_vs_random_indistinguishable_with_dyn(self):
        # The adversary cannot tell a merging-heavy workload from a
        # non-merging one by the leaf sequence.
        streaming = run_pattern(
            lambda i, n: i % 128,
            scheme_factory=lambda: DynamicSuperBlockScheme(max_sbsize=2),
            seed=7,
        )
        rng = DeterministicRng(4)
        random_leaves = run_pattern(
            lambda i, n: rng.randint(0, n - 1),
            scheme_factory=lambda: DynamicSuperBlockScheme(max_sbsize=2),
            seed=9,
        )
        n = min(len(streaming), len(random_leaves))
        _, p = sequences_indistinguishable(streaming[:n], random_leaves[:n], NUM_LEAVES)
        assert p > P_FLOOR


class TestStatisticsHelpers:
    def test_chi_square_detects_skew(self):
        skewed = [0] * 900 + [1] * 100
        _, p = chi_square_uniformity(skewed, 2)
        assert p < 1e-6

    def test_histogram(self):
        assert leaf_histogram([0, 0, 3], 4) == [2, 0, 0, 1]

    def test_empty_returns_insufficient_data(self):
        # Regression: these used to raise ValueError, which crashed any
        # live monitor fed a cold window.  Empty input is now a defined
        # "cannot test" answer: statistic 0, p-value 1.
        assert chi_square_uniformity([], 4) == INSUFFICIENT_DATA
        assert sequences_indistinguishable([], [1], 4) == INSUFFICIENT_DATA

    def test_short_sequence_does_not_collapse_to_one_bin(self):
        # Regression: the bin-coarsening loop (`while bins > 1 and
        # len(leaves)/bins < min_expected`) collapses to a single bin for
        # very short sequences, and a one-bin chi-squared has zero degrees
        # of freedom -- scipy divides by it (nan / ZeroDivision territory).
        for n in range(1, 8):
            statistic, p_value = chi_square_uniformity(list(range(n)), 64)
            assert (statistic, p_value) == INSUFFICIENT_DATA

    def test_short_pair_insufficient(self):
        result = sequences_indistinguishable([1, 2], [3, 4], 64)
        assert result == INSUFFICIENT_DATA

    def test_sufficient_data_still_tested(self):
        # The guard must not swallow real tests: a healthy-sized uniform
        # sample gets an actual chi-squared verdict, not the sentinel.
        rng = DeterministicRng(11)
        leaves = [rng.randbelow(16) for _ in range(800)]
        statistic, p_value = chi_square_uniformity(leaves, 16)
        assert statistic > 0.0
        assert p_value > P_FLOOR

    def test_autocorrelation_requires_length(self):
        with pytest.raises(ValueError):
            lag_autocorrelation([1, 2], lag=5)

    def test_linkable_sequence_flagged(self):
        # A pathological "ORAM" that reuses the previous leaf is caught.
        linkable = []
        value = 0
        rng = DeterministicRng(3)
        for _ in range(2000):
            if rng.random() < 0.7:
                value = rng.randint(0, NUM_LEAVES - 1)
            linkable.append(value)
        assert abs(lag_autocorrelation(linkable, lag=1)) > 0.2
