"""Unit tests for the ORAM/DRAM latency models."""

import pytest  # noqa: F401 - approx

from repro.config import DRAMConfig, ORAMConfig
from repro.memory.timing import ORAMTimingModel, dram_access_cycles


class TestORAMTiming:
    def test_table1_path_latency_magnitude(self):
        """With Table 1 parameters a path access costs ~1350 cycles, and a
        request averaging ~0.75 PosMap misses lands near the paper's quoted
        2364-cycle Path ORAM latency."""
        model = ORAMTimingModel.from_config(ORAMConfig(), DRAMConfig())
        assert 1200 <= model.path_cycles <= 1500
        # One demand access plus one recursion access straddles 2364.
        assert model.access_cycles(1) < 2364 < model.access_cycles(2)

    def test_path_bytes_formula(self):
        oram = ORAMConfig()
        model = ORAMTimingModel.from_config(oram, DRAMConfig())
        levels = oram.nominal_levels
        assert model.bytes_per_path == (levels + 1) * oram.bucket_size * oram.block_bytes * 2

    def test_latency_scales_with_bandwidth(self):
        slow = ORAMTimingModel.from_config(ORAMConfig(), DRAMConfig(bandwidth_gbps=4.0))
        fast = ORAMTimingModel.from_config(ORAMConfig(), DRAMConfig(bandwidth_gbps=16.0))
        assert slow.path_cycles > 2 * fast.path_cycles

    def test_latency_scales_with_z(self):
        z3 = ORAMTimingModel.from_config(ORAMConfig(bucket_size=3), DRAMConfig())
        z4 = ORAMTimingModel.from_config(ORAMConfig(bucket_size=4), DRAMConfig())
        assert z4.path_cycles > z3.path_cycles

    def test_latency_scales_with_block_size(self):
        small = ORAMTimingModel.from_config(ORAMConfig(block_bytes=64), DRAMConfig())
        large = ORAMTimingModel.from_config(ORAMConfig(block_bytes=256), DRAMConfig())
        # Bigger lines: fewer levels (same capacity) but more bytes per level.
        assert large.bytes_per_path > small.bytes_per_path

    def test_access_cycles_multiplies(self):
        model = ORAMTimingModel.from_config(ORAMConfig(), DRAMConfig())
        assert model.access_cycles(3) == 3 * model.path_cycles


class TestDRAMTiming:
    def test_line_fill(self):
        # 100-cycle latency + 128 B over 16 B/cycle = 108.
        assert dram_access_cycles(DRAMConfig(), 128) == 108

    def test_bandwidth_term(self):
        assert dram_access_cycles(DRAMConfig(bandwidth_gbps=4.0), 128) == 132
