"""Tests for the figure-gallery example's table parsing and charting."""

import importlib.util
from pathlib import Path

import pytest


def load_example():
    path = Path(__file__).parent.parent / "examples" / "figure_gallery.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SAMPLE = """Figure X: a sample
locality    stat     dyn
--------  ------  ------
     0.0  -0.144  -0.004
     1.0  +0.433  +0.566
"""


def test_parse_table(tmp_path):
    module = load_example()
    path = tmp_path / "t.txt"
    path.write_text(SAMPLE)
    title, headers, rows = module.parse_table(path)
    assert title.startswith("Figure X")
    assert headers == ["locality", "stat", "dyn"]
    assert rows[0] == ["0.0", "-0.144", "-0.004"]


def test_numeric():
    module = load_example()
    assert module.numeric("+0.5") == 0.5
    assert module.numeric("-1.25") == -1.25
    assert module.numeric("abc") is None


def test_chart_from_table(tmp_path):
    module = load_example()
    path = tmp_path / "t.txt"
    path.write_text(SAMPLE)
    chart = module.chart_from_table(path, ["stat", "dyn"])
    assert "Figure X" in chart
    assert "+0.566" in chart
    assert "#" in chart


def test_chart_skips_non_numeric_rows(tmp_path):
    module = load_example()
    path = tmp_path / "t.txt"
    path.write_text(SAMPLE + "     avg     n/a     n/a\n")
    chart = module.chart_from_table(path, ["stat", "dyn"])
    assert "avg" not in chart
