"""Unit tests for the Goldreich-Ostrovsky square-root ORAM baseline."""

import pytest

from repro.oram.square_root import SquareRootORAM
from repro.security.observer import AccessObserver
from repro.utils.rng import DeterministicRng


def make_oram(n=64, seed=3, observer=None):
    return SquareRootORAM(n, rng=DeterministicRng(seed), observer=observer)


class TestFunctionality:
    def test_write_read_roundtrip(self):
        oram = make_oram()
        oram.access(5, new_value="hello")
        assert oram.access(5) == "hello"

    def test_values_survive_reshuffles(self):
        oram = make_oram(n=25)  # shelter of 5: reshuffles every few accesses
        for addr in range(25):
            oram.access(addr, new_value=addr * 10)
        assert oram.reshuffles > 1
        for addr in range(25):
            assert oram.access(addr) == addr * 10

    def test_unwritten_reads_none(self):
        assert make_oram().access(3) is None

    def test_bounds(self):
        with pytest.raises(KeyError):
            make_oram(n=8).access(8)
        with pytest.raises(ValueError):
            SquareRootORAM(0)

    def test_shelter_size_is_sqrt(self):
        assert make_oram(n=64).shelter_size == 8
        assert make_oram(n=100).shelter_size == 10


class TestObliviousness:
    def test_probed_slots_never_repeat_between_reshuffles(self):
        observer = AccessObserver()
        oram = make_oram(n=64, observer=observer)
        # Hammer one address: every probe must hit a fresh slot anyway.
        epoch_slots = []
        reshuffles_before = oram.reshuffles
        for _ in range(oram.shelter_size - 1):
            oram.access(7)
        assert oram.reshuffles == reshuffles_before
        slots = observer.leaves()
        assert len(slots) == len(set(slots))

    def test_repeated_vs_distinct_addresses_same_probe_count(self):
        hammer = make_oram(n=64, seed=5)
        for _ in range(40):
            hammer.access(7)
        spread = make_oram(n=64, seed=5)
        for addr in range(40):
            spread.access(addr % 64)
        assert hammer.server_probes == spread.server_probes
        assert hammer.accesses == spread.accesses


class TestCostModel:
    def test_far_more_expensive_than_tree_oram(self):
        # The history lesson: amortized cost per access is much larger than
        # a Path ORAM path (which touches (L+1) buckets).
        oram = make_oram(n=256)
        for addr in range(256):
            oram.access(addr)
        # Path ORAM at n=256 would touch ~9 buckets per access.
        assert oram.probes_per_access() > 30
