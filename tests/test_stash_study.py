"""Unit tests for the stash occupancy study helpers."""

import pytest

from repro.analysis.stash_study import StashProfile, compare_schemes, stash_occupancy_profile
from repro.config import CacheConfig, ORAMConfig, SystemConfig
from repro.workloads.synthetic import sequential_trace


def small_config():
    return SystemConfig(
        oram=ORAMConfig(levels=8, bucket_size=4, stash_blocks=40, utilization=0.6),
        l1=CacheConfig(capacity_bytes=2 * 1024, associativity=2),
        llc=CacheConfig(capacity_bytes=8 * 1024, associativity=8, hit_latency=8),
    )


class TestStashProfile:
    def make(self):
        return StashProfile(scheme="x", capacity=10, samples=[0, 2, 4, 6, 8, 10])

    def test_statistics(self):
        p = self.make()
        assert p.peak == 10
        assert p.mean == pytest.approx(5.0)
        assert p.quantile(0.0) == 0
        assert p.quantile(1.0) == 10

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            self.make().quantile(1.5)

    def test_histogram(self):
        p = self.make()
        counts = p.occupancy_histogram(buckets=5)
        assert sum(counts) == len(p.samples)
        assert len(counts) == 5

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            self.make().occupancy_histogram(0)

    def test_empty_profile(self):
        p = StashProfile(scheme="x", capacity=10)
        assert p.peak == 0 and p.mean == 0.0 and p.quantile(0.5) == 0

    def test_summary_mentions_scheme(self):
        assert "x:" in self.make().summary()


class TestProfiling:
    def test_profiles_sample_per_demand_access(self):
        trace = sequential_trace(footprint_blocks=512, accesses=1500, gap_mean=5)
        profile = stash_occupancy_profile(trace, "oram", config=small_config())
        assert len(profile.samples) > 0
        assert all(0 <= s for s in profile.samples)

    def test_super_blocks_raise_occupancy(self):
        trace = sequential_trace(footprint_blocks=512, accesses=2500, gap_mean=5)
        profiles = {
            p.scheme: p
            for p in compare_schemes(trace, ("oram", "stat"), config=small_config())
        }
        assert profiles["stat"].mean >= profiles["oram"].mean

    def test_dram_rejected(self):
        trace = sequential_trace(footprint_blocks=128, accesses=100)
        with pytest.raises(ValueError):
            stash_occupancy_profile(trace, "dram", config=small_config())
