"""Smoke tests for the multicore example's helper functions."""

import importlib.util
from pathlib import Path


def load_example():
    path = Path(__file__).parent.parent / "examples" / "multicore_contention.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_hungry_trace_shape():
    module = load_example()
    trace = module.hungry_trace("w", seed=1, footprint=256, n=400)
    assert len(trace) == 400
    assert trace.footprint_blocks == 256
    assert all(0 <= e[1] < 256 for e in trace.entries)


def test_traces_differ_by_seed():
    module = load_example()
    a = module.hungry_trace("a", seed=1, footprint=256, n=200)
    b = module.hungry_trace("b", seed=2, footprint=256, n=200)
    assert a.entries != b.entries
