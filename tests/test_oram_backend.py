"""Unit tests for the ORAM memory backend."""

import pytest

from repro.config import DRAMConfig, ORAMConfig
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.memory.oram_backend import ORAMBackend
from repro.oram.super_block import BaselineScheme, StaticSuperBlockScheme
from repro.utils.rng import DeterministicRng


def make_backend(scheme=None, levels=7, stash=50, bucket_size=4, utilization=0.5):
    config = ORAMConfig(levels=levels, bucket_size=bucket_size, stash_blocks=stash,
                        utilization=utilization)
    return ORAMBackend(
        config, DRAMConfig(), scheme or BaselineScheme(), DeterministicRng(8)
    )


class TestDemand:
    def test_serialized_latency(self):
        backend = make_backend()
        first = backend.demand_access(1, now=0, is_write=False)
        second = backend.demand_access(2, now=0, is_write=False)
        # A single ORAM access saturates the channel: no overlap.
        assert second.completion_cycle >= first.completion_cycle + backend.timing.path_cycles

    def test_latency_includes_posmap_walk(self):
        backend = make_backend()
        cold = backend.demand_access(1, now=0, is_write=False)
        # The cold access paid extra path accesses for the PosMap walk.
        assert cold.completion_cycle >= backend.timing.access_cycles(2)
        assert backend.stats.posmap_accesses > 0

    def test_fill_contains_demand(self):
        backend = make_backend()
        result = backend.demand_access(7, now=0, is_write=False)
        assert (7, False) in result.filled

    def test_rejects_out_of_range(self):
        backend = make_backend()
        with pytest.raises(ValueError):
            backend.demand_access(10**9, now=0, is_write=False)

    def test_functional_invariants_hold_after_traffic(self):
        backend = make_backend()
        n = backend.oram.position_map.num_blocks
        for i in range(50):
            backend.demand_access((i * 37) % n, now=i * 10, is_write=False)
        backend.oram.check_invariants()


class TestSuperBlockFill:
    def test_static_scheme_fills_pair(self):
        backend = make_backend(scheme=StaticSuperBlockScheme(2))
        result = backend.demand_access(6, now=0, is_write=False)
        fills = dict(result.filled)
        assert fills[6] is False
        assert fills[7] is True  # the prefetched partner

    def test_llc_resident_member_not_refilled(self):
        backend = make_backend(scheme=StaticSuperBlockScheme(2))
        resident = {7}
        backend.set_llc_probe(lambda addr: addr in resident)
        result = backend.demand_access(6, now=0, is_write=False)
        fills = dict(result.filled)
        assert 7 not in fills  # already cached: not "coming from ORAM"


class TestWriteback:
    def test_dirty_eviction_is_full_access(self):
        backend = make_backend()
        before = backend.stats.memory_accesses
        backend.evict_line(3, dirty=True, now=0)
        assert backend.stats.write_accesses == 1
        assert backend.stats.memory_accesses > before
        assert backend.busy_until > 0

    def test_clean_eviction_free(self):
        backend = make_backend()
        backend.evict_line(3, dirty=False, now=0)
        assert backend.stats.write_accesses == 0
        assert backend.stats.memory_accesses == 0

    def test_writeback_occupies_controller(self):
        backend = make_backend()
        backend.evict_line(3, dirty=True, now=0)
        blocked = backend.demand_access(4, now=0, is_write=False)
        assert blocked.completion_cycle >= 2 * backend.timing.path_cycles


class TestPrefetch:
    def test_prefetch_declined_when_busy(self):
        backend = make_backend()
        backend.demand_access(1, now=0, is_write=False)
        assert backend.prefetch_access(2, now=0) is None

    def test_prefetch_served_when_idle(self):
        backend = make_backend()
        result = backend.prefetch_access(2, now=0)
        assert result is not None
        assert result.filled == [(2, True)]
        # The prefetched line carries the pending-prefetch bit.
        assert backend.oram.position_map.prefetch_bit(2) == 1

    def test_prefetch_out_of_range_declined(self):
        backend = make_backend()
        assert backend.prefetch_access(10**9, now=0) is None


class TestDynamicIntegration:
    def test_dynamic_backend_runs_and_keeps_invariants(self):
        backend = make_backend(scheme=DynamicSuperBlockScheme(max_sbsize=2))
        resident = set()
        backend.set_llc_probe(lambda addr: addr in resident)
        n = backend.oram.position_map.num_blocks
        # Streaming passes over a small region to trigger merging.
        for _ in range(4):
            for addr in range(0, 32):
                result = backend.demand_access(addr, now=0, is_write=False)
                for a, _pf in result.filled:
                    resident.add(a)
            for addr in list(resident):
                resident.discard(addr)
                backend.evict_line(addr, dirty=False, now=0)
        assert backend.scheme.stats.merges > 0
        backend.oram.check_invariants()

    def test_background_evictions_counted(self):
        backend = make_backend(
            scheme=StaticSuperBlockScheme(2), stash=8, levels=8,
            bucket_size=3, utilization=0.7,
        )
        n = backend.oram.position_map.num_blocks
        rng = DeterministicRng(3)
        for i in range(300):
            backend.demand_access(rng.randint(0, n - 1), now=0, is_write=False)
        # With a tiny stash and pair fetches, background evictions happen.
        assert backend.stats.dummy_accesses > 0
        assert backend.background_eviction_rate > 0.0
