"""Unit tests for the recursive/unified ORAM accounting model."""

import pytest

from repro.oram.recursion import PosMapHierarchy


def make_hierarchy(hierarchies=4, entries=32, cache=8):
    return PosMapHierarchy(hierarchies, entries, cache)


class TestWalk:
    def test_first_lookup_misses_everything(self):
        h = make_hierarchy()
        # Cold cache: all three PosMap levels must be fetched.
        assert h.lookup(0) == 3

    def test_second_lookup_same_block_hits(self):
        h = make_hierarchy()
        h.lookup(0)
        assert h.lookup(1) == 0  # same level-1 PosMap block (entries=32)

    def test_neighbor_posmap_block_partial_walk(self):
        h = make_hierarchy()
        h.lookup(0)
        # Address 32 needs a different level-1 block, but its level-2
        # block (covering addresses 0..1023) is cached.
        assert h.lookup(32) == 1

    def test_ids_structure(self):
        h = make_hierarchy(hierarchies=4, entries=32)
        ids = h.posmap_block_ids(32 * 32 + 5)
        assert ids == [(1, 32), (2, 1), (3, 0)]

    def test_single_hierarchy_never_walks(self):
        h = make_hierarchy(hierarchies=1)
        assert h.lookup(123) == 0
        assert h.posmap_block_accesses == 0

    def test_rejects_zero_hierarchies(self):
        with pytest.raises(ValueError):
            PosMapHierarchy(0, 32, 8)

    def test_disabled_cache_always_walks_fully(self):
        h = make_hierarchy(hierarchies=4, cache=0)
        assert h.lookup(0) == 3
        assert h.lookup(0) == 3  # nothing was cached
        assert h.hit_rate() == 0.0


class TestCache:
    def test_lru_eviction(self):
        h = make_hierarchy(hierarchies=2, entries=4, cache=2)
        h.lookup(0)   # caches (1, 0)
        h.lookup(4)   # caches (1, 1)
        h.lookup(8)   # caches (1, 2), evicts (1, 0)
        assert h.lookup(0) == 1  # miss again

    def test_lru_refresh_on_hit(self):
        h = make_hierarchy(hierarchies=2, entries=4, cache=2)
        h.lookup(0)
        h.lookup(4)
        h.lookup(0)   # refresh (1, 0)
        h.lookup(8)   # should evict (1, 1), not (1, 0)
        assert h.lookup(0) == 0
        assert h.lookup(4) == 1


class TestStats:
    def test_hit_rate_and_average(self):
        h = make_hierarchy()
        h.lookup(0)          # 3 extra
        h.lookup(1)          # 0 extra
        assert h.lookups == 2
        assert h.posmap_block_accesses == 3
        assert h.hit_rate() == pytest.approx(0.5)
        assert h.average_extra_accesses() == pytest.approx(1.5)

    def test_empty_stats(self):
        h = make_hierarchy()
        assert h.hit_rate() == 0.0
        assert h.average_extra_accesses() == 0.0
