"""Unit tests for the Table 1 configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    DEFAULT_CONFIG,
    DRAMConfig,
    ORAMConfig,
    SystemConfig,
)


class TestORAMConfig:
    def test_defaults_match_table1(self):
        cfg = ORAMConfig()
        assert cfg.capacity_bytes == 8 * 1024**3
        assert cfg.block_bytes == 128
        assert cfg.bucket_size == 3
        assert cfg.stash_blocks == 100
        assert cfg.num_hierarchies == 4
        assert cfg.max_super_block_size == 2

    def test_geometry(self):
        cfg = ORAMConfig(levels=4)
        assert cfg.num_leaves == 16
        assert cfg.num_buckets == 31
        assert cfg.tree_capacity_blocks == 31 * 3

    def test_nominal_levels_for_8gb(self):
        # 2^26 blocks at ~70% utilization of a Z=3 tree.
        cfg = ORAMConfig()
        levels = cfg.nominal_levels
        assert 24 <= levels <= 26
        capacity = ((1 << (levels + 1)) - 1) * cfg.bucket_size
        assert capacity * cfg.utilization >= cfg.capacity_bytes // cfg.block_bytes

    def test_scaled_to_footprint(self):
        cfg = ORAMConfig()
        scaled = cfg.scaled_to_footprint(10_000)
        assert scaled.num_blocks >= 10_000
        # Smallest tree satisfying the footprint: one level less is too small.
        smaller = ORAMConfig(levels=scaled.levels - 1)
        assert smaller.tree_capacity_blocks * cfg.utilization < 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ORAMConfig(levels=0)
        with pytest.raises(ValueError):
            ORAMConfig(bucket_size=0)
        with pytest.raises(ValueError):
            ORAMConfig(block_bytes=100)
        with pytest.raises(ValueError):
            ORAMConfig(max_super_block_size=3)
        with pytest.raises(ValueError):
            ORAMConfig(utilization=0.0)


class TestCacheConfig:
    def test_table1_llc(self):
        llc = DEFAULT_CONFIG.llc
        assert llc.capacity_bytes == 512 * 1024
        assert llc.associativity == 8
        assert llc.num_lines == 4096
        assert llc.num_sets == 512

    def test_index_bits(self):
        cfg = CacheConfig(capacity_bytes=16 * 1024, associativity=4, block_bytes=128)
        assert cfg.num_sets == 32
        assert cfg.index_bits == 5

    def test_rejects_unaligned_capacity(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=1000, associativity=3, block_bytes=128)


class TestDRAMConfig:
    def test_bytes_per_cycle(self):
        # 16 GB/s at 1 GHz = 16 bytes per cycle.
        assert DRAMConfig().bytes_per_cycle == pytest.approx(16.0)

    def test_bandwidth_scales(self):
        assert DRAMConfig(bandwidth_gbps=4.0).bytes_per_cycle == pytest.approx(4.0)


class TestSystemConfig:
    def test_block_size_consistency_enforced(self):
        with pytest.raises(ValueError):
            SystemConfig(
                oram=ORAMConfig(block_bytes=128),
                l1=CacheConfig(capacity_bytes=32 * 1024, associativity=4, block_bytes=64),
            )

    def test_with_block_bytes(self):
        cfg = DEFAULT_CONFIG.with_block_bytes(64)
        assert cfg.oram.block_bytes == 64
        assert cfg.l1.block_bytes == 64
        assert cfg.llc.block_bytes == 64
        # Line count doubles at half the line size.
        assert cfg.llc.num_lines == 2 * DEFAULT_CONFIG.llc.num_lines
