"""System-level obliviousness: the full simulator's adversary view.

The unit security tests drive the ORAM directly; these run the *entire*
secure processor (core + caches + backend + PrORAM + write-backs) and
audit what the memory bus shows.  This is the strongest form of P4 the
reproduction can check: merging, breaking, dirty write-backs and
background evictions all happen underneath, and the leaf sequence must
still look like noise.
"""

import pytest

from repro.config import CacheConfig, ORAMConfig, SystemConfig
from repro.security.observer import AccessObserver
from repro.security.statistics import (
    chi_square_uniformity,
    lag_autocorrelation,
    sequences_indistinguishable,
)
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

LEVELS_EXPECTED = 9  # footprint 1024 at util 0.5 on a Z=4 tree


def small_config():
    return SystemConfig(
        oram=ORAMConfig(levels=8, bucket_size=4, stash_blocks=60, utilization=0.5),
        l1=CacheConfig(capacity_bytes=2 * 1024, associativity=2),
        llc=CacheConfig(capacity_bytes=8 * 1024, associativity=8, hit_latency=8),
    )


def observed_leaves(trace, scheme="dyn"):
    observer = AccessObserver()
    system = SecureSystem.build(
        scheme, trace.footprint_blocks, small_config(), observer=observer
    )
    system.run(trace)
    return observer.leaves(), system.backend.oram.config.num_leaves


def streaming_trace(writes=0.3, n=6000, footprint=1024, seed=2):
    rng = DeterministicRng(seed)
    trace = Trace("stream", footprint_blocks=footprint)
    for i in range(n):
        trace.append(3, i % footprint, is_write=rng.random() < writes)
    return trace


def random_trace(writes=0.3, n=6000, footprint=1024, seed=5):
    rng = DeterministicRng(seed)
    trace = Trace("rand", footprint_blocks=footprint)
    for _ in range(n):
        trace.append(3, rng.randint(0, footprint - 1), is_write=rng.random() < writes)
    return trace


class TestSystemLevelObliviousness:
    def test_full_system_leaf_uniformity_with_dyn(self):
        leaves, num_leaves = observed_leaves(streaming_trace())
        _, p = chi_square_uniformity(leaves, num_leaves)
        assert p > 1e-4

    def test_full_system_unlinkability_with_dyn(self):
        leaves, _ = observed_leaves(streaming_trace())
        assert abs(lag_autocorrelation(leaves, lag=1)) < 0.06

    def test_streaming_vs_random_indistinguishable_end_to_end(self):
        seq_leaves, num_leaves = observed_leaves(streaming_trace())
        rand_leaves, _ = observed_leaves(random_trace())
        n = min(len(seq_leaves), len(rand_leaves))
        _, p = sequences_indistinguishable(seq_leaves[:n], rand_leaves[:n], num_leaves)
        assert p > 1e-4

    def test_write_heavy_vs_read_only_indistinguishable(self):
        # Reads and writes must look identical on the bus: compare an
        # all-reads run against a write-heavy run of the same addresses.
        ro_leaves, num_leaves = observed_leaves(streaming_trace(writes=0.0))
        rw_leaves, _ = observed_leaves(streaming_trace(writes=0.9, seed=2))
        n = min(len(ro_leaves), len(rw_leaves))
        _, p = sequences_indistinguishable(ro_leaves[:n], rw_leaves[:n], num_leaves)
        assert p > 1e-4

    @pytest.mark.parametrize("scheme", ["oram", "stat", "dyn", "dyn_intvl"])
    def test_every_scheme_is_uniform(self, scheme):
        leaves, num_leaves = observed_leaves(streaming_trace(n=4000), scheme=scheme)
        _, p = chi_square_uniformity(leaves, num_leaves)
        assert p > 1e-4
