"""Unit tests for the probabilistic encryption layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oram.block import Block
from repro.oram.crypto import (
    ProbabilisticCipher,
    open_block,
    seal_block,
    seal_bucket,
    seal_dummy,
)
from repro.utils.rng import DeterministicRng


def make_cipher(seed=1):
    return ProbabilisticCipher(b"k" * 16, DeterministicRng(seed))


class TestCipher:
    def test_roundtrip(self):
        cipher = make_cipher()
        blob = cipher.encrypt(b"hello world")
        assert cipher.decrypt(blob) == b"hello world"

    def test_probabilistic(self):
        # The same plaintext encrypts to different ciphertexts every time.
        cipher = make_cipher()
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_fixed_nonce_is_deterministic(self):
        cipher = make_cipher()
        nonce = b"n" * 16
        assert cipher.encrypt(b"x", nonce) == cipher.encrypt(b"x", nonce)

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            ProbabilisticCipher(b"short")

    def test_rejects_bad_nonce(self):
        with pytest.raises(ValueError):
            make_cipher().encrypt(b"x", nonce=b"tiny")

    def test_rejects_truncated_ciphertext(self):
        with pytest.raises(ValueError):
            make_cipher().decrypt(b"abc")

    @given(st.binary(max_size=300))
    def test_roundtrip_property(self, payload):
        cipher = make_cipher()
        assert cipher.decrypt(cipher.encrypt(payload)) == payload


class TestBlockSealing:
    def test_seal_open_roundtrip(self):
        cipher = make_cipher()
        blob = seal_block(cipher, addr=42, leaf=7, data=b"payload", block_bytes=32)
        opened = open_block(cipher, blob, block_bytes=32)
        assert opened is not None
        addr, leaf, data = opened
        assert addr == 42 and leaf == 7
        assert data.rstrip(b"\0") == b"payload"

    def test_dummy_opens_to_none(self):
        cipher = make_cipher()
        blob = seal_dummy(cipher, block_bytes=32)
        assert open_block(cipher, blob, block_bytes=32) is None

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            seal_block(make_cipher(), 1, 1, b"x" * 33, block_bytes=32)


class TestBucketSealing:
    def test_bucket_always_z_slots(self):
        # Section 2.2: buckets with fewer than Z blocks are padded with
        # indistinguishable dummies.
        cipher = make_cipher()
        image = seal_bucket(cipher, [Block(1, 0, b"a")], bucket_size=4, block_bytes=16)
        assert len(image) == 4
        lengths = {len(slot) for slot in image}
        assert len(lengths) == 1  # identical ciphertext sizes

    def test_bucket_overflow_rejected(self):
        cipher = make_cipher()
        blocks = [Block(i, 0, b"") for i in range(3)]
        with pytest.raises(ValueError):
            seal_bucket(cipher, blocks, bucket_size=2, block_bytes=16)

    def test_real_and_dummy_indistinguishable_without_key(self):
        # Identical sizes and fresh nonces: the serialized images carry no
        # structural marker of realness.  (A weak but meaningful check: no
        # byte position is constant across many dummy encryptions.)
        cipher = make_cipher()
        dummies = [seal_dummy(cipher, 16) for _ in range(64)]
        constant_positions = [
            i
            for i in range(len(dummies[0]))
            if len({d[i] for d in dummies}) == 1
        ]
        assert not constant_positions
