"""Unit tests for the hardware-cost accounting (section 4.5)."""

import pytest

from repro.config import ORAMConfig
from repro.core.hardware import (
    OperationCounts,
    leaf_label_bits,
    max_super_block_size_supported,
    posmap_block_fits,
    storage_overhead,
)


class TestStorage:
    def test_paper_overhead_claim(self):
        # "the storage overhead of dynamic super block is only 4 bits per
        # block, less than 0.4%"
        overhead = storage_overhead(ORAMConfig())
        assert overhead.bits_per_block == 4
        assert overhead.fraction < 0.004

    def test_leaf_label_bits_table1(self):
        # The paper's example packs 25-bit leaf labels.
        assert 24 <= leaf_label_bits(ORAMConfig()) <= 26

    def test_posmap_entry_layout(self):
        overhead = storage_overhead(ORAMConfig())
        assert overhead.posmap_entry_extra_bits == 3  # merge + break + prefetch
        assert overhead.posmap_entry_bits == leaf_label_bits(ORAMConfig()) + 3

    def test_posmap_block_packing_constraint(self):
        # 32 x (25 + 2) = 864 bits fits in a 128 B (1024-bit) block.
        assert posmap_block_fits(ORAMConfig())
        # Doubling the entry count overflows the block.
        assert not posmap_block_fits(ORAMConfig(posmap_entries_per_block=64))

    def test_max_super_block_size(self):
        assert max_super_block_size_supported(ORAMConfig()) == 16


class TestOperationCounts:
    def test_merge_check_costs(self):
        counts = OperationCounts()
        counts.record_merge_check(neighbor_size=2)
        assert counts.llc_tag_probes == 2
        assert counts.counter_updates == 1
        assert counts.posmap_bit_writes == 4

    def test_break_check_costs(self):
        counts = OperationCounts()
        counts.record_break_check(sbsize=4)
        assert counts.counter_updates == 1
        assert counts.posmap_bit_writes == 4
