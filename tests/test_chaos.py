"""Tests for the cross-layer chaos harness (``repro.faults.chaos``).

The full soak lives in ``benchmarks/bench_chaos.py``; here the scenario
grammar, event scaling, determinism, and each layer's gates are pinned
on storms small enough for the unit suite.  The parallel layer -- the
slow one, since it spawns real processes and rides a wall-clock
deadline -- runs once as a single compact storm.
"""

import json

import pytest

from repro.faults.chaos import (
    ChaosEvent,
    ChaosReport,
    ChaosScenario,
    chaos_policy,
    default_storm,
    run_bank_storm,
    run_chaos,
    run_kv_storm,
)

SMALL = ChaosScenario(
    num_shards=2,
    footprint_blocks=128,
    parallel_ops=600,
    kv_ops=400,
    bank_ops=1200,
    batch_size=16,
    max_inflight=2,
)


# --------------------------------------------------------------- grammar
class TestScenarioGrammar:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosEvent(10, "explode", 0)
        with pytest.raises(ValueError):
            ChaosEvent(-1, "kill", 0)

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="two shards"):
            ChaosScenario(num_shards=1)
        with pytest.raises(ValueError):
            ChaosScenario(kv_ops=-1)

    def test_default_storm_composes_kill_and_hang(self):
        events = default_storm(8000, 4)
        assert [event.action for event in events] == ["kill", "hang", "kill"]
        assert [event.shard for event in events] == [0, 1, 2]
        assert all(0 <= event.at_op < 8000 for event in events)

    def test_storm_events_scale_to_stream(self):
        scenario = ChaosScenario(num_shards=2, parallel_ops=8000)
        scaled = scenario.storm_events(800)
        assert [event.at_op for event in scaled] == [200, 400, 500]
        # shards wrap onto the scenario width
        assert all(event.shard < 2 for event in scaled)
        assert scenario.storm_events(0) == ()

    def test_requests_are_seed_deterministic(self):
        scenario = ChaosScenario(num_shards=2, seed=7)
        assert scenario.requests(100, salt=1) == scenario.requests(100, salt=1)
        assert scenario.requests(100, salt=1) != scenario.requests(100, salt=2)
        assert scenario.requests(100, salt=1) != ChaosScenario(
            num_shards=2, seed=8
        ).requests(100, salt=1)

    def test_total_ops(self):
        assert SMALL.total_ops == 600 + 400 + 1200

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos layers"):
            run_chaos(SMALL, layers=("kv", "cache"))


# ---------------------------------------------------------------- layers
class TestKvStorm:
    def test_zero_lost_under_all_fault_classes(self):
        result = run_kv_storm(SMALL)
        assert result["ops"] == SMALL.kv_ops
        assert result["faults_injected"] > 0
        assert result["mismatches"] == 0
        assert result["fsck_clean"]
        assert result["zero_lost"]

    def test_kv_storm_deterministic(self):
        first, second = run_kv_storm(SMALL), run_kv_storm(SMALL)
        first.pop("elapsed_s"), second.pop("elapsed_s")
        assert first == second


class TestBankStorm:
    def test_quarantine_readmit_and_uniformity(self):
        result = run_bank_storm(SMALL, chaos_policy())
        assert result["ops"] == SMALL.bank_ops
        assert result["quarantines"] >= len(SMALL.storm_events(SMALL.bank_ops))
        assert result["all_readmitted"]
        assert result["leaf_uniform"]
        assert result["uniformity_windows"] > 0

    def test_bank_storm_deterministic(self):
        policy = chaos_policy()
        first = run_bank_storm(SMALL, policy)
        second = run_bank_storm(SMALL, policy)
        first.pop("elapsed_s", None), second.pop("elapsed_s", None)
        assert first == second


class TestParallelStorm:
    def test_composed_storm_passes_all_gates(self, tmp_path):
        report = run_chaos(SMALL, chaos_policy(), layers=("parallel",))
        parallel = report.parallel
        assert parallel["conserved"]
        assert parallel["ops"] == SMALL.parallel_ops
        assert parallel["hangs"] >= 1
        assert parallel["quarantines"] >= 3
        assert parallel["all_readmitted"]
        assert parallel["hangs_detected"]
        assert parallel["recovery_bounded"]
        assert report.ok


# ---------------------------------------------------------------- report
class TestChaosReport:
    def test_gates_default_pass_for_skipped_layers(self):
        report = ChaosReport(SMALL)
        assert report.zero_lost and report.all_readmitted
        assert report.leaf_uniform and report.hangs_detected
        assert report.ok

    def test_failed_gate_fails_verdict(self):
        report = ChaosReport(SMALL)
        report.kv = {"zero_lost": False}
        assert not report.zero_lost
        assert not report.ok

    def test_as_dict_round_trips_through_json(self):
        report = ChaosReport(SMALL)
        report.bank = {"leaf_uniform": True, "all_readmitted": True}
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["pass"] is True
        assert payload["gates"]["leaf_uniform"] is True
        assert payload["scenario"]["num_shards"] == 2

    def test_render_names_every_gate(self):
        report = run_chaos(SMALL, chaos_policy(), layers=("kv",))
        text = report.render()
        for token in ("zero_lost", "all_readmitted", "leaf_uniform",
                      "hang_detection", "verdict"):
            assert token in text
