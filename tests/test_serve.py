"""Tests for the deadline-aware request-serving front end."""

import dataclasses

import pytest

from repro.analysis.experiments import experiment_config
from repro.config import ServeConfig, SystemConfig
from repro.health import HealthPolicy
from repro.observability import collect_serve
from repro.parallel.merge import (
    replay_issued_schedule,
    requests_from_trace,
    run_serial_reference,
)
from repro.serve import (
    ClosedLoopSource,
    OpenLoopSource,
    Request,
    ServingFrontEnd,
    TenantQueues,
)
from repro.workloads.synthetic import locality_mix_trace


def make_source(entries, num_tenants=1, weights=None, deadline=30_000):
    """Hand-crafted arrival schedule: (cycle, tenant, addr, is_write)."""
    source = OpenLoopSource(num_tenants, weights)
    for cycle, tenant, addr, is_write in entries:
        source._schedule(cycle, tenant, addr, is_write, deadline)
    return source


def build_frontend(scheme="dyn", footprint=64, shards=1, serve_config=None,
                   static_sbsize=None, health_policy=None, workload="t"):
    return ServingFrontEnd.build(
        scheme,
        footprint,
        SystemConfig(),
        shards,
        serve_config=serve_config,
        static_sbsize=static_sbsize,
        health_policy=health_policy,
        workload=workload,
    )


class TestTenantQueues:
    def test_push_bounded(self):
        queues = TenantQueues([1], capacity=2)
        reqs = [Request(i, 0, 0, False, 0, 10) for i in range(3)]
        assert queues.push(reqs[0]) and queues.push(reqs[1])
        assert not queues.push(reqs[2])
        assert queues.depth(0) == 2
        assert queues.peak_depth[0] == 2

    def test_weighted_fair_share(self):
        queues = TenantQueues([3, 1], capacity=128)
        for i in range(40):
            queues.push(Request(2 * i, 0, 0, False, 0, 10))
            queues.push(Request(2 * i + 1, 1, 0, False, 0, 10))
        served = [0, 0]
        for _ in range(40):
            popped = queues.pop_where()
            served[popped.tenant] += 1
        assert served == [30, 10]

    def test_eligibility_skips_blocked_head(self):
        queues = TenantQueues([1, 1], capacity=8)
        queues.push(Request(0, 0, 7, False, 0, 10))
        queues.push(Request(1, 1, 8, False, 0, 10))
        popped = queues.pop_where(lambda r: r.addr != 7)
        assert popped.tenant == 1
        assert queues.pop_where(lambda r: r.addr != 7) is None
        assert queues.depth(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQueues([], capacity=4)
        with pytest.raises(ValueError):
            TenantQueues([0], capacity=4)
        with pytest.raises(ValueError):
            TenantQueues([1], capacity=0)


class TestLoadGenerators:
    def test_open_loop_deterministic(self):
        def schedule(seed):
            source = OpenLoopSource.synthetic(
                2, 50, footprint_per_tenant=128, seed=seed
            )
            return [
                (r.arrival_cycle, r.tenant, r.addr, r.is_write)
                for r in source.take_arrivals(10**9)
            ]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_open_loop_tenant_regions_disjoint(self):
        source = OpenLoopSource.synthetic(3, 40, footprint_per_tenant=100)
        for request in source.take_arrivals(10**9):
            region = request.addr // 100
            assert region == request.tenant

    def test_footprint_survives_draining(self):
        source = OpenLoopSource.synthetic(2, 20, footprint_per_tenant=64)
        before = source.footprint_blocks
        source.take_arrivals(10**9)
        assert source.footprint_blocks == before > 64

    def test_from_trace_matches_requests_from_trace(self):
        trace = locality_mix_trace(0.5, footprint_blocks=64, accesses=40)
        source = OpenLoopSource.from_trace(trace)
        got = [
            (r.addr, r.arrival_cycle, r.is_write)
            for r in source.take_arrivals(10**9)
        ]
        assert got == requests_from_trace(trace)

    def test_closed_loop_completion_feedback(self):
        source = ClosedLoopSource(
            1, 2, 3, footprint_per_tenant=32, think_mean=10.0, seed=1
        )
        first = source.take_arrivals(10**9)
        assert len(first) == 2  # one outstanding request per client
        assert not source.exhausted
        arrivals = len(first)
        pending = list(first)
        while pending:
            request = pending.pop(0)
            source.on_completion(request, request.arrival_cycle + 100)
            fresh = source.take_arrivals(10**12)
            arrivals += len(fresh)
            pending.extend(fresh)
        assert source.exhausted
        assert arrivals == 2 * 3

    def test_shed_feedback_advances_client(self):
        source = ClosedLoopSource(
            1, 1, 2, footprint_per_tenant=32, think_mean=10.0, seed=2
        )
        first = source.take_arrivals(10**9)[0]
        source.on_shed(first, 50)
        assert source.next_arrival_cycle() is not None
        assert not source.exhausted


class TestCoalescing:
    """1-shard 'stat' bank with static super-block pairs (2k, 2k+1)."""

    def run_entries(self, entries, **config_kwargs):
        serve_config = ServeConfig(**{"deadline_cycles": 50_000, **config_kwargs})
        frontend = build_frontend(
            scheme="stat", static_sbsize=2, serve_config=serve_config
        )
        report = frontend.run(make_source(entries, deadline=50_000))
        return frontend, report

    def test_concurrent_same_block_reads_dedupe(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (0, 0, 4, False)], batch_size=8
        )
        assert len(frontend.issued) == 1
        assert report.served == 2
        assert report.coalesced == 1

    def test_concurrent_super_block_mates_dedupe(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (0, 0, 5, False)], batch_size=8
        )
        assert len(frontend.issued) == 1
        assert report.served == 2
        assert report.coalesced == 1
        served = [r for r in frontend.all_requests]
        assert served[0].completion_cycle == served[1].completion_cycle

    def test_concurrent_read_write_coalesce_to_write_access(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (0, 0, 5, True)], batch_size=8
        )
        assert len(frontend.issued) == 1
        assert frontend.issued[0][2] is True  # write wins the merged access
        assert report.served == 2
        assert report.sim.demand_requests == 1  # one path access for both

    def test_read_after_completion_is_a_fresh_access(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (100_000, 0, 4, False)], batch_size=1
        )
        # the second read arrives long after the first access completed:
        # nothing is pending to ride, so it pays its own path access.
        assert len(frontend.issued) == 2
        assert report.coalesced == 0
        assert report.served == 2

    def test_write_never_latches_onto_inflight_access(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (1, 0, 4, True)], batch_size=1
        )
        assert len(frontend.issued) == 2
        assert report.coalesced == 0
        assert report.served == 2

    def test_no_coalesce_config(self):
        frontend, report = self.run_entries(
            [(0, 0, 4, False), (0, 0, 4, False)], batch_size=8, coalesce=False
        )
        assert len(frontend.issued) == 2
        assert report.coalesced == 0


class TestInflightRead:
    def test_read_rides_pending_access(self):
        # Distinct from TestCoalescing.test_read_latches...: assert the
        # exact single-access outcome with the second arrival strictly
        # inside the first access's flight window.
        serve_config = ServeConfig(batch_size=1, deadline_cycles=50_000)
        frontend = build_frontend(
            scheme="stat", static_sbsize=2, serve_config=serve_config
        )
        report = frontend.run(
            make_source(
                [(0, 0, 4, False), (10, 0, 4, False)], deadline=50_000
            )
        )
        assert len(frontend.issued) == 1
        assert report.coalesced == 1
        assert report.served == 2


class TestDeterminism:
    def test_open_loop_bit_identical(self):
        def run():
            source = OpenLoopSource.synthetic(
                3, 60, footprint_per_tenant=128, gap_mean=400.0,
                weights=[3, 2, 1], seed=9,
            )
            frontend = build_frontend(
                footprint=source.footprint_blocks, shards=4
            )
            return frontend.run(source).as_dict()

        assert run() == run()

    def test_closed_loop_bit_identical(self):
        def run():
            source = ClosedLoopSource(
                2, 3, 6, footprint_per_tenant=64, think_mean=2_000.0, seed=4
            )
            frontend = build_frontend(
                footprint=source.footprint_blocks, shards=2
            )
            return frontend.run(source).as_dict()

        assert run() == run()


class TestBypassIdentity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_bypass_matches_serial_reference(self, shards):
        config = experiment_config()
        trace = locality_mix_trace(0.8, footprint_blocks=1024, accesses=500)
        reference = run_serial_reference(
            "dyn", trace.footprint_blocks, requests_from_trace(trace),
            config, shards, workload="par",
        )
        frontend = ServingFrontEnd.build(
            "dyn", trace.footprint_blocks, config, shards,
            serve_config=ServeConfig(enabled=False), workload="par",
        )
        report = frontend.run(OpenLoopSource.from_trace(trace))
        assert report.sim == reference
        assert report.served == len(trace)
        assert report.shed == 0 and report.batches == 0

    def test_enabled_schedule_replays_bit_identically(self):
        config = experiment_config()
        trace = locality_mix_trace(0.6, footprint_blocks=512, accesses=300)
        frontend = ServingFrontEnd.build(
            "dyn", trace.footprint_blocks, config, 2, workload="par"
        )
        report = frontend.run(OpenLoopSource.from_trace(trace, num_tenants=2))
        replayed = replay_issued_schedule(
            "dyn", trace.footprint_blocks, frontend.issued, config, 2,
            workload="par",
        )
        assert report.sim == replayed


class TestBackpressure:
    def overload_run(self, weights=None):
        source = OpenLoopSource.synthetic(
            2, 150, footprint_per_tenant=256, gap_mean=100.0,
            weights=weights, seed=21,
        )
        serve_config = ServeConfig(queue_capacity=16, max_backlog=48)
        frontend = build_frontend(
            footprint=source.footprint_blocks, shards=1,
            serve_config=serve_config,
        )
        return frontend, frontend.run(source)

    def test_overload_sheds_and_conserves_requests(self):
        frontend, report = self.overload_run()
        assert report.shed > 0
        assert report.served + report.shed == report.offered == 300
        assert all(
            peak <= 16 for peak in frontend.queues.peak_depth
        )

    def test_weighted_fairness_under_overload(self):
        _, report = self.overload_run(weights=[3, 1])
        heavy, light = report.tenants
        assert heavy.served > light.served

    def test_deadline_close_bounds_batch_wait(self):
        # Light load, huge quota: batches can only ever close by deadline
        # (or final drain), never by filling.
        source = OpenLoopSource.synthetic(
            1, 30, footprint_per_tenant=128, gap_mean=3_000.0, seed=3
        )
        serve_config = ServeConfig(batch_size=64, deadline_cycles=8_000)
        frontend = build_frontend(
            footprint=source.footprint_blocks, serve_config=serve_config
        )
        report = frontend.run(source)
        assert report.full_closes == 0
        assert report.deadline_closes > 0
        assert report.served == 30

    def test_drain_close_flushes_trailing_partial_batch(self):
        entries = [(0, 0, addr, False) for addr in range(3)]
        serve_config = ServeConfig(batch_size=64, deadline_cycles=10**6)
        frontend = build_frontend(serve_config=serve_config)
        report = frontend.run(make_source(entries, deadline=10**6))
        assert report.drain_closes == 1
        assert report.served == 3
        # flushed immediately: nobody waited for the distant deadline close
        assert report.makespan_cycles < 10**5


class TestHealthIntegration:
    def test_quarantined_shard_reroutes_at_admission(self):
        source = OpenLoopSource.synthetic(
            2, 60, footprint_per_tenant=64, gap_mean=2_000.0, seed=6
        )
        frontend = build_frontend(
            footprint=source.footprint_blocks, shards=2,
            health_policy=HealthPolicy(),
        )
        frontend.bank.quarantine_shard(0)
        report = frontend.run(source)
        assert report.rerouted > 0
        assert report.served + report.shed == report.offered
        registry = collect_serve(frontend)
        assert registry.value("serve.fallback_issues") > 0

    def test_degraded_shard_gets_smaller_quota(self):
        frontend = build_frontend(shards=2, health_policy=HealthPolicy())
        assert frontend._quota(0) == ServeConfig().batch_size
        frontend.bank.health.record_pressure(0)
        assert frontend._quota(0) == ServeConfig().quota_for(True)
        assert frontend._quota(1) == ServeConfig().batch_size

    def test_quota_for(self):
        config = ServeConfig(batch_size=8, degraded_quota_fraction=0.5)
        assert config.quota_for(False) == 8
        assert config.quota_for(True) == 4
        tiny = ServeConfig(batch_size=2, degraded_quota_fraction=0.1)
        assert tiny.quota_for(True) == 1  # never starves a shard entirely


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(deadline_close_fraction=0.0)
        with pytest.raises(ValueError):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServeConfig(stash_shed_fraction=1.5)


class TestObservability:
    def test_collect_serve_forces_counter_set(self):
        source = OpenLoopSource.synthetic(1, 10, footprint_per_tenant=32)
        frontend = build_frontend(footprint=source.footprint_blocks)
        frontend.run(source)
        registry = collect_serve(frontend)
        for name in (
            "serve.offered", "serve.shed", "serve.shed_pressure",
            "serve.coalesced", "serve.rerouted", "serve.batches",
        ):
            assert registry.value(name) >= 0
        assert registry.value("serve.offered") == 10
        assert registry.value("bank.num_shards") == 1
        hist = registry.histogram("serve.latency_cycles")
        assert hist.total == 10

    def test_frontend_runs_once(self):
        source = OpenLoopSource.synthetic(1, 5, footprint_per_tenant=32)
        frontend = build_frontend(footprint=source.footprint_blocks)
        frontend.run(source)
        with pytest.raises(RuntimeError):
            frontend.run(source)
