"""Unit tests for the Path ORAM binary tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oram.block import Block
from repro.oram.tree import BinaryTree


class TestGeometry:
    def test_counts(self):
        tree = BinaryTree(levels=3, bucket_size=4)
        assert tree.num_leaves == 8
        assert tree.num_buckets == 15

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BinaryTree(levels=0, bucket_size=4)
        with pytest.raises(ValueError):
            BinaryTree(levels=3, bucket_size=0)

    def test_root_index(self):
        tree = BinaryTree(levels=3, bucket_size=4)
        for leaf in range(8):
            assert tree.bucket_index(0, leaf) == 0

    def test_leaf_indices_distinct(self):
        tree = BinaryTree(levels=3, bucket_size=4)
        leaf_indices = {tree.bucket_index(3, leaf) for leaf in range(8)}
        assert leaf_indices == set(range(7, 15))

    def test_path_indices_figure1(self):
        # Figure 1: an L=3 tree; path 5 = root, then internal nodes, leaf 5.
        tree = BinaryTree(levels=3, bucket_size=4)
        path = tree.path_indices(5)
        assert len(path) == 4
        assert path[0] == 0
        assert path[-1] == 7 + 5
        # Each node is a child of the previous one.
        for parent, child in zip(path, path[1:]):
            assert (child - 1) // 2 == parent

    def test_path_indices_out_of_range(self):
        tree = BinaryTree(levels=3, bucket_size=4)
        with pytest.raises(ValueError):
            tree.path_indices(8)
        with pytest.raises(ValueError):
            tree.path_indices(-1)

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_two_paths_share_exactly_prefix(self, levels, data):
        tree = BinaryTree(levels=levels, bucket_size=1)
        a = data.draw(st.integers(min_value=0, max_value=tree.num_leaves - 1))
        b = data.draw(st.integers(min_value=0, max_value=tree.num_leaves - 1))
        shared = set(tree.path_indices(a)) & set(tree.path_indices(b))
        from repro.utils.bitops import common_prefix_length

        assert len(shared) == common_prefix_length(a, b, levels) + 1


class TestStorage:
    def test_read_path_empties_buckets(self):
        tree = BinaryTree(levels=3, bucket_size=2)
        tree.write_bucket(0, 0, [Block(1, 0)])
        tree.write_bucket(3, 5, [Block(2, 5), Block(3, 5)])
        blocks = tree.read_path(5)
        assert {b.addr for b in blocks} == {1, 2, 3}
        assert tree.occupancy() == 0

    def test_read_path_leaves_other_paths(self):
        tree = BinaryTree(levels=3, bucket_size=2)
        tree.write_bucket(3, 0, [Block(9, 0)])
        blocks = tree.read_path(7)
        assert blocks == []
        assert tree.occupancy() == 1

    def test_write_bucket_overflow(self):
        tree = BinaryTree(levels=2, bucket_size=2)
        with pytest.raises(ValueError):
            tree.write_bucket(0, 0, [Block(i, 0) for i in range(3)])

    def test_find(self):
        tree = BinaryTree(levels=2, bucket_size=2)
        tree.write_bucket(1, 2, [Block(42, 2)])
        assert tree.find(42)
        assert not tree.find(43)

    def test_iter_blocks(self):
        tree = BinaryTree(levels=2, bucket_size=2)
        tree.write_bucket(0, 0, [Block(1, 0)])
        tree.write_bucket(2, 3, [Block(2, 3)])
        assert {b.addr for b in tree.iter_blocks()} == {1, 2}
