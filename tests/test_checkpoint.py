"""Unit tests for ORAM checkpoint / restore."""

import pytest

from repro.config import ORAMConfig
from repro.oram.checkpoint import dump_oram, load_oram, restore_oram, save_oram
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng


def make_oram(levels=5, seed=3):
    config = ORAMConfig(levels=levels, bucket_size=3, stash_blocks=40, utilization=0.5)
    return PathORAM(config, DeterministicRng(seed))


class TestRoundtrip:
    def test_fresh_oram_roundtrips(self):
        oram = make_oram()
        restored = load_oram(dump_oram(oram))
        restored.check_invariants()
        n = oram.position_map.num_blocks
        assert restored.position_map.num_blocks == n
        for addr in range(n):
            assert restored.position_map.leaf(addr) == oram.position_map.leaf(addr)

    def test_used_oram_roundtrips(self):
        oram = make_oram()
        for addr in range(30):
            block = oram.access([addr])[addr]
            block.data = bytes([addr]) * 4
        oram.position_map.set_merge_bit(5, 1)
        oram.position_map.set_break_bit(6, 1)
        oram.position_map.set_prefetch_bit(7, 1)
        restored = load_oram(dump_oram(oram))
        restored.check_invariants()
        assert restored.position_map.merge_bit(5) == 1
        assert restored.position_map.break_bit(6) == 1
        assert restored.position_map.prefetch_bit(7) == 1
        assert restored.real_accesses == oram.real_accesses
        # Payloads survive.
        for addr in range(30):
            assert restored.access([addr])[addr].data == bytes([addr]) * 4

    def test_restored_oram_keeps_working(self):
        oram = make_oram()
        for addr in range(20):
            oram.access([addr])
        restored = load_oram(dump_oram(oram))
        for addr in range(40):
            restored.access([addr % restored.position_map.num_blocks])
        restored.drain_stash()
        restored.check_invariants()

    def test_file_roundtrip(self, tmp_path):
        oram = make_oram()
        oram.access([3])
        path = str(tmp_path / "oram.ckpt")
        save_oram(oram, path)
        restored = restore_oram(path)
        restored.check_invariants()

    def test_super_block_state_survives(self):
        oram = make_oram()
        # Merge a pair (shared leaf), then checkpoint.
        leaf = oram.position_map.leaf(8)
        oram.access([9], new_leaf=leaf)
        restored = load_oram(dump_oram(oram))
        assert restored.position_map.group_is_super_block(8, 2)
        # Accessing the restored super block fetches both members.
        blocks = restored.access([8, 9])
        assert set(blocks) == {8, 9}


class TestValidation:
    def test_mid_access_checkpoint_rejected(self):
        oram = make_oram()
        oram.begin_access([1])
        with pytest.raises(RuntimeError):
            dump_oram(oram)
        oram.finish_access()

    def test_version_check(self):
        import json

        state = json.loads(dump_oram(make_oram()))
        state["version"] = 999
        with pytest.raises(ValueError):
            load_oram(json.dumps(state))

    def test_truncated_state_rejected(self):
        import json

        state = json.loads(dump_oram(make_oram()))
        state["leaves"] = state["leaves"][:-1]
        with pytest.raises(ValueError):
            load_oram(json.dumps(state))

    def test_corrupted_bucket_caught_by_invariants(self):
        import json

        state = json.loads(dump_oram(make_oram()))
        # Move a block to a bucket off its path: restore must refuse.
        for index, bucket in enumerate(state["buckets"]):
            if bucket:
                block = bucket.pop()
                target = (index + 1) % len(state["buckets"])
                block["l"] = (block["l"] + 7) % 32
                state["buckets"][target].append(block)
                break
        with pytest.raises(AssertionError):
            load_oram(json.dumps(state))
