"""Unit tests for ORAM checkpoint / restore."""

import json
import os

import pytest

from repro.config import ORAMConfig
from repro.oram.checkpoint import (
    CheckpointError,
    dump_oram,
    load_oram,
    restore_oram,
    save_oram,
)
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng


def make_oram(levels=5, seed=3):
    config = ORAMConfig(levels=levels, bucket_size=3, stash_blocks=40, utilization=0.5)
    return PathORAM(config, DeterministicRng(seed))


class TestRoundtrip:
    def test_fresh_oram_roundtrips(self):
        oram = make_oram()
        restored = load_oram(dump_oram(oram))
        restored.check_invariants()
        n = oram.position_map.num_blocks
        assert restored.position_map.num_blocks == n
        for addr in range(n):
            assert restored.position_map.leaf(addr) == oram.position_map.leaf(addr)

    def test_used_oram_roundtrips(self):
        oram = make_oram()
        for addr in range(30):
            block = oram.access([addr])[addr]
            block.data = bytes([addr]) * 4
        oram.position_map.set_merge_bit(5, 1)
        oram.position_map.set_break_bit(6, 1)
        oram.position_map.set_prefetch_bit(7, 1)
        restored = load_oram(dump_oram(oram))
        restored.check_invariants()
        assert restored.position_map.merge_bit(5) == 1
        assert restored.position_map.break_bit(6) == 1
        assert restored.position_map.prefetch_bit(7) == 1
        assert restored.real_accesses == oram.real_accesses
        # Payloads survive.
        for addr in range(30):
            assert restored.access([addr])[addr].data == bytes([addr]) * 4

    def test_restored_oram_keeps_working(self):
        oram = make_oram()
        for addr in range(20):
            oram.access([addr])
        restored = load_oram(dump_oram(oram))
        for addr in range(40):
            restored.access([addr % restored.position_map.num_blocks])
        restored.drain_stash()
        restored.check_invariants()

    def test_file_roundtrip(self, tmp_path):
        oram = make_oram()
        oram.access([3])
        path = str(tmp_path / "oram.ckpt")
        save_oram(oram, path)
        restored = restore_oram(path)
        restored.check_invariants()

    def test_super_block_state_survives(self):
        oram = make_oram()
        # Merge a pair (shared leaf), then checkpoint.
        leaf = oram.position_map.leaf(8)
        oram.access([9], new_leaf=leaf)
        restored = load_oram(dump_oram(oram))
        assert restored.position_map.group_is_super_block(8, 2)
        # Accessing the restored super block fetches both members.
        blocks = restored.access([8, 9])
        assert set(blocks) == {8, 9}


class TestValidation:
    def test_mid_access_checkpoint_rejected(self):
        oram = make_oram()
        oram.begin_access([1])
        with pytest.raises(RuntimeError):
            dump_oram(oram)
        oram.finish_access()

    def test_version_check(self):
        state = json.loads(dump_oram(make_oram()))
        state["version"] = 999
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            load_oram(json.dumps(state))

    def test_truncated_state_rejected(self):
        state = json.loads(dump_oram(make_oram()))
        state["leaves"] = state["leaves"][:-1]
        with pytest.raises(CheckpointError, match="leaves"):
            load_oram(json.dumps(state))

    def test_corrupted_bucket_caught_by_invariants(self):
        state = json.loads(dump_oram(make_oram()))
        # Move a block to a bucket off its path: restore must refuse.
        for index, bucket in enumerate(state["buckets"]):
            if bucket:
                block = bucket.pop()
                target = (index + 1) % len(state["buckets"])
                block["l"] = (block["l"] + 7) % 32
                state["buckets"][target].append(block)
                break
        with pytest.raises(CheckpointError, match="invariants"):
            load_oram(json.dumps(state))

    def test_checkpoint_error_is_value_error(self):
        # Callers that guarded restore with `except ValueError` keep working.
        assert issubclass(CheckpointError, ValueError)

    def test_garbage_document(self):
        with pytest.raises(CheckpointError, match="malformed checkpoint document"):
            load_oram("{not json")

    def test_non_object_document(self):
        with pytest.raises(CheckpointError, match="expected an object"):
            load_oram("[1, 2, 3]")

    def test_missing_keys_named(self):
        state = json.loads(dump_oram(make_oram()))
        del state["stash"]
        del state["counters"]
        with pytest.raises(CheckpointError, match="missing keys.*stash"):
            load_oram(json.dumps(state))

    def test_bad_geometry_reported(self):
        state = json.loads(dump_oram(make_oram()))
        state["config"]["levels"] = -3
        with pytest.raises(CheckpointError, match="invalid checkpoint geometry"):
            load_oram(json.dumps(state))

    def test_unknown_config_field_reported(self):
        state = json.loads(dump_oram(make_oram()))
        state["config"]["warp_factor"] = 9
        with pytest.raises(CheckpointError, match="invalid checkpoint geometry"):
            load_oram(json.dumps(state))

    def test_malformed_block_record_locates_bucket(self):
        state = json.loads(dump_oram(make_oram()))
        for index, bucket in enumerate(state["buckets"]):
            if bucket:
                del bucket[0]["a"]
                break
        with pytest.raises(CheckpointError, match=f"bucket {index}"):
            load_oram(json.dumps(state))

    def test_bad_base64_payload_reported(self):
        state = json.loads(dump_oram(make_oram()))
        for bucket in state["buckets"]:
            if bucket:
                bucket[0]["d"] = "!!!not-base64!!!"
                break
        with pytest.raises(CheckpointError, match="malformed block record"):
            load_oram(json.dumps(state))

    def test_oversized_stash_rejected(self):
        oram = make_oram()
        state = json.loads(dump_oram(oram))
        donor = next(b[0] for b in state["buckets"] if b)
        state["stash"] = [dict(donor) for _ in range(oram.config.stash_blocks + 1)]
        with pytest.raises(CheckpointError, match="stash"):
            load_oram(json.dumps(state))

    def test_malformed_counters_reported(self):
        state = json.loads(dump_oram(make_oram()))
        del state["counters"]["real_accesses"]
        with pytest.raises(CheckpointError, match="counters"):
            load_oram(json.dumps(state))


class TestCrashSafety:
    """``save_oram`` must never tear or clobber the previous checkpoint."""

    def test_failed_save_preserves_old_checkpoint(self, tmp_path, monkeypatch):
        path = str(tmp_path / "oram.ckpt")
        oram = make_oram()
        save_oram(oram, path)
        good = open(path).read()

        # Simulate the process dying mid-write: fsync explodes after the
        # payload has been (partially) written to the temp file.
        def boom(fd):
            raise OSError("simulated crash mid-save")

        oram.access([1])
        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError, match="simulated crash"):
            save_oram(oram, path)
        monkeypatch.undo()

        # Old checkpoint intact, no temp-file litter.
        assert open(path).read() == good
        assert os.listdir(tmp_path) == ["oram.ckpt"]
        restore_oram(path).check_invariants()

    def test_save_goes_through_rename(self, tmp_path, monkeypatch):
        # The destination must never be opened for writing directly.
        path = str(tmp_path / "oram.ckpt")
        replaced = {}
        real_replace = os.replace

        def spy(src, dst):
            replaced["src"] = src
            replaced["dst"] = dst
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        save_oram(make_oram(), path)
        assert replaced["dst"] == path
        assert replaced["src"] != path
        assert os.path.dirname(replaced["src"]) == os.path.dirname(path)

    def test_save_overwrites_previous(self, tmp_path):
        path = str(tmp_path / "oram.ckpt")
        oram = make_oram()
        save_oram(oram, path)
        oram.access([2])
        save_oram(oram, path)
        restored = restore_oram(path)
        assert restored.real_accesses == oram.real_accesses
