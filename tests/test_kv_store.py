"""Integration tests for the functional oblivious key-value store."""

import pytest

from repro.config import ORAMConfig
from repro.oram.kv_store import ObliviousKVStore
from repro.security.observer import AccessObserver
from repro.security.statistics import chi_square_uniformity
from repro.utils.rng import DeterministicRng


def make_store(levels=6, observer=None):
    return ObliviousKVStore(
        config=ORAMConfig(levels=levels, bucket_size=4, stash_blocks=40, utilization=0.5),
        observer=observer,
    )


class TestFunctionality:
    def test_get_unwritten_returns_none(self):
        store = make_store()
        assert store.get(3) is None

    def test_put_get_roundtrip(self):
        store = make_store()
        store.put(5, b"hello")
        assert store.get(5) == b"hello"

    def test_overwrite(self):
        store = make_store()
        store.put(5, b"old")
        store.put(5, b"new value")
        assert store.get(5) == b"new value"

    def test_delete(self):
        store = make_store()
        store.put(5, b"data")
        store.delete(5)
        assert store.get(5) is None

    def test_many_keys_survive_churn(self):
        store = make_store()
        rng = DeterministicRng(10)
        expected = {}
        for i in range(300):
            key = rng.randint(0, store.capacity - 1)
            value = bytes(f"value-{i}", "ascii")
            store.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert store.get(key) == value
        store.oram.check_invariants()

    def test_key_bounds(self):
        store = make_store()
        with pytest.raises(KeyError):
            store.get(-1)
        with pytest.raises(KeyError):
            store.put(store.capacity, b"x")

    def test_value_size_bound(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.put(0, b"x" * (store.payload_bytes + 1))

    def test_access_count_tracks_operations(self):
        store = make_store()
        before = store.access_count()
        store.put(1, b"a")
        store.get(1)
        assert store.access_count() >= before + 2


class TestPersistence:
    def test_save_open_roundtrip(self, tmp_path):
        store = make_store()
        store.put(3, b"persisted")
        store.put(9, b"also here")
        path = str(tmp_path / "store.ckpt")
        store.save(path)
        reopened = ObliviousKVStore.open(path)
        assert reopened.get(3) == b"persisted"
        assert reopened.get(9) == b"also here"
        reopened.oram.check_invariants()

    def test_wrong_key_cannot_read(self, tmp_path):
        store = make_store()
        store.put(3, b"secret")
        path = str(tmp_path / "store.ckpt")
        store.save(path)
        wrong = ObliviousKVStore.open(path, key=b"\x99" * 16)
        assert wrong.get(3) != b"secret"

    def test_reopened_store_keeps_working(self, tmp_path):
        store = make_store()
        store.put(1, b"one")
        path = str(tmp_path / "store.ckpt")
        store.save(path)
        reopened = ObliviousKVStore.open(path)
        reopened.put(2, b"two")
        assert reopened.get(1) == b"one"
        assert reopened.get(2) == b"two"


class TestObliviousness:
    def test_reads_and_writes_look_identical(self):
        # One path access per operation regardless of read/write/size.
        observer = AccessObserver()
        store = make_store(observer=observer)
        store.put(1, b"x")
        reads_start = len(observer)
        store.get(1)
        read_cost = len(observer) - reads_start
        writes_start = len(observer)
        store.put(2, b"y" * 64)
        write_cost = len(observer) - writes_start
        # Identical modulo background evictions (rare at this scale).
        assert abs(read_cost - write_cost) <= 1

    def test_repeated_key_uniform_paths(self):
        observer = AccessObserver()
        store = make_store(observer=observer)
        for _ in range(1500):
            store.get(7)
        _, p = chi_square_uniformity(observer.leaves(), 64)
        assert p > 1e-4

    def test_ciphertexts_never_repeat(self):
        # Probabilistic encryption: same value stored twice yields
        # different block payloads in the tree.
        store = make_store()
        store.put(1, b"same")
        first = store.oram.access([1])[1].data
        store.oram.drain_stash()
        store.put(1, b"same")
        second = store.oram.access([1])[1].data
        assert first != second
