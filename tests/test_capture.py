"""Unit tests for the program-trace capture substrate."""

import pytest

from repro.workloads.capture import (
    TraceRecorder,
    record_bfs,
    record_binary_search,
    record_matmul,
    record_pointer_chase,
)


class TestRecorder:
    def test_array_allocation_is_block_aligned_and_disjoint(self):
        rec = TraceRecorder("t")
        a = rec.array(32, element_bytes=8)   # 2 blocks
        b = rec.array(16, element_bytes=128)  # 16 blocks
        assert a._base_block == 0
        assert b._base_block == a.blocks
        assert rec.footprint_blocks == a.blocks + b.blocks

    def test_reads_and_writes_recorded_with_block_addresses(self):
        rec = TraceRecorder("t", gap_cycles=5)
        a = rec.array(32, element_bytes=8)  # 16 elements per block
        a[0] = 42
        _ = a[17]
        trace = rec.trace()
        assert trace.entries[0] == (5, 0, 1)   # write to block 0
        assert trace.entries[1] == (5, 1, 0)   # read from block 1

    def test_values_roundtrip(self):
        rec = TraceRecorder("t")
        a = rec.array(10)
        a[3] = "hello"
        assert a[3] == "hello"
        assert len(a) == 10

    def test_out_of_range(self):
        rec = TraceRecorder("t")
        a = rec.array(4)
        with pytest.raises(IndexError):
            _ = a[4]
        with pytest.raises(IndexError):
            a[-1] = 0

    def test_compute_charges_next_touch(self):
        rec = TraceRecorder("t", gap_cycles=2)
        a = rec.array(4)
        rec.compute(100)
        a[0] = 1
        a[1] = 2
        trace = rec.trace()
        assert trace.entries[0][0] == 102
        assert trace.entries[1][0] == 2

    def test_validation(self):
        rec = TraceRecorder("t")
        with pytest.raises(ValueError):
            rec.array(0)
        with pytest.raises(ValueError):
            rec.array(4, element_bytes=4096)
        with pytest.raises(ValueError):
            rec.compute(-1)

    def test_trace_is_snapshot(self):
        rec = TraceRecorder("t")
        a = rec.array(4)
        a[0] = 1
        first = rec.trace()
        a[1] = 2
        assert len(first) == 1
        assert len(rec.trace()) == 2


class TestCapturedPrograms:
    def test_matmul_is_correct_and_streamy(self):
        trace = record_matmul(n=8)
        assert len(trace) > 8 * 8 * 8  # at least the inner-product touches
        # Row-major A accesses produce ascending runs.
        ascending = sum(
            1 for p, c in zip(trace.entries, trace.entries[1:]) if c[1] == p[1] + 1
        )
        assert ascending > 0

    def test_pointer_chase_has_no_locality(self):
        trace = record_pointer_chase(nodes=256, hops=2000)
        ascending = sum(
            1 for p, c in zip(trace.entries, trace.entries[1:]) if c[1] == p[1] + 1
        )
        assert ascending < len(trace) * 0.02

    def test_bfs_visits_and_mixes_localities(self):
        trace = record_bfs(nodes=256, avg_degree=3)
        assert len(trace) > 256  # at least one touch per reached node
        assert all(0 <= e[1] < trace.footprint_blocks for e in trace.entries)
        # Mixed locality: some ascending runs (queue/edges), some jumps.
        ascending = sum(
            1 for p, c in zip(trace.entries, trace.entries[1:]) if c[1] == p[1] + 1
        )
        assert 0 < ascending < len(trace) - 1

    def test_binary_search_touches_log_elements(self):
        trace = record_binary_search(elements=1 << 10, lookups=100)
        # ~log2(1024) = 10 probes per lookup, plus nothing else recorded.
        assert 100 * 5 < len(trace) < 100 * 14

    def test_captured_trace_runs_through_the_simulator(self):
        from repro.analysis.experiments import run_schemes
        from repro.config import CacheConfig, ORAMConfig, SystemConfig

        trace = record_matmul(n=12)
        config = SystemConfig(
            oram=ORAMConfig(levels=7, bucket_size=4, stash_blocks=40),
            l1=CacheConfig(capacity_bytes=2 * 1024, associativity=2),
            llc=CacheConfig(capacity_bytes=4 * 1024, associativity=4, hit_latency=8),
        )
        res = run_schemes(trace, ["oram", "dyn"], config=config, warmup_fraction=0.2)
        assert res["oram"].cycles > 0
        assert res["dyn"].trace_entries == res["oram"].trace_entries
