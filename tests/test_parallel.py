"""Tests for the process-parallel shard execution runtime.

The two contracts under test (DESIGN.md section 9):

* **Determinism** -- running a request stream through ``N`` worker
  processes and merging produces a :class:`SimResult` bit-identical to
  replaying the same stream through the in-process serial
  :class:`~repro.controller.sharded.ShardedORAMBank`.
* **Durability** -- a worker killed mid-run is respawned from its last
  checkpoint, the in-flight batches are replayed, and the merged
  accounting conserves every demand access and write exactly once.
"""

import dataclasses
import threading
import time

import pytest

from repro.config import SystemConfig
from repro.oram.checkpoint import dump_backend_state, restore_backend_state
from repro.parallel import (
    ParallelShardRuntime,
    WorkerFailure,
    merge_shard_snapshots,
    run_serial_reference,
)
from repro.parallel.merge import requests_from_trace
from repro.sim.system import build_shard_backend
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace

FOOTPRINT = 128


def small_stream(accesses=400, footprint=FOOTPRINT, seed=9):
    """A deterministic mixed-locality request stream."""
    rng = DeterministicRng(seed)
    requests = []
    now = 0
    for index in range(accesses):
        now += rng.randint(1, 40)
        if rng.randint(0, 9) < 7:  # mostly sequential, some jumps
            addr = (index * 2 + rng.randint(0, 3)) % footprint
        else:
            addr = rng.randint(0, footprint - 1)
        requests.append((addr, now, index % 5 == 0))
    return requests


# ------------------------------------------------------------- determinism
class TestParallelDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_merged_result_bit_identical_to_serial(self, workers):
        requests = small_stream()
        config = SystemConfig()
        serial = run_serial_reference(
            "dyn", FOOTPRINT, requests, config, num_shards=workers
        )
        with ParallelShardRuntime(
            "dyn", FOOTPRINT, config, workers, batch_size=23
        ) as runtime:
            parallel = runtime.run(requests)
        assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)

    def test_identical_across_schemes(self):
        requests = small_stream(accesses=200)
        config = SystemConfig()
        for scheme in ("oram", "stat"):
            serial = run_serial_reference(
                scheme, FOOTPRINT, requests, config, num_shards=2
            )
            with ParallelShardRuntime(
                scheme, FOOTPRINT, config, 2, batch_size=16
            ) as runtime:
                parallel = runtime.run(requests)
            assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)

    def test_repeat_runs_are_reproducible(self):
        requests = small_stream(accesses=150)
        config = SystemConfig()

        def once():
            with ParallelShardRuntime(
                "dyn", FOOTPRINT, config, 2, batch_size=11
            ) as runtime:
                return runtime.run(requests)

        assert dataclasses.asdict(once()) == dataclasses.asdict(once())

    def test_serial_reference_matches_trace_derived_stream(self):
        trace = locality_mix_trace(0.8, accesses=300)
        requests = requests_from_trace(trace)
        assert len(requests) == 300
        nows = [now for _addr, now, _w in requests]
        assert nows == sorted(nows)
        result = run_serial_reference(
            "dyn", trace.footprint_blocks, requests, SystemConfig(), num_shards=2
        )
        assert result.demand_requests == 300
        assert result.extra["num_shards"] == 2


# -------------------------------------------------------------- durability
class TestParallelRecovery:
    def test_kill_before_run_respawns_and_replays(self, tmp_path):
        """A worker dead before its first batch replays from the genesis
        checkpoint without losing a single access."""
        requests = small_stream(accesses=300)
        config = SystemConfig()
        serial = run_serial_reference(
            "dyn", FOOTPRINT, requests, config, num_shards=2
        )
        with ParallelShardRuntime(
            "dyn",
            FOOTPRINT,
            config,
            2,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            batch_size=16,
        ) as runtime:
            runtime.kill_worker(0)
            parallel = runtime.run(requests, fsck=True)
            assert runtime.total_restarts() >= 1
        for field in (
            "trace_entries",
            "llc_misses",
            "demand_requests",
            "write_accesses",
        ):
            assert getattr(parallel, field) == getattr(serial, field)

    def test_kill_mid_run_conserves_accounting(self, tmp_path):
        requests = small_stream(accesses=1200, footprint=256)
        config = SystemConfig()
        serial = run_serial_reference(
            "dyn", 256, requests, config, num_shards=2
        )
        with ParallelShardRuntime(
            "dyn",
            256,
            config,
            2,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            batch_size=8,
            max_restarts=4,
        ) as runtime:
            killer = threading.Thread(
                target=lambda: (time.sleep(0.2), runtime.kill_worker(0))
            )
            killer.start()
            parallel = runtime.run(requests, fsck=True)
            killer.join()
        # Whether or not the kill landed mid-run (it may race completion),
        # the merged accounting must conserve every access exactly once.
        for field in (
            "trace_entries",
            "llc_misses",
            "demand_requests",
            "write_accesses",
        ):
            assert getattr(parallel, field) == getattr(serial, field)

    def test_death_without_checkpointing_is_fatal(self):
        requests = small_stream(accesses=600)
        with ParallelShardRuntime(
            "dyn", FOOTPRINT, SystemConfig(), 2, batch_size=8
        ) as runtime:
            runtime.kill_worker(1)
            with pytest.raises(WorkerFailure):
                runtime.run(requests)

    def test_restart_budget_enforced(self, tmp_path):
        requests = small_stream(accesses=600)
        with ParallelShardRuntime(
            "dyn",
            FOOTPRINT,
            SystemConfig(),
            2,
            checkpoint_dir=str(tmp_path),
            max_restarts=0,
            batch_size=8,
        ) as runtime:
            runtime.kill_worker(0)
            with pytest.raises(WorkerFailure, match="restart budget"):
                runtime.run(requests)


# ----------------------------------------------------------- observability
class TestParallelMetrics:
    def test_worker_gauges_populated(self):
        requests = small_stream(accesses=200)
        with ParallelShardRuntime(
            "dyn", FOOTPRINT, SystemConfig(), 2, batch_size=16
        ) as runtime:
            runtime.run(requests)
            registry = runtime.metrics()
            names = {instrument.name for instrument in registry}
            for index in range(2):
                assert f"parallel.worker{index}.queue_depth" in names
                assert f"parallel.worker{index}.batches" in names
                assert f"parallel.worker{index}.batch_roundtrip_us" in names
                assert registry.counter(f"parallel.worker{index}.batches").value > 0
                assert (
                    registry.histogram(
                        f"parallel.worker{index}.batch_roundtrip_us"
                    ).total
                    > 0
                )
            # Queue depth gauge reads zero once everything is acknowledged.
            assert registry.gauge("parallel.worker0.queue_depth").value == 0

    def test_collect_parallel_merges_into_registry(self):
        from repro.observability import MetricsRegistry, collect_parallel

        requests = small_stream(accesses=120)
        with ParallelShardRuntime(
            "dyn", FOOTPRINT, SystemConfig(), 2, batch_size=16
        ) as runtime:
            runtime.run(requests)
            shared = MetricsRegistry()
            shared.counter("unrelated.metric").set(7)
            merged = collect_parallel(runtime, shared)
        assert merged is shared
        assert merged.gauge("parallel.num_workers").value == 2
        assert merged.counter("parallel.worker1.batches").value > 0
        assert merged.counter("unrelated.metric").value == 7


# ------------------------------------------------------- merge & checkpoint
class TestMergeAndCheckpoint:
    def test_merge_empty_snapshots(self):
        merged = merge_shard_snapshots(
            [
                {
                    "stats": {
                        name: 0
                        for name in (
                            "demand_requests",
                            "prefetch_requests",
                            "write_accesses",
                            "memory_accesses",
                            "dummy_accesses",
                            "posmap_accesses",
                            "busy_cycles",
                        )
                    },
                    "scheme_stats": {
                        "merges": 0,
                        "breaks": 0,
                        "prefetched_blocks": 0,
                        "prefetch_hits": 0,
                        "prefetch_misses": 0,
                    },
                    "stash_max_occupancy": 0,
                    "stash_soft_overflows": 0,
                    "posmap_lookups": 0,
                    "posmap_cache_hits": 0,
                    "phase_cycles": {},
                    "busy_until": 0,
                }
            ],
            [],
            workload="empty",
            scheme="dyn",
        )
        assert merged.cycles == 0
        assert merged.posmap_cache_hit_rate == 0.0
        assert merged.extra["num_shards"] == 1

    def test_backend_checkpoint_roundtrip_preserves_counters(self):
        config = SystemConfig()
        source = build_shard_backend("dyn", FOOTPRINT, config, 0, 2)
        rng = DeterministicRng(3)
        now = 0
        for index in range(120):
            now += rng.randint(1, 30)
            source.demand_access(index % 64, now, index % 4 == 0)
        payload = dump_backend_state(source, {"last_seq": 5, "replies": [[5, [1]]]})
        clone = build_shard_backend("dyn", FOOTPRINT, config, 0, 2)
        runtime_state = restore_backend_state(clone, payload)
        assert runtime_state == {"last_seq": 5, "replies": [[5, [1]]]}
        from repro.controller.sharded import snapshot_shard_stats

        assert snapshot_shard_stats(clone) == snapshot_shard_stats(source)
        clone.oram.check_invariants()

    def test_worker_seed_derivation_matches_serial_bank(self):
        """The worker-side builder and the serial bank must draw the same
        per-shard RNG streams (the root of the bit-identity guarantee)."""
        from repro.sim.system import SecureSystem

        config = SystemConfig()
        bank = SecureSystem.build(
            "dyn", FOOTPRINT, config, num_shards=3
        ).backend
        for index in range(3):
            solo = build_shard_backend("dyn", FOOTPRINT, config, index, 3)
            assert solo.oram.rng.randint(0, 1 << 30) == bank.shards[
                index
            ].oram.rng.randint(0, 1 << 30)
            assert (
                solo.oram.position_map.num_blocks
                == bank.shards[index].oram.position_map.num_blocks
            )
