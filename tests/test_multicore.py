"""Integration tests for the shared-memory multi-core simulator."""

import pytest

from repro.config import CacheConfig, ORAMConfig, SystemConfig
from repro.sim.multicore import MultiCoreSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


def small_config():
    return SystemConfig(
        oram=ORAMConfig(levels=8, bucket_size=4, stash_blocks=50, utilization=0.5),
        l1=CacheConfig(capacity_bytes=2 * 1024, associativity=2),
        llc=CacheConfig(capacity_bytes=8 * 1024, associativity=8, hit_latency=8),
    )


def make_trace(name, footprint=512, n=800, gap=20, seed=1):
    rng = DeterministicRng(seed)
    trace = Trace(name, footprint_blocks=footprint)
    for _ in range(n):
        trace.append(gap, rng.randint(0, footprint - 1))
    return trace


class TestMultiCore:
    def test_single_core_works(self):
        system = MultiCoreSystem.build("oram", [make_trace("a")], config=small_config())
        results = system.run([make_trace("a")])
        assert len(results) == 1
        assert results[0].cycles > 0

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            MultiCoreSystem.build("oram", [], config=small_config()) if False else (
                MultiCoreSystem(small_config(), None, 0)
            )

    def test_trace_count_must_match(self):
        system = MultiCoreSystem.build(
            "oram", [make_trace("a"), make_trace("b", seed=2)], config=small_config()
        )
        with pytest.raises(ValueError):
            system.run([make_trace("a")])

    def test_contention_slows_cores_down(self):
        # Two memory-hungry cores sharing one serialized ORAM must each run
        # slower than a core owning the ORAM alone.
        alone_traces = [make_trace("w", gap=5, n=600)]
        alone = MultiCoreSystem.build("oram", alone_traces, config=small_config())
        alone_result = alone.run([make_trace("w", gap=5, n=600)])[0]

        pair_traces = [
            make_trace("w", gap=5, n=600),
            make_trace("w2", gap=5, n=600, seed=3),
        ]
        shared = MultiCoreSystem.build("oram", pair_traces, config=small_config())
        shared_results = shared.run(
            [make_trace("w", gap=5, n=600), make_trace("w2", gap=5, n=600, seed=3)]
        )
        assert all(r.cycles > alone_result.cycles * 1.3 for r in shared_results)

    def test_functional_state_consistent_after_shared_run(self):
        traces = [make_trace("a", seed=4), make_trace("b", seed=5)]
        system = MultiCoreSystem.build("dyn", traces, config=small_config())
        system.run([make_trace("a", seed=4), make_trace("b", seed=5)])
        system.backend.oram.check_invariants()

    def test_shared_llc_lets_cores_reuse_each_others_lines(self):
        # Both cores walk the same small array: the second toucher should
        # mostly hit in the shared LLC.
        def seq_trace(name):
            trace = Trace(name, footprint_blocks=64)
            for sweep in range(6):
                for addr in range(64):
                    trace.append(10, addr)
            return trace

        system = MultiCoreSystem.build(
            "oram", [seq_trace("a"), seq_trace("b")], config=small_config()
        )
        results = system.run([seq_trace("a"), seq_trace("b")])
        total_misses = sum(r.llc_misses for r in results)
        # 64 distinct lines; everything beyond startup is a (shared) hit.
        assert total_misses < 150

    def test_super_blocks_work_across_cores(self):
        # Core 0 touches even blocks, core 1 the odd partners: pairs are
        # co-resident in the *shared* LLC, so PrORAM can merge them even
        # though no single core sees both halves.
        def even_trace():
            trace = Trace("even", footprint_blocks=512)
            for sweep in range(8):
                for addr in range(0, 512, 2):
                    trace.append(12, addr)
            return trace

        def odd_trace():
            trace = Trace("odd", footprint_blocks=512)
            for sweep in range(8):
                for addr in range(1, 512, 2):
                    trace.append(12, addr)
            return trace

        system = MultiCoreSystem.build(
            "dyn", [even_trace(), odd_trace()], config=small_config()
        )
        system.run([even_trace(), odd_trace()])
        assert system.backend.scheme.stats.merges > 0
        system.backend.oram.check_invariants()
