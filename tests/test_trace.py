"""Unit tests for the trace container and its file format."""

import pytest

from repro.sim.trace import Trace


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace("t", footprint_blocks=16)
        trace.append(5, 3)
        trace.append(0, 7, is_write=True)
        assert len(trace) == 2
        assert list(trace) == [(5, 3, 0), (0, 7, 1)]

    def test_append_validates_footprint(self):
        trace = Trace("t", footprint_blocks=4)
        with pytest.raises(ValueError):
            trace.append(0, 4)
        with pytest.raises(ValueError):
            trace.append(0, -1)

    def test_footprint_validation(self):
        with pytest.raises(ValueError):
            Trace("t", footprint_blocks=0)

    def test_extend(self):
        trace = Trace("t", footprint_blocks=8)
        trace.extend([(1, 2, 0), (3, 4, 1)])
        assert len(trace) == 2

    def test_metrics(self):
        trace = Trace("t", footprint_blocks=8)
        trace.extend([(10, 1, 0), (20, 2, 1), (30, 1, 1)])
        assert trace.total_gap_cycles == 60
        assert trace.write_fraction == pytest.approx(2 / 3)
        assert trace.distinct_blocks() == 2

    def test_empty_metrics(self):
        trace = Trace("t", footprint_blocks=8)
        assert trace.write_fraction == 0.0
        assert trace.total_gap_cycles == 0


class TestIO:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace("myworkload", footprint_blocks=32)
        trace.extend([(1, 2, 0), (3, 4, 1), (0, 31, 0)])
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "myworkload"
        assert loaded.footprint_blocks == 32
        assert loaded.entries == trace.entries

    def test_load_without_header_infers_footprint(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("1 5 0\n2 9 1\n")
        loaded = Trace.load(str(path))
        assert loaded.footprint_blocks == 10
        assert loaded.entries == [(1, 5, 0), (2, 9, 1)]
