"""Unit tests for the trace container and its file format."""

import pytest

from repro.sim.trace import Trace


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace("t", footprint_blocks=16)
        trace.append(5, 3)
        trace.append(0, 7, is_write=True)
        assert len(trace) == 2
        assert list(trace) == [(5, 3, 0), (0, 7, 1)]

    def test_append_validates_footprint(self):
        trace = Trace("t", footprint_blocks=4)
        with pytest.raises(ValueError):
            trace.append(0, 4)
        with pytest.raises(ValueError):
            trace.append(0, -1)

    def test_footprint_validation(self):
        with pytest.raises(ValueError):
            Trace("t", footprint_blocks=0)

    def test_extend(self):
        trace = Trace("t", footprint_blocks=8)
        trace.extend([(1, 2, 0), (3, 4, 1)])
        assert len(trace) == 2

    def test_metrics(self):
        trace = Trace("t", footprint_blocks=8)
        trace.extend([(10, 1, 0), (20, 2, 1), (30, 1, 1)])
        assert trace.total_gap_cycles == 60
        assert trace.write_fraction == pytest.approx(2 / 3)
        assert trace.distinct_blocks() == 2

    def test_empty_metrics(self):
        trace = Trace("t", footprint_blocks=8)
        assert trace.write_fraction == 0.0
        assert trace.total_gap_cycles == 0


class TestIncrementalSums:
    """total_gap_cycles / write_fraction stay O(1) yet always correct."""

    @staticmethod
    def recomputed(trace):
        gaps = sum(e[0] for e in trace.entries)
        writes = sum(e[2] for e in trace.entries)
        return gaps, writes / len(trace.entries) if trace.entries else 0.0

    def test_append_keeps_sums_in_sync(self):
        trace = Trace("t", footprint_blocks=32)
        for i in range(20):
            trace.append(i, i % 32, is_write=(i % 3 == 0))
            gaps, frac = self.recomputed(trace)
            assert trace.total_gap_cycles == gaps
            assert trace.write_fraction == pytest.approx(frac)

    def test_extend_validates_and_sums_once(self):
        trace = Trace("t", footprint_blocks=8)
        trace.extend([(1, 2, 0), (3, 4, 1)])
        assert trace.total_gap_cycles == 4
        assert trace.write_fraction == pytest.approx(0.5)
        with pytest.raises(ValueError):
            trace.extend([(0, 8, 0)])  # out-of-footprint rejected
        assert len(trace) == 2  # nothing partial slipped in before the bad entry

    def test_extend_rejects_before_mutating(self):
        trace = Trace("t", footprint_blocks=8)
        with pytest.raises(ValueError):
            trace.extend([(0, 1, 0), (0, 99, 0)])
        assert len(trace) == 0
        assert trace.total_gap_cycles == 0

    def test_direct_entries_append_lazily_absorbed(self):
        # Generators push raw tuples straight onto trace.entries; the
        # cached sums must absorb that suffix on the next property read.
        trace = Trace("t", footprint_blocks=16)
        trace.append(5, 1)
        assert trace.total_gap_cycles == 5
        trace.entries.append((7, 2, 1))
        trace.entries.append((9, 3, 0))
        assert trace.total_gap_cycles == 21
        assert trace.write_fraction == pytest.approx(1 / 3)
        trace.append(4, 4, is_write=True)
        assert trace.total_gap_cycles == 25
        assert trace.write_fraction == pytest.approx(2 / 4)

    def test_entries_truncation_forces_recompute(self):
        trace = Trace("t", footprint_blocks=16)
        trace.extend([(10, 1, 1), (20, 2, 0), (30, 3, 1)])
        assert trace.total_gap_cycles == 60
        del trace.entries[1:]
        assert trace.total_gap_cycles == 10
        assert trace.write_fraction == pytest.approx(1.0)

    def test_entries_replacement_forces_recompute(self):
        trace = Trace("t", footprint_blocks=16)
        trace.extend([(10, 1, 1), (20, 2, 0)])
        assert trace.total_gap_cycles == 30
        trace.entries = [(1, 1, 0)]
        assert trace.total_gap_cycles == 1
        assert trace.write_fraction == pytest.approx(0.0)


class TestIO:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace("myworkload", footprint_blocks=32)
        trace.extend([(1, 2, 0), (3, 4, 1), (0, 31, 0)])
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "myworkload"
        assert loaded.footprint_blocks == 32
        assert loaded.entries == trace.entries

    def test_load_without_header_infers_footprint(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("1 5 0\n2 9 1\n")
        loaded = Trace.load(str(path))
        assert loaded.footprint_blocks == 10
        assert loaded.entries == [(1, 5, 0), (2, 9, 1)]
