"""Cross-scheme parity: one seeded trace through every ORAMScheme.

The controller layer promises that Path ORAM, Ring ORAM, the Shi tree
ORAM, and the square-root ORAM are interchangeable behind the
:class:`~repro.controller.scheme.ORAMScheme` protocol.  This suite drives
each implementation with the *same* seeded address trace and asserts the
protocol-level guarantees every scheme must uphold: the full protocol
surface exists, no block is ever lost, on-chip occupancy stays bounded,
remapped positions are tracked consistently, and the shared mixin
write-back agrees with Path ORAM's hand-inlined specialization.
"""

import pytest

from repro.controller.mixins import GreedyWritebackMixin
from repro.controller.scheme import PROTOCOL_SURFACE, SCHEME_FACTORIES, ORAMScheme, build_scheme
from repro.utils.rng import DeterministicRng

LEVELS = 5
NUM_BLOCKS = 80
SEED = 13
TRACE_LEN = 600


def seeded_trace(seed=SEED, length=TRACE_LEN, num_blocks=NUM_BLOCKS):
    rng = DeterministicRng(seed ^ 0xA5A5)
    return [rng.randint(0, num_blocks - 1) for _ in range(length)]


def drive(scheme, trace):
    """The controller loop: drain, access, sample occupancy."""
    max_on_chip = 0
    for addr in trace:
        scheme.drain_stash()
        fetched = scheme.begin_access([addr])
        assert addr in fetched, f"access did not return block {addr}"
        scheme.finish_access()
        if scheme.stash_occupancy > max_on_chip:
            max_on_chip = scheme.stash_occupancy
    return max_on_chip


@pytest.fixture(params=sorted(SCHEME_FACTORIES))
def scheme_name(request):
    return request.param


class TestProtocolSurface:
    def test_registered_as_virtual_subclass(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        assert isinstance(scheme, ORAMScheme)

    def test_full_surface_present(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        for attr in PROTOCOL_SURFACE:
            assert hasattr(scheme, attr), f"{scheme_name} lacks {attr}"

    def test_finish_without_begin_rejected(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        with pytest.raises(RuntimeError):
            scheme.finish_access()

    def test_double_begin_rejected(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        scheme.begin_access([0])
        with pytest.raises(RuntimeError):
            scheme.begin_access([1])

    def test_empty_access_rejected(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        with pytest.raises(ValueError):
            scheme.begin_access([])


class TestSharedTraceParity:
    def test_no_lost_blocks_and_stash_bounded(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        max_on_chip = drive(scheme, seeded_trace())
        # Invariant check proves block conservation (every implementation
        # asserts a full census) and structural health after the trace.
        scheme.check_invariants()
        # On-chip state stays within each scheme's configured bound plus
        # one in-flight super block's worth of slack.
        bound = {
            "path": scheme.config.stash_blocks if scheme_name == "path" else 0,
            "ring": getattr(scheme, "stash_capacity", 0),
            "tree": getattr(scheme, "overflow_capacity", 0),
            "sqrt": getattr(scheme, "shelter_size", 0),
        }[scheme_name]
        assert max_on_chip <= bound + scheme.MAX_EVICTIONS_PER_DRAIN if hasattr(
            scheme, "MAX_EVICTIONS_PER_DRAIN"
        ) else max_on_chip <= bound

    def test_position_tracking_agrees(self, scheme_name):
        """After any access, the scheme's position data covers the block.

        The position-map representation differs per scheme (PositionMap,
        leaf arrays, a permutation), but each must locate every block it
        claims to hold: re-accessing immediately must succeed.
        """
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        rng = DeterministicRng(99)

        def protocol_access(addrs):
            fetched = scheme.begin_access(addrs)
            scheme.finish_access()
            return fetched

        for _ in range(120):
            addr = rng.randint(0, NUM_BLOCKS - 1)
            first = protocol_access([addr])
            again = protocol_access([addr])
            assert addr in first and addr in again
        scheme.check_invariants()

    def test_dummy_access_preserves_invariants(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        for _ in range(40):
            scheme.dummy_access()
        scheme.check_invariants()

    def test_drain_returns_zero_when_under_limit(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        assert scheme.drain_stash() == 0


class TestLeafSchemes:
    """Position-mapped tree schemes share the leaf-validation mixin."""

    @pytest.mark.parametrize("scheme_name", ["path", "ring", "tree"])
    def test_split_group_rejected_uniformly(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)

        def leaf_of(addr):
            if scheme_name == "path":
                return scheme.position_map.leaf(addr)
            return scheme.leaf_of(addr)

        # Force two blocks onto different leaves, then group them.
        if leaf_of(0) == leaf_of(1):
            scheme.access([1], new_leaf=(leaf_of(1) + 1) % (1 << LEVELS))
        with pytest.raises(ValueError, match="share a leaf"):
            scheme.begin_access([0, 1])

    @pytest.mark.parametrize("scheme_name", ["path", "ring", "tree"])
    def test_super_block_fetch_roundtrip(self, scheme_name):
        scheme = build_scheme(scheme_name, levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        target = 3
        scheme.access([0], new_leaf=target)
        scheme.access([1], new_leaf=target)
        fetched = scheme.access([0, 1])
        assert set(fetched) == {0, 1}
        scheme.check_invariants()


class TestMixinAgreement:
    def test_greedy_writeback_matches_path_oram_specialization(self):
        """The mixin's reference algorithm equals PathORAM._evict_path.

        Same stash, same leaf: both must place the same blocks in the same
        buckets (PathORAM's hot loop is a hand-inlined specialization of
        the mixin and is pinned by the golden test -- this guards the
        equivalence claim in both docstrings).
        """
        scheme = build_scheme("path", levels=LEVELS, num_blocks=NUM_BLOCKS, seed=SEED)
        trace = seeded_trace(seed=7, length=200)
        for addr in trace:
            scheme.access([addr])
        leaf = scheme.position_map.leaf(trace[-1])
        # Read the path into the stash first (as every eviction's caller
        # does): both candidates must see the same stash-plus-path pool.
        store = scheme.stash._blocks
        scheme.tree.read_path_into(leaf, store)
        # Reference: run the mixin on a snapshot of that pool, recording
        # placements into a scratch tree of empty buckets.
        snapshot = {
            addr: type(block)(block.addr, block.leaf)
            for addr, block in scheme.stash.items()
        }
        scratch = {}

        class Ref(GreedyWritebackMixin):
            pass

        Ref()._greedy_writeback(
            leaf,
            scheme.config.levels,
            scheme.config.bucket_size,
            snapshot,
            lambda level, blocks: scratch.__setitem__(level, [b.addr for b in blocks]),
        )
        # Specialized: evict the real stash onto the real tree.
        scheme._evict_path(leaf)
        for level in range(scheme.config.levels + 1):
            index = scheme.tree.bucket_index(level, leaf)
            actual = [b.addr for b in scheme.tree.bucket(index)]
            assert actual == scratch.get(level, []), f"level {level} differs"
