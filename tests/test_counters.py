"""Unit and property tests for the merge/break counter codec (section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import (
    bits_to_value,
    counter_max,
    initial_break_value,
    merge_counter_width,
    saturate,
    static_merge_threshold,
    value_to_bits,
)


class TestCodec:
    def test_bits_to_value_msb_first(self):
        assert bits_to_value([1, 0]) == 2
        assert bits_to_value([0, 1]) == 1
        assert bits_to_value([1, 1, 1, 1]) == 15
        assert bits_to_value([]) == 0

    def test_value_to_bits(self):
        assert value_to_bits(2, 2) == [1, 0]
        assert value_to_bits(0, 4) == [0, 0, 0, 0]
        assert value_to_bits(15, 4) == [1, 1, 1, 1]

    def test_value_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            value_to_bits(4, 2)
        with pytest.raises(ValueError):
            value_to_bits(-1, 2)

    @given(st.integers(min_value=1, max_value=16))
    def test_roundtrip_property(self, width):
        # P5: packing then unpacking is the identity over the whole range.
        for value in range(min(counter_max(width) + 1, 300)):
            assert bits_to_value(value_to_bits(value, width)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=16))
    def test_roundtrip_from_bits(self, bits):
        assert value_to_bits(bits_to_value(bits), len(bits)) == bits


class TestSaturation:
    def test_saturate_clamps(self):
        assert saturate(-1, 2) == 0
        assert saturate(4, 2) == 3
        assert saturate(2, 2) == 2

    @given(st.integers(min_value=-100, max_value=100), st.integers(min_value=1, max_value=8))
    def test_saturate_in_range(self, value, width):
        out = saturate(value, width)
        assert 0 <= out <= counter_max(width)


class TestPaperConstants:
    def test_merge_counter_widths(self):
        # "the merge counter ... is 2n bits long"
        assert merge_counter_width(1) == 2
        assert merge_counter_width(2) == 4
        assert merge_counter_width(4) == 8

    def test_static_merge_thresholds(self):
        # "For block size of 1, 2 and 4 before merging, this corresponds to
        # the threshold value of 2, 4 and 8, respectively."
        assert static_merge_threshold(1) == 2
        assert static_merge_threshold(2) == 4
        assert static_merge_threshold(4) == 8

    def test_threshold_fits_in_counter(self):
        for half in [1, 2, 4, 8]:
            assert static_merge_threshold(half) <= counter_max(merge_counter_width(half))

    def test_initial_break_value(self):
        # 2n saturated to the n-bit counter: sbsize 2 -> 3 (not 4).
        assert initial_break_value(2) == 3
        assert initial_break_value(4) == 8
        assert initial_break_value(8) == 16

    def test_initial_break_value_in_range(self):
        for sbsize in [2, 4, 8, 16]:
            assert 0 <= initial_break_value(sbsize) <= counter_max(sbsize)


class TestSaturationWalks:
    """P5 property: counters driven through the codec never wrap.

    The merge/break counters live as position-map bits and are updated by
    reconstruct -> adjust -> saturate -> store cycles; a missing clamp on
    either side would wrap 3 -> 0 (losing locality evidence) or 0 -> 3
    (merging on no evidence).  Model the update loop against a plain
    clamped accumulator.
    """

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.sampled_from([-1, 1]), max_size=200),
    )
    def test_unit_steps_track_clamped_accumulator(self, width, deltas):
        value = 0
        reference = 0
        top = counter_max(width)
        for delta in deltas:
            # One full store/reload/update cycle, as the scheme performs it.
            value = saturate(
                bits_to_value(value_to_bits(value, width)) + delta, width
            )
            reference = min(top, max(0, reference + delta))
            assert value == reference
            assert 0 <= value <= top

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=300),
        st.lists(st.integers(min_value=-5, max_value=5), max_size=60),
    )
    def test_arbitrary_steps_stay_in_range(self, width, start, deltas):
        value = saturate(start, width)
        for delta in deltas:
            value = saturate(value + delta, width)
            assert 0 <= value <= counter_max(width)
            assert value_to_bits(value, width)  # encodable, no overflow


class TestWidth2FastPathEquivalence:
    """The pair-counter bit ops inlined in ``core/dynamic.py`` must agree
    with the codec they bypass (the width-2 fast paths manipulate the two
    position-map bits directly instead of slicing through the codec)."""

    def test_merge_increment_matches_codec(self):
        # _run_merge singleton path: value = (m0<<1)|m1; if value < 3: +1.
        for m0 in (0, 1):
            for m1 in (0, 1):
                value = (m0 << 1) | m1
                if value < 3:
                    value += 1
                expected = saturate(bits_to_value([m0, m1]) + 1, 2)
                assert value == expected
                assert [value >> 1, value & 1] == value_to_bits(expected, 2)

    def test_evict_decrement_matches_codec(self):
        # on_llc_evict singleton path: if value: value -= 1.
        for m0 in (0, 1):
            for m1 in (0, 1):
                value = (m0 << 1) | m1
                if value:
                    value -= 1
                expected = saturate(bits_to_value([m0, m1]) - 1, 2)
                assert value == expected
                assert [value >> 1, value & 1] == value_to_bits(expected, 2)

    @given(st.integers(min_value=-10, max_value=14))
    def test_break_store_clamp_matches_codec(self, raw):
        # _run_break size==2 path: stored = 0 if raw < 0 else min(raw, 3).
        stored = 0 if raw < 0 else (3 if raw > 3 else raw)
        assert stored == saturate(raw, 2)
        assert value_to_bits(stored, 2) == [stored >> 1, stored & 1]


class TestSchemeCounterSaturation:
    """Drive the real scheme past both counter rails (width-2 fast path)."""

    def _build(self):
        from repro.config import ORAMConfig
        from repro.core.dynamic import DynamicSuperBlockScheme
        from repro.core.thresholds import StaticThresholdPolicy
        from repro.oram.path_oram import PathORAM
        from repro.utils.rng import DeterministicRng

        class NeverMerge(StaticThresholdPolicy):
            def merge_threshold(self, result_size):
                return 1000.0  # unreachable: the counter must rail, not wrap

        config = ORAMConfig(levels=5, bucket_size=4, stash_blocks=60, utilization=0.5)
        oram = PathORAM(config, DeterministicRng(5), populate=False)
        llc = set()
        scheme = DynamicSuperBlockScheme(max_sbsize=2, policy=NeverMerge())
        scheme.attach(oram, lambda addr: addr in llc)
        scheme.initialize()
        oram.populate()
        return oram, llc, scheme

    def _access(self, oram, llc, scheme, addr):
        members = scheme.members_for(addr)
        blocks = oram.begin_access(members)
        fetched = {m: blocks[m] for m in members if m not in llc}
        outcome = scheme.process_fetch(addr, members, fetched)
        oram.finish_access()
        for filled, _ in outcome.to_llc:
            llc.add(filled)

    def _pair_counter(self, scheme):
        return (scheme._merge_bits[0] << 1) | scheme._merge_bits[1]

    def test_pair_counter_rails_high_then_low(self):
        oram, llc, scheme = self._build()
        self._access(oram, llc, scheme, 1)  # make the neighbor resident
        for _ in range(10):
            # Re-miss block 0 while 1 stays resident: +1 each time, far
            # past counter_max(2) = 3.
            llc.discard(0)
            self._access(oram, llc, scheme, 0)
        assert self._pair_counter(scheme) == 3
        assert all(bit in (0, 1) for bit in scheme._merge_bits)
        for _ in range(10):
            # Evictions with no co-residence evidence: -1 each, past 0.
            scheme._coresident[0] = 0
            scheme.on_llc_evict(0)
        assert self._pair_counter(scheme) == 0
        assert all(bit in (0, 1) for bit in scheme._merge_bits)
        oram.check_invariants()
