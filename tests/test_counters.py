"""Unit and property tests for the merge/break counter codec (section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import (
    bits_to_value,
    counter_max,
    initial_break_value,
    merge_counter_width,
    saturate,
    static_merge_threshold,
    value_to_bits,
)


class TestCodec:
    def test_bits_to_value_msb_first(self):
        assert bits_to_value([1, 0]) == 2
        assert bits_to_value([0, 1]) == 1
        assert bits_to_value([1, 1, 1, 1]) == 15
        assert bits_to_value([]) == 0

    def test_value_to_bits(self):
        assert value_to_bits(2, 2) == [1, 0]
        assert value_to_bits(0, 4) == [0, 0, 0, 0]
        assert value_to_bits(15, 4) == [1, 1, 1, 1]

    def test_value_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            value_to_bits(4, 2)
        with pytest.raises(ValueError):
            value_to_bits(-1, 2)

    @given(st.integers(min_value=1, max_value=16))
    def test_roundtrip_property(self, width):
        # P5: packing then unpacking is the identity over the whole range.
        for value in range(min(counter_max(width) + 1, 300)):
            assert bits_to_value(value_to_bits(value, width)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=16))
    def test_roundtrip_from_bits(self, bits):
        assert value_to_bits(bits_to_value(bits), len(bits)) == bits


class TestSaturation:
    def test_saturate_clamps(self):
        assert saturate(-1, 2) == 0
        assert saturate(4, 2) == 3
        assert saturate(2, 2) == 2

    @given(st.integers(min_value=-100, max_value=100), st.integers(min_value=1, max_value=8))
    def test_saturate_in_range(self, value, width):
        out = saturate(value, width)
        assert 0 <= out <= counter_max(width)


class TestPaperConstants:
    def test_merge_counter_widths(self):
        # "the merge counter ... is 2n bits long"
        assert merge_counter_width(1) == 2
        assert merge_counter_width(2) == 4
        assert merge_counter_width(4) == 8

    def test_static_merge_thresholds(self):
        # "For block size of 1, 2 and 4 before merging, this corresponds to
        # the threshold value of 2, 4 and 8, respectively."
        assert static_merge_threshold(1) == 2
        assert static_merge_threshold(2) == 4
        assert static_merge_threshold(4) == 8

    def test_threshold_fits_in_counter(self):
        for half in [1, 2, 4, 8]:
            assert static_merge_threshold(half) <= counter_max(merge_counter_width(half))

    def test_initial_break_value(self):
        # 2n saturated to the n-bit counter: sbsize 2 -> 3 (not 4).
        assert initial_break_value(2) == 3
        assert initial_break_value(4) == 8
        assert initial_break_value(8) == 16

    def test_initial_break_value_in_range(self):
        for sbsize in [2, 4, 8, 16]:
            assert 0 <= initial_break_value(sbsize) <= counter_max(sbsize)
