"""Treetop cache: pinned tree-top levels and truncated path streaming.

Covers the on-chip treetop store (DESIGN.md section 13) end to end:

* config validation and footprint rescaling;
* the tree-level cache itself (read-through, dirty tracking, write-back
  flush, census helpers);
* functional equivalence -- a treetop changes *where* buckets live, never
  what the ORAM computes;
* truncated public timing on both interconnect models, including the
  periodic grid and the cross-runtime bit-identity contracts at ``k > 0``;
* hypothesis properties: ``k = 0`` is cycle-identical to the untruncated
  model, and ``k >= 1`` never issues a bank request that only pinned
  levels need;
* checkpoint round-trips (dirty state included), metrics export, and the
  physical-layout partial-bottom-tier regression that rides along.
"""

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import experiment_config
from repro.config import (
    DRAMConfig,
    ORAMConfig,
    SystemConfig,
    TimingProtectionConfig,
)
from repro.memory.interconnect import ChannelInterconnect, build_interconnect
from repro.memory.oram_backend import ORAMBackend
from repro.memory.periodic import PeriodicORAMBackend
from repro.memory.timing import ORAMTimingModel
from repro.observability.collect import collect_system
from repro.observability.recorder import InMemoryRecorder
from repro.oram.checkpoint import CheckpointError, dump_oram, load_oram
from repro.oram.path_oram import PathORAM
from repro.oram.super_block import BaselineScheme
from repro.oram.tree import BinaryTree, PhysicalLayout
from repro.faults.fsck import run_fsck
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace

SMALL_CAPACITY = 1 << 20

SMALL_ORAM = dict(levels=7, bucket_size=4, stash_blocks=50, utilization=0.5)


def small_config(treetop: int) -> ORAMConfig:
    return ORAMConfig(treetop_levels=treetop, **SMALL_ORAM)


# ------------------------------------------------------------------- config
class TestConfigValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ORAMConfig(treetop_levels=-1)

    def test_taller_than_nominal_tree_rejected(self):
        config = ORAMConfig()
        with pytest.raises(ValueError, match="nominal tree height"):
            dataclasses.replace(config, treetop_levels=config.nominal_levels)

    def test_footprint_rescale_preserves_treetop(self):
        config = dataclasses.replace(ORAMConfig(), treetop_levels=4)
        scaled = config.scaled_to_footprint(1 << 14)
        assert scaled.treetop_levels == 4

    def test_cli_override_helper_applies_and_validates(self):
        from repro.cli import _dram_config

        class Args:
            treetop = 4
            dram_model = None
            channels = None

        config = _dram_config(Args(), SystemConfig())
        assert config.oram.treetop_levels == 4
        Args.treetop = 99
        with pytest.raises(SystemExit, match="--treetop"):
            _dram_config(Args(), SystemConfig())


# ----------------------------------------------------------------- the tree
class TestTreetopCacheTree:
    def build(self, treetop=3, levels=5, z=4):
        tree = BinaryTree(levels=levels, bucket_size=z)
        from repro.oram.block import Block

        # Spread a few blocks over the top and bottom of the tree.
        tree.write_bucket_at(0, [Block(addr=0, leaf=0)])
        tree.write_bucket_at(1, [Block(addr=1, leaf=0)])
        bottom = tree.bucket_index(levels, 3)
        tree.write_bucket_at(bottom, [Block(addr=2, leaf=3)])
        if treetop:
            tree.attach_treetop(treetop)
        return tree

    def test_attach_validates(self):
        tree = BinaryTree(levels=4, bucket_size=2)
        with pytest.raises(ValueError):
            tree.attach_treetop(0)
        with pytest.raises(ValueError):
            tree.attach_treetop(5)
        tree.attach_treetop(2)
        with pytest.raises(RuntimeError):
            tree.attach_treetop(2)  # double attach

    def test_read_through_and_census(self):
        tree = self.build()
        assert tree.bucket(0) is tree.treetop.store[0]
        assert tree.occupancy() == 3
        assert sorted(b.addr for b in tree.iter_blocks()) == [0, 1, 2]
        assert tree.find(0) and tree.find(2) and not tree.find(99)
        index = tree.address_index()
        assert index[0] == 0 and index[1] == 1
        assert index[2] == tree.bucket_index(tree.levels, 3)

    def test_write_marks_dirty_and_flush_syncs_image(self):
        from repro.oram.block import Block

        tree = self.build()
        tree.write_bucket_at(2, [Block(addr=9, leaf=2)])
        assert tree.treetop.dirty[2] == 1
        # The DRAM image still holds the pre-write (empty) bucket.
        assert tree._buckets[2] == []
        written = tree.flush_treetop()
        assert written >= 1
        assert [b.addr for b in tree._buckets[2]] == [9]
        assert not any(tree.treetop.dirty)
        assert tree.treetop.flushes == 1
        assert tree.treetop.flushed_buckets == written
        # A clean flush writes nothing but still counts a pass.
        assert tree.flush_treetop() == 0
        assert tree.treetop.flushes == 2

    def test_read_path_drains_treetop_and_dirties_emptied_buckets(self):
        tree = self.build(treetop=3)
        blocks = tree.read_path(0)
        assert sorted(b.addr for b in blocks) == [0, 1]
        # Draining a pinned non-empty bucket dirties it (its on-chip copy
        # became empty while the image still holds the block).
        assert tree.treetop.dirty[0] == 1 and tree.treetop.dirty[1] == 1
        assert tree.treetop.hits >= 3


# ------------------------------------------------- functional equivalence
class TestFunctionalEquivalence:
    def drive(self, treetop: int):
        oram = PathORAM(small_config(treetop), DeterministicRng(1234))
        rng = random.Random(7)
        for _ in range(300):
            oram.access([rng.randrange(oram.position_map.num_blocks)])
        return oram

    def test_treetop_never_changes_oram_state(self):
        """k only moves buckets on-chip; contents/stash/posmap match k=0."""
        base = self.drive(0)
        pinned = self.drive(4)
        assert [
            sorted(b.addr for b in base.tree.bucket(i))
            for i in range(base.tree.num_buckets)
        ] == [
            sorted(b.addr for b in pinned.tree.bucket(i))
            for i in range(pinned.tree.num_buckets)
        ]
        assert sorted(base.stash.items()) == sorted(pinned.stash.items())
        assert [
            base.position_map.leaf(a)
            for a in range(base.position_map.num_blocks)
        ] == [
            pinned.position_map.leaf(a)
            for a in range(pinned.position_map.num_blocks)
        ]
        assert run_fsck(pinned).ok

    def test_functional_attach_is_capped_at_tree_height(self):
        """A nominal-height treetop still attaches to the small functional
        tree (capped), and the ORAM stays consistent."""
        config = dataclasses.replace(small_config(0), treetop_levels=20)
        oram = PathORAM(config, DeterministicRng(5))
        assert oram.tree.treetop.levels == config.levels
        for addr in range(50):
            oram.access([addr % oram.position_map.num_blocks])
        assert run_fsck(oram).ok


# ------------------------------------------------------------------ timing
class TestTruncatedTiming:
    def test_flat_prices_the_offchip_suffix(self):
        for k in (0, 2, 4, 6):
            config = small_config(k)
            dram = DRAMConfig()
            timing = ORAMTimingModel.from_config(config, dram)
            flat = build_interconnect(config, dram)
            offchip = config.nominal_levels + 1 - k
            assert flat.offchip_levels == offchip
            assert flat.path_cycles == timing.path_cycles_for(offchip)
            assert flat.bytes_per_path == offchip * timing.bucket_bytes

    def test_zero_treetop_is_the_full_path_cost(self):
        config = small_config(0)
        dram = DRAMConfig()
        timing = ORAMTimingModel.from_config(config, dram)
        assert (
            timing.path_cycles_for(config.nominal_levels + 1)
            == timing.path_cycles
        )
        assert build_interconnect(config, dram).path_cycles == timing.path_cycles

    def test_path_cycles_for_rejects_empty_paths(self):
        timing = ORAMTimingModel.from_config(small_config(0), DRAMConfig())
        with pytest.raises(ValueError):
            timing.path_cycles_for(0)

    def test_channel_public_cost_shrinks_with_k(self):
        dram = DRAMConfig(model="channel", num_channels=4)
        costs = [
            build_interconnect(small_config(k), dram).path_cycles
            for k in (0, 2, 4, 6)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_backend_charges_truncated_cost_everywhere(self):
        backend = ORAMBackend(
            small_config(4), DRAMConfig(), BaselineScheme(), DeterministicRng(3)
        )
        public = backend.interconnect.path_cycles
        assert public == backend.timing.path_cycles_for(
            backend.config.nominal_levels + 1 - 4
        )
        done = backend.dummy_path_access(0)
        assert done == public


# ------------------------------------------------------- periodic grid
class TestPeriodicGridWithTreetop:
    def test_issue_times_stay_on_the_truncated_grid(self):
        backend = PeriodicORAMBackend(
            small_config(4),
            DRAMConfig(model="channel", num_channels=4),
            BaselineScheme(),
            DeterministicRng(4),
            TimingProtectionConfig(enabled=True, interval_cycles=100),
        )
        recorder = InMemoryRecorder()
        backend.set_recorder(recorder)
        period = backend.interconnect.path_cycles + backend.interval
        rng = DeterministicRng(9)
        now = 0
        for i in range(60):
            choice = rng.randbelow(3)
            if choice == 0:
                result = backend.demand_access(
                    1 + (i % 32), now=now, is_write=bool(i % 2)
                )
                now = result.completion_cycle
            elif choice == 1:
                backend.evict_line(1 + (i % 32), dirty=True, now=now)
                now = backend.busy_until
            else:
                now += 1 + rng.randbelow(3 * period)
        backend.finalize(now + 5 * period)
        starts = [r["start"] for r in recorder.records if "event" not in r]
        assert starts
        assert all(start % period == 0 for start in starts)
        dummy_slots = [
            r["slot"] for r in recorder.records if r.get("event") == "periodic_dummy"
        ]
        assert dummy_slots
        assert all(slot % period == 0 for slot in dummy_slots)
        # finalize drained the treetop write-back queue.
        assert backend.oram.tree.treetop.flushes >= 1


# -------------------------------------------------- bit-identity contracts
def _request_stream(count=200, footprint=128, seed=9):
    rng = DeterministicRng(seed)
    requests = []
    now = 0
    for index in range(count):
        now += rng.randint(1, 40)
        requests.append((rng.randint(0, footprint - 1), now, index % 5 == 0))
    return requests


def _treetop_system_config(k=4, channels=4) -> SystemConfig:
    config = SystemConfig()
    return dataclasses.replace(
        config,
        oram=dataclasses.replace(config.oram, treetop_levels=k),
        dram=dataclasses.replace(
            config.dram, model="channel", num_channels=channels
        ),
    )


class TestBitIdentityAtK:
    def test_parallel_runtime_matches_serial_bank(self):
        from repro.parallel import ParallelShardRuntime, run_serial_reference

        requests = _request_stream()
        config = _treetop_system_config()
        serial = run_serial_reference("dyn", 128, requests, config, num_shards=2)
        with ParallelShardRuntime("dyn", 128, config, 2, batch_size=23) as runtime:
            parallel = runtime.run(requests)
        assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)

    def test_sharded_bank_matches_single_controller_public_costs(self):
        """Every shard of a bank prices paths at the same truncated cost."""
        config = _treetop_system_config()
        system = SecureSystem.build("dyn", 256, config, num_shards=2)
        single = SecureSystem.build("dyn", 256, config)
        for shard in system.backend.shards:
            assert (
                shard.interconnect.path_cycles
                == single.backend.interconnect.path_cycles
            )
            assert shard.interconnect.treetop_levels == 4

    def test_serve_replay_contract_with_treetop(self):
        from repro.parallel.merge import replay_issued_schedule
        from repro.serve import OpenLoopSource, ServingFrontEnd

        config = _treetop_system_config()
        trace = locality_mix_trace(0.6, footprint_blocks=512, accesses=300)
        frontend = ServingFrontEnd.build(
            "dyn", trace.footprint_blocks, config, 2, workload="serve_open"
        )
        report = frontend.run(OpenLoopSource.from_trace(trace, num_tenants=2))
        replayed = replay_issued_schedule(
            "dyn",
            trace.footprint_blocks,
            frontend.issued,
            config,
            2,
            workload="serve_open",
            parallel=True,
        )
        assert dataclasses.asdict(replayed) == dataclasses.asdict(report.sim)


# --------------------------------------------------------------- hypothesis
def geometry():
    return dict(
        levels=st.integers(min_value=4, max_value=9),
        bucket_size=st.integers(min_value=1, max_value=5),
        channels=st.sampled_from([1, 2, 4]),
        subtree_levels=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**20),
    )


class TestTreetopProperties:
    @given(k=st.integers(min_value=0, max_value=6), **geometry())
    @settings(max_examples=40, deadline=None)
    def test_zero_treetop_cycle_identical_and_k_never_slower(
        self, k, levels, bucket_size, channels, subtree_levels, seed
    ):
        """k=0 reproduces the untruncated interconnect cycle-for-cycle;
        any k prices paths no higher than k=0."""
        base = ORAMConfig(
            capacity_bytes=SMALL_CAPACITY,
            levels=levels,
            bucket_size=bucket_size,
        )
        k = min(k, base.nominal_levels - 1)
        dram = DRAMConfig(
            model="channel",
            num_channels=channels,
            subtree_levels=subtree_levels,
        )
        untruncated = build_interconnect(base, dram)
        zero = build_interconnect(dataclasses.replace(base, treetop_levels=0), dram)
        pinned = build_interconnect(dataclasses.replace(base, treetop_levels=k), dram)
        assert zero.path_cycles == untruncated.path_cycles
        assert pinned.path_cycles <= zero.path_cycles
        rng = random.Random(seed)
        now_zero = now_untrunc = 0
        for _ in range(30):
            leaf = rng.randrange(1 << levels)
            done_zero = zero.path_completion(leaf, now_zero)
            done_untrunc = untruncated.path_completion(leaf, now_untrunc)
            assert done_zero - now_zero == done_untrunc - now_untrunc
            gap = rng.randrange(4) * rng.randrange(200)
            now_zero = done_zero + gap
            now_untrunc = done_untrunc + gap

    @given(k=st.integers(min_value=1, max_value=6), **geometry())
    @settings(max_examples=40, deadline=None)
    def test_no_bank_request_serves_only_pinned_levels(
        self, k, levels, bucket_size, channels, subtree_levels, seed
    ):
        """Every (channel, bank, row) the plan touches is needed by some
        off-chip level; planned bytes cover exactly the off-chip suffix."""
        base = ORAMConfig(
            capacity_bytes=SMALL_CAPACITY,
            levels=levels,
            bucket_size=bucket_size,
        )
        k = min(k, base.nominal_levels - 1)
        dram = DRAMConfig(
            model="channel",
            num_channels=channels,
            subtree_levels=subtree_levels,
        )
        interconnect = build_interconnect(
            dataclasses.replace(base, treetop_levels=k), dram
        )
        assert isinstance(interconnect, ChannelInterconnect)
        layout = interconnect.layout
        leaf = random.Random(seed).randrange(1 << levels)
        nominal_leaf = leaf << interconnect._leaf_shift
        offchip = {
            (a.channel, a.bank, a.row)
            for a in layout.path_addresses(nominal_leaf)[k:]
        }
        plan = interconnect._plan(leaf)
        planned_bytes = 0
        for channel, requests, _cycles, nbytes in plan:
            planned_bytes += nbytes
            for bank, row in requests:
                assert (channel, bank, row) in offchip
        assert planned_bytes == interconnect.offchip_levels * interconnect.bucket_bytes


# ------------------------------------------------------- physical layout
class TestPartialBottomTier:
    """levels + 1 not divisible by subtree_levels: the bottom tier is a
    partial-height tile and must still place injectively."""

    def test_bucket_locations_stay_injective(self):
        levels, channels = 10, 4
        layout = PhysicalLayout(
            levels=levels, num_channels=channels, num_banks=8, subtree_levels=3
        )
        assert (levels + 1) % 3 != 0  # the regression's precondition
        seen = {}
        for level in range(levels + 1):
            step = 1 << (levels - level)
            for index in range(1 << level):
                address = layout.address_of(level, index * step)
                subtree = layout.subtree_id(level, index * step)
                key = (address.channel, address.bank, address.row)
                if key in seen:
                    assert seen[key] == subtree  # same tile, never a clash
                else:
                    seen[key] = subtree

    def test_per_tier_rotation_spreads_a_constant_index_path(self):
        levels, channels = 10, 4
        layout = PhysicalLayout(
            levels=levels, num_channels=channels, num_banks=8, subtree_levels=3
        )
        # Leaf 0's within-tier index is 0 in every tier; only the per-tier
        # rotation spreads its tiles over channels.
        tiers = len(range(0, levels + 1, 3))
        path_channels = {a.channel for a in layout.path_addresses(0)}
        assert len(path_channels) == min(tiers, channels)


# ----------------------------------------------------------- checkpointing
class TestTreetopCheckpoint:
    def checkpointed(self, k=4, accesses=200):
        oram = PathORAM(small_config(k), DeterministicRng(77))
        rng = random.Random(13)
        for _ in range(accesses):
            oram.access([rng.randrange(oram.position_map.num_blocks)])
        return oram

    def test_round_trip_preserves_dirty_state(self):
        oram = self.checkpointed()
        assert any(oram.tree.treetop.dirty)  # the interesting case
        payload = dump_oram(oram)
        restored = load_oram(payload, DeterministicRng(1))
        assert restored.tree.treetop is not None
        assert bytes(restored.tree.treetop.dirty) == bytes(oram.tree.treetop.dirty)
        assert restored.tree._buckets[: restored.tree._treetop_buckets] == [
            bucket for bucket in oram.tree._buckets[: oram.tree._treetop_buckets]
        ]
        assert dump_oram(restored) == payload
        assert run_fsck(restored).ok

    def test_flush_after_restore_converges_images(self):
        oram = self.checkpointed()
        restored = load_oram(dump_oram(oram), DeterministicRng(1))
        oram.tree.flush_treetop()
        restored.tree.flush_treetop()
        boundary = oram.tree._treetop_buckets
        assert [
            sorted(b.addr for b in bucket)
            for bucket in restored.tree._buckets[:boundary]
        ] == [
            sorted(b.addr for b in bucket)
            for bucket in oram.tree._buckets[:boundary]
        ]

    def test_pre_treetop_documents_still_load(self):
        oram = PathORAM(small_config(0), DeterministicRng(3))
        for addr in range(40):
            oram.access([addr % oram.position_map.num_blocks])
        state = json.loads(dump_oram(oram))
        assert "treetop" not in state
        del state["config"]["treetop_levels"]  # a pre-treetop document
        restored = load_oram(json.dumps(state), DeterministicRng(4))
        assert restored.config.treetop_levels == 0
        assert restored.tree.treetop is None
        assert run_fsck(restored).ok

    def test_malformed_treetop_section_rejected(self):
        oram = self.checkpointed()
        state = json.loads(dump_oram(oram))
        state["treetop"]["levels"] = 99
        with pytest.raises(CheckpointError):
            load_oram(json.dumps(state), DeterministicRng(1))
        state = json.loads(dump_oram(oram))
        state["treetop"]["dirty"] = "oops"
        with pytest.raises(CheckpointError):
            load_oram(json.dumps(state), DeterministicRng(1))


# ---------------------------------------------------------------- metrics
class TestTreetopMetrics:
    def test_single_controller_exports_treetop_counters(self):
        trace = locality_mix_trace(0.8, accesses=1200)
        config = experiment_config()
        config = dataclasses.replace(
            config,
            oram=dataclasses.replace(config.oram, treetop_levels=4),
            dram=dataclasses.replace(
                config.dram, model="channel", num_channels=4
            ),
        )
        system = SecureSystem.build("dyn", trace.footprint_blocks, config)
        result = system.run(trace)
        registry = collect_system(system)
        names = {instrument.name for instrument in registry}
        assert "interconnect.treetop_hits" in names
        assert "interconnect.treetop_bytes_saved" in names
        assert "interconnect.treetop_flushes" in names
        assert registry.counter("interconnect.treetop_hits").value > 0
        assert registry.counter("interconnect.treetop_bytes_saved").value > 0
        assert registry.counter("interconnect.treetop_flushes").value > 0
        assert result.extra["interconnect_treetop_hits"] > 0

    def test_sharded_bank_exports_per_shard_treetop(self):
        trace = locality_mix_trace(0.8, accesses=1200)
        config = experiment_config()
        config = dataclasses.replace(
            config,
            oram=dataclasses.replace(config.oram, treetop_levels=4),
            dram=dataclasses.replace(
                config.dram, model="channel", num_channels=2
            ),
        )
        system = SecureSystem.build("dyn", trace.footprint_blocks, config, num_shards=2)
        system.run(trace)
        registry = collect_system(system)
        names = {instrument.name for instrument in registry}
        for shard in range(2):
            assert f"interconnect.shard{shard}.treetop_hits" in names
            assert f"interconnect.shard{shard}.treetop_flushes" in names

    def test_flat_model_counts_saved_bytes_too(self):
        config = small_config(4)
        flat = build_interconnect(config, DRAMConfig())
        flat.path_completion(3, 0)
        flat.note_untracked(2)
        summary = flat.summary()
        assert summary["treetop_hits"] == 4 * 3
        assert summary["treetop_bytes_saved"] == 4 * 3 * flat._timing.bucket_bytes


# ------------------------------------------------------------------- fsck
class TestFsckIndexedAudit:
    def test_missing_address_named_in_report(self):
        oram = PathORAM(small_config(0), DeterministicRng(21))
        index = oram.tree.address_index()
        victim = next(iter(sorted(index)))
        bucket = oram.tree.bucket(index[victim])
        oram.tree.write_bucket_at(
            index[victim], [b for b in bucket if b.addr != victim]
        )
        report = run_fsck(oram)
        assert not report.ok
        assert any(
            f"block {victim} missing from both tree and stash" == error
            for error in report.errors
        )

    def test_clean_store_audits_clean_with_treetop(self):
        oram = PathORAM(small_config(3), DeterministicRng(22))
        rng = random.Random(5)
        for _ in range(150):
            oram.access([rng.randrange(oram.position_map.num_blocks)])
        assert run_fsck(oram).ok
