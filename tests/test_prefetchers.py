"""Unit tests for the traditional stream and stride prefetchers."""

from repro.config import PrefetchConfig
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher


def make_stream(num_streams=4, depth=2, train=2):
    return StreamPrefetcher(
        PrefetchConfig(enabled=True, num_streams=num_streams, depth=depth, train_threshold=train)
    )


class TestStreamPrefetcher:
    def test_trains_on_ascending_misses(self):
        pf = make_stream()
        assert pf.on_demand_miss(10) == []
        assert pf.on_demand_miss(11) == []
        assert pf.on_demand_miss(12) == [13, 14]

    def test_keeps_following_stream(self):
        pf = make_stream()
        for addr in (10, 11, 12):
            pf.on_demand_miss(addr)
        assert pf.on_demand_miss(13) == [14, 15]

    def test_descending_stream(self):
        pf = make_stream()
        pf.on_demand_miss(20)
        pf.on_demand_miss(19)
        picks = pf.on_demand_miss(18)
        assert picks == [17, 16]

    def test_random_misses_never_predict(self):
        pf = make_stream()
        for addr in (5, 100, 42, 7, 9999, 3):
            assert pf.on_demand_miss(addr) == []

    def test_multiple_concurrent_streams(self):
        pf = make_stream(num_streams=2)
        # Interleave two ascending streams.
        pf.on_demand_miss(10)
        pf.on_demand_miss(500)
        pf.on_demand_miss(11)
        pf.on_demand_miss(501)
        assert pf.on_demand_miss(12) == [13, 14]
        assert pf.on_demand_miss(502) == [503, 504]

    def test_stream_table_replacement(self):
        pf = make_stream(num_streams=1)
        pf.on_demand_miss(10)
        pf.on_demand_miss(11)
        # A new stream evicts the old one.
        pf.on_demand_miss(1000)
        pf.on_demand_miss(1001)
        assert pf.on_demand_miss(1002) == [1003, 1004]

    def test_depth_config(self):
        pf = make_stream(depth=4)
        pf.on_demand_miss(0)
        pf.on_demand_miss(1)
        assert pf.on_demand_miss(2) == [3, 4, 5, 6]

    def test_issue_counter(self):
        pf = make_stream()
        for addr in (1, 2, 3, 4):
            pf.on_demand_miss(addr)
        assert pf.issued == 4  # two trained predictions of depth 2


class TestStridePrefetcher:
    def make(self, depth=2, train=2):
        return StridePrefetcher(PrefetchConfig(enabled=True, depth=depth, train_threshold=train))

    def test_detects_constant_stride(self):
        pf = self.make()
        assert pf.on_demand_miss(0) == []
        assert pf.on_demand_miss(8) == []
        assert pf.on_demand_miss(16) == [24, 32]

    def test_negative_stride(self):
        pf = self.make()
        pf.on_demand_miss(100)
        pf.on_demand_miss(90)
        assert pf.on_demand_miss(80) == [70, 60]

    def test_stride_change_retrains(self):
        pf = self.make()
        pf.on_demand_miss(0)
        pf.on_demand_miss(8)
        pf.on_demand_miss(16)
        pf.on_demand_miss(17)  # stride broken: confidence restarts at 1
        # One confirmation of the new stride re-trains the predictor.
        assert pf.on_demand_miss(18) == [19, 20]

    def test_zero_stride_ignored(self):
        pf = self.make()
        pf.on_demand_miss(5)
        pf.on_demand_miss(5)
        pf.on_demand_miss(5)
        assert pf.on_demand_miss(5) == []
