"""Unit tests for the traditional stream and stride prefetchers.

These pin the *fixed* training behaviour: a trained stream advances its
head past the window it just predicted (instead of re-issuing ``depth``
overlapping prefetches on every subsequent miss), and the stride detector
treats the first occurrence of a new stride as noise and dedupes its
strided window against what it already issued.
"""

from repro.config import PrefetchConfig
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher


def make_stream(num_streams=4, depth=2, train=2):
    return StreamPrefetcher(
        PrefetchConfig(enabled=True, num_streams=num_streams, depth=depth, train_threshold=train)
    )


class TestStreamPrefetcher:
    def test_trains_on_ascending_misses(self):
        pf = make_stream()
        assert pf.on_demand_miss(10) == []
        assert pf.on_demand_miss(11) == []
        assert pf.on_demand_miss(12) == [13, 14]

    def test_keeps_following_stream_past_window(self):
        pf = make_stream()
        for addr in (10, 11, 12):
            pf.on_demand_miss(addr)
        # 13 and 14 were prefetched; the next miss the stream sees is 15,
        # one past the predicted window, and the stream follows it.
        assert pf.on_demand_miss(15) == [16, 17]

    def test_no_duplicate_prefetches_across_windows(self):
        pf = make_stream()
        issued = []
        for addr in (10, 11, 12, 15, 18):
            issued.extend(pf.on_demand_miss(addr))
        assert len(issued) == len(set(issued))

    def test_window_remiss_does_not_reissue(self):
        # A miss *inside* the just-predicted window (the prefetch did not
        # arrive in time) must not re-issue the overlapping window.
        pf = make_stream()
        for addr in (10, 11):
            pf.on_demand_miss(addr)
        assert pf.on_demand_miss(12) == [13, 14]
        assert pf.issued == 2
        assert pf.on_demand_miss(13) == []
        assert pf.issued == 2

    def test_descending_stream(self):
        pf = make_stream()
        pf.on_demand_miss(20)
        pf.on_demand_miss(19)
        picks = pf.on_demand_miss(18)
        assert picks == [17, 16]
        # The backward stream advanced past its window too.
        assert pf.on_demand_miss(15) == [14, 13]

    def test_random_misses_never_predict(self):
        pf = make_stream()
        for addr in (5, 100, 42, 7, 9999, 3):
            assert pf.on_demand_miss(addr) == []

    def test_multiple_concurrent_streams(self):
        pf = make_stream(num_streams=2)
        # Interleave two ascending streams.
        pf.on_demand_miss(10)
        pf.on_demand_miss(500)
        pf.on_demand_miss(11)
        pf.on_demand_miss(501)
        assert pf.on_demand_miss(12) == [13, 14]
        assert pf.on_demand_miss(502) == [503, 504]

    def test_stream_table_replacement(self):
        pf = make_stream(num_streams=1)
        pf.on_demand_miss(10)
        pf.on_demand_miss(11)
        # A new stream evicts the old one.
        pf.on_demand_miss(1000)
        pf.on_demand_miss(1001)
        assert pf.on_demand_miss(1002) == [1003, 1004]

    def test_depth_config(self):
        pf = make_stream(depth=4)
        pf.on_demand_miss(0)
        pf.on_demand_miss(1)
        assert pf.on_demand_miss(2) == [3, 4, 5, 6]

    def test_issue_counter(self):
        pf = make_stream()
        # Train at 3 (issues 4, 5), then follow the stream at 6 (issues
        # 7, 8): four issued prefetches, none overlapping.
        for addr in (1, 2, 3, 6):
            pf.on_demand_miss(addr)
        assert pf.issued == 4


class TestStridePrefetcher:
    def make(self, depth=2, train=2):
        return StridePrefetcher(PrefetchConfig(enabled=True, depth=depth, train_threshold=train))

    def test_detects_constant_stride(self):
        pf = self.make()
        assert pf.on_demand_miss(0) == []
        # First delta observation is noise; two confirmations train.
        assert pf.on_demand_miss(8) == []
        assert pf.on_demand_miss(16) == []
        assert pf.on_demand_miss(24) == [32, 40]

    def test_negative_stride(self):
        pf = self.make()
        pf.on_demand_miss(100)
        pf.on_demand_miss(90)
        pf.on_demand_miss(80)
        assert pf.on_demand_miss(70) == [60, 50]

    def test_trained_window_advances_without_duplicates(self):
        pf = self.make()
        for addr in (0, 8, 16):
            pf.on_demand_miss(addr)
        assert pf.on_demand_miss(24) == [32, 40]
        # The next strided miss only extends the window past what was
        # already issued -- no overlapping re-issue.
        assert pf.on_demand_miss(32) == [48]
        assert pf.on_demand_miss(40) == [56]
        assert pf.issued == 4

    def test_no_duplicate_in_flight_prefetches(self):
        pf = self.make()
        issued = []
        for addr in range(0, 96, 8):
            issued.extend(pf.on_demand_miss(addr))
        assert len(issued) == len(set(issued))
        assert pf.issued == len(issued)

    def test_stride_change_retrains(self):
        pf = self.make()
        for addr in (0, 8, 16, 24):
            pf.on_demand_miss(addr)
        # Stride breaks: the single new delta is noise, confidence resets.
        assert pf.on_demand_miss(25) == []
        assert pf.on_demand_miss(26) == []
        # Two confirmations of the new stride re-train the predictor.
        assert pf.on_demand_miss(27) == [28, 29]

    def test_stride_change_resets_issued_window(self):
        pf = self.make()
        for addr in (0, 8, 16, 24):
            pf.on_demand_miss(addr)  # issued window reaches 40
        # New stride region overlapping the old window: after retraining,
        # the old frontier must not suppress the new stream's picks.
        for addr in (33, 34, 35):
            pf.on_demand_miss(addr)
        assert pf.on_demand_miss(36) == [37, 38]

    def test_zero_stride_ignored(self):
        pf = self.make()
        pf.on_demand_miss(5)
        pf.on_demand_miss(5)
        pf.on_demand_miss(5)
        assert pf.on_demand_miss(5) == []

    def test_issued_counts_only_returned_picks(self):
        pf = self.make()
        total = 0
        for addr in (0, 8, 16, 24, 32, 33, 34):
            total += len(pf.on_demand_miss(addr))
        assert pf.issued == total
