"""Unit tests for the DRAM backend timing model."""

from repro.config import DRAMConfig
from repro.memory.dram import DRAMBackend


def make_dram(**kwargs):
    return DRAMBackend(DRAMConfig(**kwargs), block_bytes=128)


class TestDemand:
    def test_single_access_latency(self):
        dram = make_dram()
        result = dram.demand_access(0, now=1000, is_write=False)
        assert result.completion_cycle == 1000 + 100 + 8
        assert result.filled == [(0, False)]

    def test_same_bank_serializes(self):
        dram = make_dram(num_banks=8)
        first = dram.demand_access(0, now=0, is_write=False)
        second = dram.demand_access(8, now=0, is_write=False)  # same bank
        assert second.completion_cycle > first.completion_cycle

    def test_different_banks_overlap(self):
        dram = make_dram(num_banks=8)
        first = dram.demand_access(0, now=0, is_write=False)
        second = dram.demand_access(1, now=0, is_write=False)
        # Bank latencies overlap; only the bus transfer serializes.
        assert second.completion_cycle == first.completion_cycle + 8

    def test_counts(self):
        dram = make_dram()
        dram.demand_access(0, 0, False)
        dram.demand_access(1, 0, False)
        assert dram.stats.demand_requests == 2
        assert dram.stats.memory_accesses == 2


class TestPrefetch:
    def test_prefetch_served_when_idle(self):
        dram = make_dram()
        result = dram.prefetch_access(5, now=0)
        assert result is not None
        assert result.filled == [(5, True)]
        assert dram.stats.prefetch_requests == 1

    def test_prefetch_declined_when_bus_backlogged(self):
        dram = make_dram(num_banks=1)
        for addr in range(20):
            dram.demand_access(addr, now=0, is_write=False)
        assert dram.prefetch_access(99, now=0) is None


class TestWriteback:
    def test_dirty_eviction_goes_through_the_bank_scheduler(self):
        dram = make_dram()
        dram.evict_line(3, dirty=True, now=0)
        assert dram.stats.write_accesses == 1
        assert dram.stats.memory_accesses == 1
        # The writeback is a full scheduled access: it occupies bank 3 and
        # then the pins (bus free at 108), so a demand to another bank
        # overlaps its array access but queues behind it on the bus.
        # (It used to bump only the bus, leaving its bank idle.)
        assert dram.demand_access(4, now=0, is_write=False).completion_cycle == 116
        # A demand to the *same* bank also waits for the array access.
        dram2 = make_dram(num_banks=8)
        dram2.evict_line(3, dirty=True, now=0)
        same_bank = dram2.demand_access(11, now=0, is_write=False)
        assert same_bank.completion_cycle == 100 + 100 + 8
        # A burst of writebacks backlogs the pins and delays demands further.
        dram3 = make_dram()
        for _ in range(20):
            dram3.evict_line(3, dirty=True, now=0)
        result = dram3.demand_access(4, now=0, is_write=False)
        assert result.completion_cycle > 116

    def test_clean_eviction_free(self):
        dram = make_dram()
        dram.evict_line(3, dirty=False, now=0)
        assert dram.stats.memory_accesses == 0
