"""Unit tests for the two-level inclusive cache hierarchy."""

from repro.cache.hierarchy import CacheHierarchy
from repro.config import CacheConfig


def make_hierarchy(callback=None, l1_kb=2, llc_kb=8):
    return CacheHierarchy(
        CacheConfig(l1_kb * 1024, 2, 128),
        CacheConfig(llc_kb * 1024, 4, 128, hit_latency=8),
        victim_callback=callback,
    )


class TestAccessPath:
    def test_miss_fill_then_l1_hit(self):
        h = make_hierarchy()
        assert h.access(5, False).level == "miss"
        h.fill_demand(5, False)
        assert h.access(5, False).level == "l1"

    def test_llc_hit_promotes_to_l1(self):
        h = make_hierarchy()
        h.fill_prefetch(7)  # LLC only
        assert h.access(7, False).level == "llc"
        assert h.access(7, False).level == "l1"

    def test_latencies(self):
        h = make_hierarchy()
        h.fill_demand(1, False)
        assert h.access(1, False).latency == 1
        h.fill_prefetch(2)
        assert h.access(2, False).latency == 9  # L1 lookup + LLC hit


class TestInclusion:
    def test_llc_eviction_back_invalidates_l1(self):
        victims = []
        h = make_hierarchy(callback=lambda a, d: victims.append((a, d)))
        # Fill one LLC set (4 ways) with conflicting lines; LLC has 16 sets.
        addrs = [0, 16, 32, 48, 64]
        for addr in addrs:
            h.fill_demand(addr, False)
        # One LLC victim must have been evicted and removed from L1 too.
        assert len(victims) == 1
        evicted = victims[0][0]
        assert not h.l1.contains(evicted)
        assert not h.llc.contains(evicted)

    def test_every_llc_line_reported_once_on_eviction(self):
        victims = []
        h = make_hierarchy(callback=lambda a, d: victims.append(a))
        for addr in range(0, 2048, 16):  # conflicting set-0 lines
            h.fill_demand(addr, False)
        inserted = len(range(0, 2048, 16))
        assert len(victims) == inserted - 4  # 4 ways survive


class TestDirtyPropagation:
    def test_write_marks_llc_dirty_through_l1(self):
        dirty_flags = []
        h = make_hierarchy(callback=lambda a, d: dirty_flags.append((a, d)))
        h.fill_demand(3, False)
        assert h.access(3, True).level == "l1"  # write hits the L1
        h.invalidate(3)
        assert dirty_flags == [(3, True)]

    def test_demand_write_fill_is_dirty(self):
        flags = []
        h = make_hierarchy(callback=lambda a, d: flags.append((a, d)))
        h.fill_demand(4, True)
        h.invalidate(4)
        assert flags == [(4, True)]

    def test_clean_line_reported_clean(self):
        flags = []
        h = make_hierarchy(callback=lambda a, d: flags.append((a, d)))
        h.fill_demand(4, False)
        h.invalidate(4)
        assert flags == [(4, False)]


class TestProbe:
    def test_contains_is_llc_probe(self):
        h = make_hierarchy()
        h.fill_prefetch(9)
        assert h.contains(9)
        assert not h.contains(10)
