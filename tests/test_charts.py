"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_positive_bars_grow_right_of_axis(self):
        text = bar_chart(["a"], [0.5], width=20)
        line = text.splitlines()[0]
        axis = line.index("|")
        assert "#" in line[axis + 1:]
        assert "#" not in line[:axis]

    def test_negative_bars_grow_left_of_axis(self):
        text = bar_chart(["a"], [-0.5], width=20)
        line = text.splitlines()[0]
        axis = line.index("|")
        assert "#" in line[:axis]
        assert "#" not in line[axis + 1:line.rindex("-")]

    def test_values_rendered(self):
        text = bar_chart(["x"], [0.123], unit="%")
        assert "+0.123%" in text

    def test_title(self):
        text = bar_chart(["x"], [1.0], title="My chart")
        assert text.splitlines()[0] == "My chart"

    def test_proportionality(self):
        text = bar_chart(["big", "small"], [1.0, 0.5], width=40)
        big, small = text.splitlines()
        assert big.count("#") >= 2 * small.count("#") - 1

    def test_zero_values(self):
        text = bar_chart(["z"], [0.0])
        assert "#" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestGroupedBarChart:
    def test_groups_labelled_once(self):
        text = grouped_bar_chart(
            ["w1", "w2"], {"stat": [0.1, 0.2], "dyn": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].lstrip().startswith("w1")
        assert "stat" in lines[0] and "dyn" in lines[1]

    def test_shared_scale(self):
        text = grouped_bar_chart(["w"], {"a": [1.0], "b": [0.25]}, width=40)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") >= 3 * b_line.count("#") - 1


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        glyphs = " .:-=+*#%@"
        line = sparkline([0, 1, 2, 3, 4, 5])
        indices = [glyphs.index(c) for c in line]
        assert indices == sorted(indices)

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert len(sparkline([5, 5, 5])) == 3
