"""Unit tests for the experiment harness and table rendering."""

import pytest

from repro.analysis.experiments import (
    ExperimentRow,
    experiment_config,
    run_schemes,
    summarize,
)
from repro.analysis.tables import format_series, format_table
from repro.sim.results import SimResult


def result(workload, scheme, cycles, accesses=100):
    return SimResult(
        workload=workload, scheme=scheme, cycles=cycles,
        trace_entries=10, memory_accesses=accesses,
    )


class TestExperimentRow:
    def make_row(self):
        return ExperimentRow(
            workload="w",
            baseline="oram",
            results={
                "oram": result("w", "oram", 1200, accesses=100),
                "dyn": result("w", "dyn", 1000, accesses=80),
            },
        )

    def test_speedup(self):
        assert self.make_row().speedup("dyn") == pytest.approx(0.2)
        assert self.make_row().speedup("oram") == 0.0

    def test_normalized_accesses(self):
        assert self.make_row().normalized_accesses("dyn") == pytest.approx(0.8)

    def test_normalized_time(self):
        assert self.make_row().normalized_time("dyn") == pytest.approx(1000 / 1200)


class TestSummarize:
    def rows(self):
        def row(name, dyn_cycles):
            return ExperimentRow(
                workload=name,
                baseline="oram",
                results={
                    "oram": result(name, "oram", 1000),
                    "dyn": result(name, "dyn", dyn_cycles),
                },
            )

        return [row("a", 800), row("b", 1000), row("c", 500)]

    def test_average_over_all(self):
        avg = summarize(self.rows(), "dyn")
        assert avg == pytest.approx((0.25 + 0.0 + 1.0) / 3)

    def test_average_over_subset(self):
        avg = summarize(self.rows(), "dyn", workloads=["a", "c"])
        assert avg == pytest.approx((0.25 + 1.0) / 2)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            summarize(self.rows(), "dyn", workloads=["nope"])


class TestExperimentConfig:
    def test_defaults(self):
        cfg = experiment_config()
        assert cfg.oram.bucket_size == 4
        assert cfg.oram.utilization == 0.65

    def test_overrides(self):
        cfg = experiment_config(bucket_size=3, stash_blocks=200)
        assert cfg.oram.bucket_size == 3
        assert cfg.oram.stash_blocks == 200


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_format_table_float_rendering(self):
        text = format_table(["v"], [[0.123456]])
        assert "+0.123" in text

    def test_format_series(self):
        text = format_series("Title", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert text.startswith("Title")
        assert "a" in text and "b" in text


class TestRunSchemesPolicyFactory:
    def test_fresh_policy_per_dynamic_run(self):
        from repro.core.thresholds import AdaptiveThresholdPolicy
        from repro.sim.trace import Trace
        from repro.config import CacheConfig, ORAMConfig, SystemConfig

        created = []

        def factory():
            policy = AdaptiveThresholdPolicy()
            created.append(policy)
            return policy

        trace = Trace("t", footprint_blocks=64)
        for i in range(200):
            trace.append(1, i % 64)
        config = SystemConfig(
            oram=ORAMConfig(levels=6, bucket_size=4, stash_blocks=40),
            l1=CacheConfig(capacity_bytes=4 * 1024, associativity=4),
            llc=CacheConfig(capacity_bytes=8 * 1024, associativity=8),
        )
        run_schemes(trace, ["dyn", "dyn_am_ab"], config=config, policy_factory=factory)
        assert len(created) == 2
