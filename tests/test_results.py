"""Unit tests for SimResult and its derived metrics."""

import pytest

from repro.sim.results import SimResult


def make_result(cycles=1000, **kwargs):
    defaults = dict(workload="w", scheme="s", cycles=cycles, trace_entries=100)
    defaults.update(kwargs)
    return SimResult(**defaults)


class TestDerivedMetrics:
    def test_speedup_definition(self):
        base = make_result(cycles=1200)
        fast = make_result(cycles=1000)
        # "20% performance gain" means base/this - 1 = 0.2.
        assert fast.speedup_over(base) == pytest.approx(0.2)
        assert base.speedup_over(fast) == pytest.approx(-1 / 6)
        assert base.speedup_over(base) == 0.0

    def test_total_memory_accesses_energy_proxy(self):
        r = make_result(memory_accesses=90, dummy_accesses=10)
        assert r.total_memory_accesses == 100

    def test_normalized_memory_accesses(self):
        base = make_result(memory_accesses=100)
        r = make_result(memory_accesses=80, dummy_accesses=4)
        assert r.normalized_memory_accesses(base) == pytest.approx(0.84)

    def test_normalized_completion_time(self):
        base = make_result(cycles=1000)
        r = make_result(cycles=2500)
        assert r.normalized_completion_time(base) == pytest.approx(2.5)

    def test_llc_miss_rate(self):
        r = make_result(llc_hits=30, llc_misses=70)
        assert r.llc_miss_rate == pytest.approx(0.7)
        assert make_result().llc_miss_rate == 0.0

    def test_prefetch_miss_rate(self):
        r = make_result(prefetch_hits=3, prefetch_misses=1)
        assert r.prefetch_miss_rate == pytest.approx(0.25)
        assert make_result().prefetch_miss_rate == 0.0

    def test_background_eviction_rate(self):
        r = make_result(demand_requests=90, dummy_accesses=10)
        assert r.background_eviction_rate == pytest.approx(0.1)

    def test_degenerate_guards(self):
        zero = make_result(cycles=0)
        with pytest.raises(ValueError):
            make_result().speedup_over(zero) if False else zero.speedup_over(make_result())
        with pytest.raises(ValueError):
            make_result().normalized_memory_accesses(make_result(memory_accesses=0))


class TestDelta:
    def test_delta_subtracts_additive_fields(self):
        start = make_result(
            cycles=100, llc_hits=10, llc_misses=5, memory_accesses=7, merges=1
        )
        final = make_result(
            cycles=300, llc_hits=25, llc_misses=11, memory_accesses=20, merges=4
        )
        final.stash_max_occupancy = 42
        delta = SimResult.delta(final, start)
        assert delta.cycles == 200
        assert delta.llc_hits == 15
        assert delta.llc_misses == 6
        assert delta.memory_accesses == 13
        assert delta.merges == 3
        # Watermarks keep the final value.
        assert delta.stash_max_occupancy == 42

    def test_summary_mentions_key_counters(self):
        text = make_result(llc_misses=9, dummy_accesses=2).summary()
        assert "9" in text and "w/s" in text
