"""Tests for the channel-interleaved sharded ORAM bank.

Covers the :class:`~repro.controller.sharded.ShardedORAMBank` acceptance
surface: builder guards, the 1-shard bypass (bit-identical to the plain
controller), address interleaving, deterministic batching, aggregate
statistics views, the merged ``fsck`` audit, fault injection through a
bank, and the divide-by-zero regression on aggregate posmap rates.
"""

import pytest

from repro.controller.sharded import ShardedORAMBank
from repro.faults import FaultConfig, FaultInjector, run_fsck_bank
from repro.memory.oram_backend import ORAMBackend
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace

FOOTPRINT = 512


def build_sharded(num_shards=4, scheme="dyn", **kwargs):
    return SecureSystem.build(
        scheme, footprint_blocks=FOOTPRINT, num_shards=num_shards, **kwargs
    )


def short_trace(accesses=3000, locality=0.8):
    return locality_mix_trace(
        locality, footprint_blocks=FOOTPRINT, accesses=accesses
    )


class TestBuildGuards:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            build_sharded(num_shards=0)

    def test_dram_shards_rejected(self):
        with pytest.raises(ValueError, match="DRAM"):
            build_sharded(scheme="dram", num_shards=2)

    def test_periodic_shards_rejected(self):
        with pytest.raises(ValueError):
            build_sharded(scheme="dyn_intvl", num_shards=2)

    def test_explicit_policy_shards_rejected(self):
        from repro.core.thresholds import AdaptiveThresholdPolicy

        with pytest.raises(ValueError):
            build_sharded(num_shards=2, policy=AdaptiveThresholdPolicy())

    def test_one_shard_builds_plain_controller(self):
        system = build_sharded(num_shards=1)
        assert isinstance(system.backend, ORAMBackend)
        assert not isinstance(system.backend, ShardedORAMBank)

    def test_multi_shard_builds_bank(self):
        system = build_sharded(num_shards=4)
        assert isinstance(system.backend, ShardedORAMBank)
        assert system.backend.num_shards == 4


class TestOneShardEquivalence:
    def test_num_shards_1_bit_identical_to_default_build(self):
        trace = short_trace()
        baseline = SecureSystem.build("dyn", footprint_blocks=FOOTPRINT).run(trace)
        explicit = build_sharded(num_shards=1).run(trace)
        assert explicit.cycles == baseline.cycles
        assert explicit.total_memory_accesses == baseline.total_memory_accesses
        assert explicit.demand_requests == baseline.demand_requests
        assert explicit.dummy_accesses == baseline.dummy_accesses


class TestShardedRuns:
    def test_four_shard_smoke(self):
        trace = short_trace()
        result = build_sharded(num_shards=4).run(trace)
        assert result.extra["num_shards"] == 4
        assert result.cycles > 0
        assert result.demand_requests > 0

    def test_sharded_run_deterministic(self):
        trace = short_trace()

        def one_run():
            result = build_sharded(num_shards=4).run(trace)
            return result.cycles, result.total_memory_accesses, dict(result.extra)

        assert one_run() == one_run()

    def test_work_spreads_over_every_shard(self):
        trace = short_trace()
        system = build_sharded(num_shards=4)
        system.run(trace)
        for shard in system.backend.shards:
            assert shard.stats.demand_requests > 0

    def test_bank_stays_consistent_after_run(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace())
        report = run_fsck_bank(system.backend)
        assert report.ok, report.summary()
        assert report.expected_blocks == sum(
            shard.oram.position_map.num_blocks for shard in system.backend.shards
        )


class TestAddressInterleaving:
    def test_demand_fills_come_back_global(self):
        bank = build_sharded(num_shards=4).backend
        for addr in [0, 1, 2, 3, 17, 42, 255]:
            result = bank.demand_access(addr, now=0, is_write=False)
            filled = [a for a, _ in result.filled]
            assert addr in filled
            # Every fill from this channel carries the channel's congruence
            # class: interleaving is addr % num_shards.
            assert all(a % bank.num_shards == addr % bank.num_shards for a in filled)

    def test_global_address_range(self):
        bank = build_sharded(num_shards=4).backend
        per_shard = min(
            shard.oram.position_map.num_blocks for shard in bank.shards
        )
        assert bank.num_blocks == 4 * per_shard


class TestBatchedAccess:
    REQUESTS = [(a, 0, False) for a in [5, 8, 1, 13, 2, 6, 10, 3]]

    def test_results_in_input_order(self):
        bank = build_sharded(num_shards=4).backend
        results = bank.access_batch(self.REQUESTS)
        assert len(results) == len(self.REQUESTS)
        for (addr, _, _), result in zip(self.REQUESTS, results):
            assert addr in [a for a, _ in result.filled]

    def test_batch_deterministic_across_fresh_banks(self):
        def one_batch():
            bank = build_sharded(num_shards=4).backend
            bank.access_batch(self.REQUESTS)
            stats = bank.stats
            return bank.busy_until, stats.memory_accesses, stats.demand_requests

        assert one_batch() == one_batch()


class TestAggregateViews:
    def test_stats_sum_over_shards(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace())
        bank = system.backend
        assert bank.stats.demand_requests == sum(
            shard.stats.demand_requests for shard in bank.shards
        )
        assert bank.stats.memory_accesses == sum(
            shard.stats.memory_accesses for shard in bank.shards
        )

    def test_busy_until_is_worst_channel(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace())
        bank = system.backend
        assert bank.busy_until == max(shard.busy_until for shard in bank.shards)

    def test_aggregate_views_not_assignable(self):
        bank = build_sharded(num_shards=2).backend
        with pytest.raises(AttributeError):
            bank.stats = None
        with pytest.raises(AttributeError):
            bank.busy_until = 0

    def test_phase_breakdown_sums_pipelines(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace())
        bank = system.backend
        breakdown = bank.phase_breakdown()
        for name in ("posmap", "path_read", "writeback"):
            assert breakdown[name] == sum(
                shard.pipeline.breakdown()[name] for shard in bank.shards
            )


class TestPosmapRateRegression:
    """Divide-by-zero regressions: rates on untouched hierarchies are 0.0."""

    def test_fresh_hierarchy_rates_are_zero(self):
        backend = SecureSystem.build("dyn", footprint_blocks=FOOTPRINT).backend
        assert backend.posmap_hierarchy.hit_rate() == 0.0
        assert backend.posmap_hierarchy.average_extra_accesses() == 0.0

    def test_fresh_bank_aggregate_rate_is_zero(self):
        bank = build_sharded(num_shards=4).backend
        assert bank.aggregate_posmap_hit_rate() == 0.0

    def test_used_bank_rate_in_unit_interval(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace())
        rate = system.backend.aggregate_posmap_hit_rate()
        assert 0.0 <= rate <= 1.0


class TestBankFsck:
    def test_tampered_shard_errors_are_prefixed(self):
        system = build_sharded(num_shards=4)
        system.run(short_trace(accesses=1500))
        bank = system.backend
        victim = bank.shards[2].oram
        # Drop one real block from the victim's tree: the census and
        # duplicate checks must flag it, attributed to shard 2 only.
        for index in range(victim.tree.num_buckets):
            bucket = victim.tree.bucket(index)
            if bucket:
                del bucket[0]
                break
        report = run_fsck_bank(bank)
        assert not report.ok
        assert all(error.startswith("shard 2:") for error in report.errors)


class TestShardedFaultInjection:
    def run_faulty(self):
        injector = FaultInjector(
            FaultConfig(seed=7, transient_rate=0.05, delay_rate=0.05, delay_cycles=90)
        )
        system = build_sharded(num_shards=4, fault_injector=injector)
        result = system.run(short_trace(accesses=4000))
        return system, result

    def test_faults_counted_through_the_bank(self):
        system, faulty = self.run_faulty()
        clean = build_sharded(num_shards=4).run(short_trace(accesses=4000))
        assert faulty.extra["transient_faults"] > 0
        assert faulty.extra["fault_retries"] > 0
        assert faulty.extra["fault_delay_cycles"] > 0
        assert faulty.cycles > clean.cycles

    def test_bank_survives_faults_consistent(self):
        system, _ = self.run_faulty()
        report = run_fsck_bank(system.backend)
        assert report.ok, report.summary()

    def test_faulty_sharded_run_deterministic(self):
        def one_run():
            _, result = self.run_faulty()
            return result.cycles, dict(result.extra)

        assert one_run() == one_run()
