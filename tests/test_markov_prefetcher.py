"""Unit tests for the Markov (correlation) prefetcher."""

from repro.config import PrefetchConfig
from repro.prefetch.markov import MarkovPrefetcher


def make(depth=2, width=4, entries=16):
    return MarkovPrefetcher(
        PrefetchConfig(enabled=True, num_streams=width, depth=depth),
        table_entries=entries,
    )


class TestMarkov:
    def test_learns_successor(self):
        pf = make()
        assert pf.on_demand_miss(10) == []   # nothing known yet
        assert pf.on_demand_miss(99) == []   # records 10 -> 99
        assert pf.on_demand_miss(10) == [99]  # prediction from history
        assert 99 in pf._table[10]

    def test_predicts_learned_successor(self):
        pf = make()
        for _ in range(3):
            pf.on_demand_miss(10)
            pf.on_demand_miss(99)
        picks = pf.on_demand_miss(10)
        assert picks == [99]

    def test_follows_pointer_chain(self):
        pf = make(depth=1)
        chain = [5, 17, 3, 42]
        for _ in range(2):
            for addr in chain:
                pf.on_demand_miss(addr)
        # Mid-chain predictions follow the learned next hop.
        assert pf.on_demand_miss(5) == [17]
        assert pf.on_demand_miss(17) == [3]

    def test_most_recent_successor_wins(self):
        pf = make(depth=1)
        pf.on_demand_miss(10)
        pf.on_demand_miss(20)
        pf.on_demand_miss(10)
        pf.on_demand_miss(30)  # 10 -> 30 most recently
        assert pf.on_demand_miss(10) == [30]

    def test_successor_width_bounded(self):
        pf = make(width=2)
        for successor in (1, 2, 3, 4):
            pf.on_demand_miss(10)
            pf.on_demand_miss(successor)
        assert len(pf._table[10]) <= 2

    def test_table_capacity_lru(self):
        pf = make(entries=2)
        for head in (1, 2, 3):
            pf.on_demand_miss(head)
            pf.on_demand_miss(head + 100)
        assert len(pf._table) <= 2
        assert 1 not in pf._table  # evicted as the oldest

    def test_repeat_miss_not_self_successor(self):
        pf = make()
        pf.on_demand_miss(10)
        pf.on_demand_miss(10)
        assert 10 not in pf._table.get(10, [])

    def test_prediction_refreshes_lru_recency(self):
        # Regression: the prediction-side table read must refresh the
        # entry's LRU recency (only the trainer side used to), or hot
        # predicted-from entries age out while stale trained-into entries
        # survive.  The repeated self-miss keeps the trainer away from
        # entry 3, so only the prediction read can refresh it.
        pf = make(depth=1, entries=2)
        for addr in (2, 0, 3, 3, 3, 5):
            pf.on_demand_miss(addr)
        assert pf.on_demand_miss(3) == [5]
        assert list(pf._table) == [5, 3]  # 3 is MRU, 5 is the LRU victim

    def test_in_flight_prediction_suppressed_and_not_counted(self):
        pf = make(depth=1)
        pf.on_demand_miss(10)
        pf.on_demand_miss(99)  # trains 10 -> 99
        pf.on_demand_miss(10)  # wait, trains 99 -> 10 and predicts [99]
        assert pf.issued == 1
        # 99 never came back as a demand miss: the prefetch is still in
        # flight, so re-predicting it is suppressed and not counted.
        assert pf.on_demand_miss(10) == []
        assert pf.issued == 1

    def test_in_flight_retired_when_address_misses(self):
        pf = make(depth=1)
        pf.on_demand_miss(10)
        pf.on_demand_miss(99)
        assert pf.on_demand_miss(10) == [99]
        # The line arrived (or was lost): retired, and this miss's own
        # prediction (99 -> 10) counts as a fresh issue.
        assert pf.on_demand_miss(99) == [10]
        assert pf.on_demand_miss(10) == [99]
        assert pf.issued == 3

    def test_no_duplicate_in_flight_predictions(self):
        pf = make(depth=2, width=4)
        in_flight = set()
        chain = [5, 17, 3, 42, 5, 17, 3, 42, 5, 5, 17, 17, 3, 42]
        for addr in chain:
            in_flight.discard(addr)
            for pick in pf.on_demand_miss(addr):
                assert pick not in in_flight
                in_flight.add(pick)

    def test_system_label_builds(self):
        from repro.analysis.experiments import experiment_config
        from repro.sim.system import SecureSystem

        system = SecureSystem.build("oram_mpre", 256, experiment_config())
        assert system.prefetcher is not None
