"""Unit tests for the super block machinery and the static scheme (section 3)."""

import pytest

from repro.config import ORAMConfig
from repro.oram.path_oram import PathORAM
from repro.oram.super_block import (
    BaselineScheme,
    PrefetchTracker,
    SchemeStats,
    StaticSuperBlockScheme,
)
from repro.utils.rng import DeterministicRng


def make_oram(levels=6, populate=False, seed=2, utilization=0.5):
    config = ORAMConfig(levels=levels, bucket_size=3, stash_blocks=50, utilization=utilization)
    return PathORAM(config, DeterministicRng(seed), populate=populate)


def attach(scheme, oram, resident=None):
    resident = resident if resident is not None else set()
    scheme.attach(oram, lambda addr: addr in resident)
    return resident


class TestBaselineScheme:
    def test_members_is_single_block(self):
        oram = make_oram()
        scheme = BaselineScheme()
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        assert scheme.members_for(17) == [17]

    def test_process_fetch_no_prefetch(self):
        oram = make_oram()
        scheme = BaselineScheme()
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        blocks = oram.access([17])
        outcome = scheme.process_fetch(17, [17], blocks)
        assert outcome.to_llc == [(17, False)]
        assert scheme.stats.prefetched_blocks == 0


class TestStaticScheme:
    def test_initialize_merges_all_pairs(self):
        oram = make_oram()
        scheme = StaticSuperBlockScheme(sbsize=2)
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        posmap = oram.position_map
        for base in range(0, posmap.num_blocks - 1, 2):
            assert posmap.leaf(base) == posmap.leaf(base + 1)
        oram.check_invariants()

    def test_members_for_returns_group(self):
        oram = make_oram()
        scheme = StaticSuperBlockScheme(sbsize=4)
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        assert scheme.members_for(5) == [4, 5, 6, 7]

    def test_members_clipped_at_address_space(self):
        config = ORAMConfig(levels=4, bucket_size=3, stash_blocks=50)
        oram = PathORAM(config, DeterministicRng(1), populate=False)
        scheme = StaticSuperBlockScheme(sbsize=4)
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        n = oram.position_map.num_blocks
        last_base = (n - 1) // 4 * 4
        assert scheme.members_for(n - 1) == list(range(last_base, n))

    def test_rejects_bad_sbsize(self):
        with pytest.raises(ValueError):
            StaticSuperBlockScheme(sbsize=3)
        with pytest.raises(ValueError):
            StaticSuperBlockScheme(sbsize=0)

    def test_fetch_marks_non_demand_prefetched(self):
        oram = make_oram()
        scheme = StaticSuperBlockScheme(sbsize=2)
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        members = scheme.members_for(10)
        blocks = oram.access(members)
        outcome = scheme.process_fetch(10, members, blocks)
        assert (10, False) in outcome.to_llc
        assert (11, True) in outcome.to_llc
        assert scheme.stats.prefetched_blocks == 1
        assert oram.position_map.prefetch_bit(11) == 1

    def test_super_block_survives_accesses(self):
        oram = make_oram()
        scheme = StaticSuperBlockScheme(sbsize=2)
        attach(scheme, oram)
        scheme.initialize()
        oram.populate()
        for _ in range(5):
            members = scheme.members_for(20)
            oram.access(members)
        posmap = oram.position_map
        assert posmap.leaf(20) == posmap.leaf(21)
        oram.check_invariants()


class TestPrefetchTracker:
    def _tracker(self):
        oram = make_oram(populate=True)
        stats = SchemeStats()
        return PrefetchTracker(oram, stats), oram, stats

    def test_hit_accounting(self):
        tracker, oram, stats = self._tracker()
        tracker.mark_prefetched(4)
        tracker.on_use(4)
        assert stats.prefetch_hits == 1
        # Second use is not a second hit.
        tracker.on_use(4)
        assert stats.prefetch_hits == 1

    def test_miss_accounting_on_unused_eviction(self):
        tracker, oram, stats = self._tracker()
        tracker.mark_prefetched(4)
        tracker.on_llc_evict(4)
        assert stats.prefetch_misses == 1

    def test_used_block_eviction_is_not_a_miss(self):
        tracker, oram, stats = self._tracker()
        tracker.mark_prefetched(4)
        tracker.on_use(4)
        tracker.on_llc_evict(4)
        assert stats.prefetch_misses == 0

    def test_non_prefetched_eviction_ignored(self):
        tracker, oram, stats = self._tracker()
        tracker.on_llc_evict(4)
        assert stats.prefetch_misses == 0

    def test_consume_bits_clears_prefetch(self):
        tracker, oram, stats = self._tracker()
        tracker.mark_prefetched(4)
        prefetch, hit = tracker.consume_bits(4)
        assert prefetch == 1 and hit == 0
        assert oram.position_map.prefetch_bit(4) == 0

    def test_consume_bits_reports_hit(self):
        tracker, oram, stats = self._tracker()
        tracker.mark_prefetched(4)
        tracker.on_use(4)
        prefetch, hit = tracker.consume_bits(4)
        assert prefetch == 1 and hit == 1

    def test_miss_rate_metric(self):
        stats = SchemeStats(prefetch_hits=3, prefetch_misses=1)
        assert stats.prefetch_miss_rate == pytest.approx(0.25)
        assert stats.prefetch_hit_rate == pytest.approx(0.75)
        assert SchemeStats().prefetch_miss_rate == 0.0
