"""Unit tests for the position map and its PrORAM bit fields."""

import pytest

from repro.oram.position_map import PositionMap
from repro.utils.rng import DeterministicRng


def make_posmap(num_blocks=64, num_leaves=32, entries_per_block=8):
    return PositionMap(num_blocks, num_leaves, entries_per_block, DeterministicRng(5))


class TestLeafMapping:
    def test_initial_leaves_in_range(self):
        pm = make_posmap()
        for addr in range(64):
            assert 0 <= pm.leaf(addr) < 32

    def test_set_and_get(self):
        pm = make_posmap()
        pm.set_leaf(3, 17)
        assert pm.leaf(3) == 17

    def test_remap_assigns_common_leaf(self):
        pm = make_posmap()
        leaf = pm.remap([4, 5, 6, 7])
        assert all(pm.leaf(a) == leaf for a in range(4, 8))

    def test_remap_explicit_leaf(self):
        pm = make_posmap()
        assert pm.remap([0, 1], leaf=9) == 9
        assert pm.leaf(0) == 9 and pm.leaf(1) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            PositionMap(0, 32, 8, DeterministicRng(1))
        with pytest.raises(ValueError):
            PositionMap(8, 32, 7, DeterministicRng(1))


class TestBitFields:
    def test_bits_default_zero(self):
        pm = make_posmap()
        assert pm.merge_bit(0) == 0
        assert pm.break_bit(0) == 0
        assert pm.prefetch_bit(0) == 0

    def test_set_bits(self):
        pm = make_posmap()
        pm.set_merge_bit(2, 1)
        pm.set_break_bit(2, 1)
        pm.set_prefetch_bit(2, 1)
        assert pm.entry(2).merge_bit == 1
        assert pm.entry(2).break_bit == 1
        assert pm.entry(2).prefetch_bit == 1
        pm.set_merge_bit(2, 0)
        assert pm.merge_bit(2) == 0

    def test_group_bits_roundtrip(self):
        pm = make_posmap()
        pm.set_merge_bits(8, [1, 0, 1, 1])
        assert pm.merge_bits(8, 4) == [1, 0, 1, 1]
        pm.set_break_bits(8, [0, 1])
        assert pm.break_bits(8, 2) == [0, 1]


class TestPosMapBlocks:
    def test_block_id(self):
        pm = make_posmap(entries_per_block=8)
        assert pm.block_id(0) == 0
        assert pm.block_id(7) == 0
        assert pm.block_id(8) == 1

    def test_super_block_entries_share_posmap_block(self):
        # Section 4.1: a super block (and its neighbor) always lives in one
        # PosMap block, so counters come for free with the lookup.
        pm = make_posmap(entries_per_block=8)
        for addr in range(0, 64, 8):
            group = [pm.block_id(a) for a in range(addr, addr + 8)]
            assert len(set(group)) == 1


class TestSuperBlockInference:
    def test_no_super_block_by_default(self):
        pm = make_posmap(num_leaves=2**20)
        for addr in range(16):
            assert pm.super_block_of(addr, 4) == (addr, 1)

    def test_detects_pair(self):
        pm = make_posmap()
        pm.remap([4, 5], leaf=3)
        # Ensure neighbours differ so the size-4 check fails.
        pm.set_leaf(6, 1)
        pm.set_leaf(7, 2)
        assert pm.super_block_of(4, 4) == (4, 2)
        assert pm.super_block_of(5, 4) == (4, 2)

    def test_detects_largest_group(self):
        pm = make_posmap()
        pm.remap([8, 9, 10, 11], leaf=7)
        assert pm.super_block_of(9, 4) == (8, 4)
        # With max size 2 only the pair is reported.
        assert pm.super_block_of(9, 2) == (8, 2)

    def test_unaligned_equal_leaves_do_not_merge(self):
        # Blocks 3 and 4 share a leaf but are not an aligned pair.
        pm = make_posmap(num_leaves=2**20)
        pm.set_leaf(3, 123)
        pm.set_leaf(4, 123)
        assert pm.super_block_of(3, 2) == (3, 1)
        assert pm.super_block_of(4, 2) == (4, 1)

    def test_group_is_super_block(self):
        pm = make_posmap()
        pm.remap([0, 1], leaf=5)
        assert pm.group_is_super_block(0, 2)
        pm.set_leaf(1, 6)
        assert not pm.group_is_super_block(0, 2)

    def test_group_at_address_space_edge(self):
        pm = make_posmap(num_blocks=6)
        # Group [4,8) extends past num_blocks=6: never a super block.
        assert not pm.group_is_super_block(4, 4)
        assert pm.super_block_of(5, 4) in [(4, 2), (5, 1)]
