"""Tests for the pluggable memory-interconnect layer.

Two contracts anchor the refactor:

* the default :class:`FlatInterconnect` reproduces the pre-refactor
  scalar timing bit-for-bit (the golden determinism test pins the full
  system; here we pin the layer itself), and
* a *degenerate* :class:`ChannelInterconnect` -- one channel, more banks
  than subtrees, closed page policy -- reproduces the flat model's cycle
  counts exactly, access by access (property-tested over random
  geometries and leaf schedules).

Beyond equivalence: the layout must tile every bucket, multi-channel
streaming must actually be faster than the flat scalar, the periodic
grid must stay leak-free under the channel model, and the scheduler
state must survive a checkpoint round-trip.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import experiment_config
from repro.config import DRAMConfig, ORAMConfig, TimingProtectionConfig
from repro.memory.interconnect import (
    ChannelInterconnect,
    FlatInterconnect,
    build_interconnect,
)
from repro.memory.periodic import PeriodicORAMBackend
from repro.memory.timing import ORAMTimingModel, dram_access_cycles, transfer_cycles
from repro.observability.collect import collect_system
from repro.observability.recorder import InMemoryRecorder
from repro.oram.super_block import BaselineScheme
from repro.oram.tree import PhysicalLayout
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace

#: Degenerate channel config: provably equivalent to the flat model.
DEGENERATE = dict(model="channel", num_channels=1, num_banks=1 << 30, page_policy="closed")

#: A small nominal tree (1 MB capacity -> ~12 levels) keeps the
#: property-test plans cheap without changing any of the arithmetic.
SMALL_CAPACITY = 1 << 20


def degenerate_dram(**overrides):
    return DRAMConfig(**{**DEGENERATE, **overrides})


class TestSharedLatencyHelper:
    def test_transfer_cycles_matches_dram_backend(self):
        dram = DRAMConfig()
        assert transfer_cycles(dram, 128) == 8
        assert dram_access_cycles(dram, 128) == 108

    def test_transfer_cycles_floor(self):
        assert transfer_cycles(DRAMConfig(bandwidth_gbps=1000.0), 1) == 1

    def test_timing_model_uses_helper(self):
        oram = ORAMConfig(levels=9, bucket_size=4)
        dram = DRAMConfig()
        timing = ORAMTimingModel.from_config(oram, dram)
        bytes_per_path = (oram.nominal_levels + 1) * 4 * 128 * 2
        assert timing.path_cycles == dram.latency_cycles + transfer_cycles(
            dram, bytes_per_path
        )


class TestPhysicalLayout:
    def test_every_bucket_has_an_address(self):
        layout = PhysicalLayout(levels=6, num_channels=4, num_banks=8, subtree_levels=2)
        for leaf in range(1 << 6):
            path = layout.path_addresses(leaf)
            assert len(path) == 7
            for address in path:
                assert 0 <= address.channel < 4
                assert 0 <= address.bank < 8
                assert address.row >= 0

    def test_single_channel_layout_uses_channel_zero(self):
        layout = PhysicalLayout(levels=6, num_channels=1, num_banks=8)
        for leaf in range(1 << 6):
            assert all(a.channel == 0 for a in layout.path_addresses(leaf))

    def test_buckets_in_one_subtree_share_an_address(self):
        layout = PhysicalLayout(levels=7, num_channels=4, num_banks=8, subtree_levels=2)
        for leaf in (0, 17, 127):
            path = layout.path_addresses(leaf)
            for level in range(7 + 1):
                partner = level - level % 2  # the subtree's root level
                assert path[level] == path[partner]

    def test_distinct_subtrees_get_distinct_slots(self):
        layout = PhysicalLayout(levels=6, num_channels=2, num_banks=1 << 20)
        seen = {}
        for subtree in range(layout.num_subtrees):
            address = layout.subtree_address(subtree)
            key = (address.channel, address.bank, address.row)
            assert key not in seen, f"subtrees {seen[key]} and {subtree} collide"
            seen[key] = subtree

    def test_path_spreads_across_channels(self):
        # The tier rotation must spread one path's tiers over the
        # channels even though tier subtree ids repeat across leaves.
        layout = PhysicalLayout(levels=12, num_channels=4, num_banks=8)
        for leaf in (0, 1, 1000, 4095):
            channels = {a.channel for a in layout.path_addresses(leaf)}
            assert len(channels) == 4

    def test_subtree_address_agrees_with_address_of(self):
        layout = PhysicalLayout(levels=8, num_channels=4, num_banks=8, subtree_levels=3)
        for leaf in (0, 37, 255):
            for level in range(8 + 1):
                subtree = layout.subtree_id(level, leaf)
                assert layout.subtree_address(subtree) == layout.address_of(level, leaf)


class TestFlatInterconnect:
    def test_matches_timing_model(self):
        oram = ORAMConfig(levels=9, bucket_size=4)
        dram = DRAMConfig()
        flat = build_interconnect(oram, dram)
        timing = ORAMTimingModel.from_config(oram, dram)
        assert isinstance(flat, FlatInterconnect)
        assert flat.path_cycles == timing.path_cycles
        assert flat.bytes_per_path == timing.bytes_per_path
        assert flat.path_completion(5, 1000) == 1000 + timing.path_cycles

    def test_default_system_builds_flat(self):
        trace = locality_mix_trace(0.8, accesses=50)
        system = SecureSystem.build("dyn", trace.footprint_blocks, experiment_config())
        assert isinstance(system.backend.interconnect, FlatInterconnect)
        assert system.backend.interconnect.path_cycles == system.backend.timing.path_cycles


class TestDegenerateEquivalence:
    """1 channel + unbounded banks + closed page == the flat model, exactly."""

    @given(
        levels=st.integers(min_value=4, max_value=9),
        bucket_size=st.integers(min_value=1, max_value=5),
        block_shift=st.integers(min_value=6, max_value=9),
        bandwidth=st.sampled_from([4.0, 12.8, 16.0, 25.6]),
        latency=st.integers(min_value=1, max_value=300),
        subtree_levels=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_cycle_counts_identical(
        self, levels, bucket_size, block_shift, bandwidth, latency, subtree_levels, seed
    ):
        oram = ORAMConfig(
            capacity_bytes=SMALL_CAPACITY,
            levels=levels,
            bucket_size=bucket_size,
            block_bytes=1 << block_shift,
        )
        base = dict(bandwidth_gbps=bandwidth, latency_cycles=latency)
        flat = build_interconnect(oram, DRAMConfig(**base))
        channel = build_interconnect(
            oram, degenerate_dram(subtree_levels=subtree_levels, **base)
        )
        assert channel.path_cycles == flat.path_cycles
        rng = random.Random(seed)
        now_flat = now_channel = 0
        for _ in range(50):
            leaf = rng.randrange(1 << levels)
            done_flat = flat.path_completion(leaf, now_flat)
            done_channel = channel.path_completion(leaf, now_channel)
            assert done_flat - now_flat == done_channel - now_channel
            # Serialized issue (the controller's contract) plus idle gaps.
            gap = rng.randrange(4) * rng.randrange(200)
            now_flat = done_flat + gap
            now_channel = done_channel + gap

    def test_full_system_result_identical(self):
        trace = locality_mix_trace(0.8, accesses=3000)
        config = experiment_config()
        flat_system = SecureSystem.build("dyn", trace.footprint_blocks, config)
        flat_result = flat_system.run(trace)
        channel_config = dataclasses.replace(config, dram=degenerate_dram())
        channel_system = SecureSystem.build("dyn", trace.footprint_blocks, channel_config)
        assert isinstance(channel_system.backend.interconnect, ChannelInterconnect)
        channel_result = channel_system.run(trace)
        flat_dict = dataclasses.asdict(flat_result)
        channel_dict = dataclasses.asdict(channel_result)
        flat_dict.pop("extra")
        channel_dict.pop("extra")
        assert flat_dict == channel_dict


class TestChannelSpeedup:
    def test_nominal_path_cost_scales_with_channels(self):
        oram = ORAMConfig(levels=9, bucket_size=4)
        flat = build_interconnect(oram, DRAMConfig())
        four = build_interconnect(oram, DRAMConfig(model="channel", num_channels=4))
        assert four.path_cycles < flat.path_cycles
        # latency + transfer/4 vs latency + transfer
        assert four.path_cycles - 100 <= (flat.path_cycles - 100) // 4 + 1

    def test_streamed_paths_beat_flat_by_the_gate(self):
        oram = ORAMConfig(levels=9, bucket_size=4)
        flat = build_interconnect(oram, DRAMConfig())
        four = build_interconnect(oram, DRAMConfig(model="channel", num_channels=4))
        rng = random.Random(3)
        now = 0
        for _ in range(500):
            now = four.path_completion(rng.randrange(1 << 9), now)
        mean = now / 500
        assert flat.path_cycles / mean >= 1.3

    def test_full_system_faster_with_channels(self):
        trace = locality_mix_trace(0.8, accesses=3000)
        config = experiment_config()
        flat_result = SecureSystem.build("dyn", trace.footprint_blocks, config).run(trace)
        fast = dataclasses.replace(
            config, dram=dataclasses.replace(config.dram, model="channel", num_channels=4)
        )
        fast_result = SecureSystem.build("dyn", trace.footprint_blocks, fast).run(trace)
        assert fast_result.cycles < flat_result.cycles
        assert fast_result.extra["interconnect_channels"] == 4
        assert fast_result.extra["interconnect_streamed_paths"] > 0


class TestPeriodicGridWithChannels:
    def test_issue_times_stay_on_the_grid(self):
        backend = PeriodicORAMBackend(
            ORAMConfig(levels=7, bucket_size=4, stash_blocks=50, utilization=0.5),
            DRAMConfig(model="channel", num_channels=4),
            BaselineScheme(),
            DeterministicRng(4),
            TimingProtectionConfig(enabled=True, interval_cycles=100),
        )
        recorder = InMemoryRecorder()
        backend.set_recorder(recorder)
        period = backend.interconnect.path_cycles + backend.interval
        rng = DeterministicRng(9)
        now = 0
        for i in range(60):
            choice = rng.randbelow(3)
            if choice == 0:
                result = backend.demand_access(1 + (i % 32), now=now, is_write=bool(i % 2))
                now = result.completion_cycle
            elif choice == 1:
                backend.evict_line(1 + (i % 32), dirty=True, now=now)
                now = backend.busy_until
            else:
                now += 1 + rng.randbelow(3 * period)
        backend.finalize(now + 5 * period)
        starts = [r["start"] for r in recorder.records if "event" not in r]
        assert starts
        assert all(start % period == 0 for start in starts)
        dummy_slots = [
            r["slot"] for r in recorder.records if r.get("event") == "periodic_dummy"
        ]
        assert dummy_slots
        assert all(slot % period == 0 for slot in dummy_slots)


class TestCheckpointRoundTrip:
    def test_channel_state_survives(self):
        oram = ORAMConfig(capacity_bytes=SMALL_CAPACITY, levels=6, bucket_size=4)
        dram = DRAMConfig(model="channel", num_channels=4)
        source = build_interconnect(oram, dram)
        rng = random.Random(11)
        now = 0
        for _ in range(40):
            now = source.path_completion(rng.randrange(1 << 6), now)
        source.note_untracked(7)
        target = build_interconnect(oram, dram)
        target.load_state_dict(source.state_dict())
        assert target.state_dict() == source.state_dict()
        # The restored scheduler continues with identical timing.
        leaf = 13
        assert target.path_completion(leaf, now) == source.path_completion(leaf, now)

    def test_channel_count_mismatch_rejected(self):
        oram = ORAMConfig(capacity_bytes=SMALL_CAPACITY, levels=6, bucket_size=4)
        source = build_interconnect(oram, DRAMConfig(model="channel", num_channels=4))
        target = build_interconnect(oram, DRAMConfig(model="channel", num_channels=2))
        try:
            target.load_state_dict(source.state_dict())
        except ValueError:
            pass
        else:
            raise AssertionError("expected a channel-count mismatch error")


class TestMetricsExport:
    def test_per_channel_occupancy_in_registry(self):
        trace = locality_mix_trace(0.8, accesses=1500)
        config = experiment_config()
        fast = dataclasses.replace(
            config, dram=dataclasses.replace(config.dram, model="channel", num_channels=4)
        )
        system = SecureSystem.build("dyn", trace.footprint_blocks, fast)
        system.run(trace)
        registry = collect_system(system)
        names = {instrument.name for instrument in registry}
        for channel in range(4):
            assert f"interconnect.channel{channel}.busy_cycles" in names
            assert f"interconnect.channel{channel}.bus_occupancy_pct" in names
        assert "interconnect.streamed_paths" in names

    def test_sharded_bank_exports_per_shard(self):
        trace = locality_mix_trace(0.8, accesses=1500)
        config = experiment_config()
        fast = dataclasses.replace(
            config, dram=dataclasses.replace(config.dram, model="channel", num_channels=2)
        )
        system = SecureSystem.build(
            "dyn", trace.footprint_blocks, fast, num_shards=2
        )
        system.run(trace)
        registry = collect_system(system)
        names = {instrument.name for instrument in registry}
        assert "interconnect.shard0.channel0.busy_cycles" in names
        assert "interconnect.shard1.channel1.busy_cycles" in names


# --------------------------------------------- parallel runtime composition
class TestParallelRuntimeWithChannels:
    def test_worker_processes_honor_the_channel_model(self):
        """The channel interconnect plumbs through ShardSpec pickling:
        worker processes rebuild it from the config alone and the merged
        result stays bit-identical to the serial sharded bank."""
        from repro.config import SystemConfig
        from repro.parallel import ParallelShardRuntime, run_serial_reference

        rng = DeterministicRng(9)
        requests = []
        now = 0
        for index in range(200):
            now += rng.randint(1, 40)
            requests.append((rng.randint(0, 127), now, index % 5 == 0))
        config = SystemConfig()
        config = dataclasses.replace(
            config,
            dram=dataclasses.replace(config.dram, model="channel", num_channels=4),
        )
        serial = run_serial_reference("dyn", 128, requests, config, num_shards=2)
        with ParallelShardRuntime("dyn", 128, config, 2, batch_size=23) as runtime:
            parallel = runtime.run(requests)
        assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)
