"""Unit tests for the Shi et al. binary-tree ORAM (the section 6.1 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.tree_oram import ShiTreeORAM, merge_pairs
from repro.security.observer import AccessObserver
from repro.security.statistics import chi_square_uniformity
from repro.utils.rng import DeterministicRng


def make_oram(levels=5, num_blocks=64, seed=4, **kwargs):
    return ShiTreeORAM(
        levels=levels, num_blocks=num_blocks, rng=DeterministicRng(seed), **kwargs
    )


class TestBasics:
    def test_construction_satisfies_invariant(self):
        make_oram().check_invariants()

    def test_access_returns_block_and_remaps(self):
        oram = make_oram()
        before = oram.leaf_of(7)
        blocks = oram.access([7], new_leaf=(before + 1) % 32)
        assert blocks[7].addr == 7
        assert oram.leaf_of(7) != before
        oram.check_invariants()

    def test_super_block_access(self):
        oram = make_oram()
        target = oram.leaf_of(4)
        oram.access([5], new_leaf=target)
        blocks = oram.access([4, 5])
        assert set(blocks) == {4, 5}
        assert oram.leaf_of(4) == oram.leaf_of(5)
        oram.check_invariants()

    def test_access_rejects_split_group(self):
        oram = make_oram()
        if oram.leaf_of(0) == oram.leaf_of(1):
            oram.access([1], new_leaf=(oram.leaf_of(1) + 1) % 32)
        with pytest.raises(ValueError):
            oram.access([0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiTreeORAM(levels=0, num_blocks=4)
        with pytest.raises(ValueError):
            ShiTreeORAM(levels=3, num_blocks=0)
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access([])

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=80))
    def test_random_access_sequences_preserve_invariant(self, raw):
        oram = make_oram(seed=8)
        for value in raw:
            oram.access([value % oram.num_blocks])
        oram.check_invariants()

    def test_eviction_percolates_blocks_down(self):
        oram = make_oram(levels=6, num_blocks=128, seed=5)
        for i in range(200):
            oram.access([i % 128])
        assert oram.evicted_blocks > 0
        oram.check_invariants()


class TestObliviousness:
    def test_leaf_sequence_uniform(self):
        observer = AccessObserver()
        oram = ShiTreeORAM(
            levels=5, num_blocks=64, rng=DeterministicRng(6), observer=observer
        )
        for i in range(3000):
            oram.access([i % 64])
        _, p = chi_square_uniformity(observer.leaves(), 32)
        assert p > 1e-4


class TestSuperBlockGeneralization:
    """Section 6.1's claim, demonstrated on this second substrate."""

    def test_merge_pairs_establishes_invariant(self):
        oram = make_oram(levels=6, num_blocks=128, seed=7)
        merge_pairs(oram, sbsize=2)
        for base in range(0, 128, 2):
            assert oram.leaf_of(base) == oram.leaf_of(base + 1)
        oram.check_invariants()

    def test_pairs_halve_accesses_on_sequential_scans(self):
        plain = make_oram(levels=6, num_blocks=128, seed=9)
        merged = make_oram(levels=6, num_blocks=128, seed=9)
        merge_pairs(merged, sbsize=2)
        merged.accesses = 0  # reset after the merge traffic
        plain.accesses = 0

        for sweep in range(3):
            for addr in range(128):
                plain.access([addr])
            addr = 0
            while addr < 128:
                merged.access([addr, addr + 1])  # one fetch serves two
                addr += 2
        assert merged.accesses == plain.accesses / 2
        merged.check_invariants()

    def test_merge_pairs_rejects_bad_size(self):
        with pytest.raises(ValueError):
            merge_pairs(make_oram(), sbsize=3)
