"""Unit tests for the bit helpers used by alignment and path arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    align_down,
    common_prefix_length,
    group_base,
    is_power_of_two,
    log2_exact,
    neighbor_group_base,
)


class TestPowersOfTwo:
    def test_is_power_of_two_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_is_power_of_two_rejects_non_powers(self):
        for value in [0, -1, -2, 3, 5, 6, 7, 9, 12, 100]:
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(1024) == 10

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)


class TestAlignment:
    def test_align_down(self):
        assert align_down(13, 4) == 12
        assert align_down(16, 4) == 16
        assert align_down(3, 8) == 0

    def test_align_down_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_down(13, 3)

    def test_group_base_matches_paper_example(self):
        # Figure 3: 0x00/0x01 form a size-2 group; 0x04..0x07 a size-4 group.
        assert group_base(0x01, 2) == 0x00
        assert group_base(0x05, 4) == 0x04
        # 0x03 and 0x04 are NOT in a common size-2 group.
        assert group_base(0x03, 2) != group_base(0x04, 2)

    def test_neighbor_group_base_paper_example(self):
        # 0x02 is the neighbor of 0x03 (size 1 groups).
        assert neighbor_group_base(0x03, 1) == 0x02
        assert neighbor_group_base(0x02, 1) == 0x03
        # (0x00,0x01) and (0x02,0x03) are neighbors ...
        assert neighbor_group_base(0x00, 2) == 0x02
        # ... but (0x02,0x03) and (0x04,0x05) are not.
        assert neighbor_group_base(0x04, 2) == 0x06

    @given(st.integers(min_value=0, max_value=2**20), st.sampled_from([1, 2, 4, 8, 16]))
    def test_neighbor_is_symmetric_and_forms_aligned_double(self, addr, size):
        base = group_base(addr, size)
        neighbor = neighbor_group_base(addr, size)
        # Symmetry.
        assert neighbor_group_base(neighbor, size) == base
        # Together they form an aligned group of twice the size.
        combined = group_base(min(base, neighbor), 2 * size)
        assert {base, neighbor} == {combined, combined + size}


class TestCommonPrefix:
    def test_identical_leaves_share_full_depth(self):
        assert common_prefix_length(5, 5, 4) == 4

    def test_completely_different(self):
        # MSB differs: only the root is shared.
        assert common_prefix_length(0b1000, 0b0000, 4) == 0

    def test_partial(self):
        assert common_prefix_length(0b1010, 0b1000, 4) == 2

    def test_depth_zero(self):
        assert common_prefix_length(0, 0, 0) == 0

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
    )
    def test_bounds_and_symmetry(self, a, b):
        depth = 10
        cpl = common_prefix_length(a, b, depth)
        assert 0 <= cpl <= depth
        assert cpl == common_prefix_length(b, a, depth)
        if a == b:
            assert cpl == depth
        else:
            # The first differing bit is at position depth - cpl - 1.
            assert (a >> (depth - cpl)) == (b >> (depth - cpl))
            assert (a >> (depth - cpl - 1)) != (b >> (depth - cpl - 1))
