"""Unit tests for PrORAM's dynamic super block scheme (Algorithms 1 and 2).

These drive the scheme the way the ORAM backend does -- begin_access,
process_fetch, finish_access -- with a controllable fake LLC (a plain set),
so merge/break decisions can be asserted step by step.
"""

import pytest

from repro.config import ORAMConfig
from repro.core.counters import initial_break_value
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import AdaptiveThresholdPolicy, StaticThresholdPolicy
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng


class Harness:
    """Mimics the ORAM backend's drive sequence with an explicit LLC set."""

    def __init__(self, max_sbsize=2, policy=None, levels=11, seed=5, break_enabled=True):
        # Note: leaf labels are random, so two singletons can collide onto
        # one leaf and legitimately be treated as a super block (the real
        # hardware behaves the same way).  The 2**11-leaf tree makes that
        # negligible for these short scripted sequences.
        config = ORAMConfig(levels=levels, bucket_size=4, stash_blocks=60, utilization=0.5)
        self.oram = PathORAM(config, DeterministicRng(seed), populate=False)
        self.llc = set()
        self.scheme = DynamicSuperBlockScheme(
            max_sbsize=max_sbsize,
            policy=policy or StaticThresholdPolicy(),
            break_enabled=break_enabled,
        )
        self.scheme.attach(self.oram, lambda addr: addr in self.llc)
        self.scheme.initialize()
        self.oram.populate()

    def miss(self, addr):
        """One demand miss on `addr` (assumed not in the LLC)."""
        assert addr not in self.llc
        members = self.scheme.members_for(addr)
        blocks = self.oram.begin_access(members)
        fetched = {m: blocks[m] for m in members if m not in self.llc}
        outcome = self.scheme.process_fetch(addr, members, fetched)
        self.oram.finish_access()
        for fill, _prefetched in outcome.to_llc:
            self.llc.add(fill)
        return outcome

    def use(self, addr):
        assert addr in self.llc
        self.scheme.on_llc_hit(addr)

    def evict(self, addr):
        self.llc.remove(addr)
        self.scheme.on_llc_evict(addr)

    def is_pair(self, base):
        return self.oram.position_map.group_is_super_block(base, 2)


class TestMerging:
    def test_no_merging_at_initialization(self):
        h = Harness()
        posmap = h.oram.position_map
        merged = sum(
            1 for base in range(0, posmap.num_blocks - 1, 2)
            if posmap.group_is_super_block(base, 2)
        )
        # Only random leaf collisions (tiny probability per pair).
        assert merged <= posmap.num_blocks // 32

    def test_streaming_pair_merges_after_two_coresidencies(self):
        h = Harness()
        # Pick an unmerged pair.
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        # Pass 1: 0 then 1 -> co-residence observed once (counter 1).
        h.miss(base)
        h.miss(base + 1)
        assert not h.is_pair(base)
        # Pass 2 (after eviction): counter reaches the threshold 2 -> merge.
        h.evict(base)
        h.evict(base + 1)
        h.miss(base)
        h.miss(base + 1)
        assert h.is_pair(base)
        assert h.scheme.stats.merges >= 1
        h.oram.check_invariants()

    def test_merged_pair_fetches_together(self):
        h = Harness()
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        assert h.is_pair(base)
        h.miss(base)
        # The partner was prefetched into the LLC with the demand fetch.
        assert base + 1 in h.llc
        assert h.oram.position_map.prefetch_bit(base + 1) == 1

    def test_merge_sets_initial_break_counter(self):
        h = Harness()
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        assert h.is_pair(base)
        from repro.core.counters import bits_to_value

        bits = h.oram.position_map.break_bits(base, 2)
        assert bits_to_value(bits) == initial_break_value(2)

    def test_random_isolated_accesses_never_merge(self):
        h = Harness()
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        # Access only the even member, evicting it each time: the neighbor
        # is never co-resident, so the pair must not merge.
        for _ in range(10):
            h.miss(base)
            h.evict(base)
        assert not h.is_pair(base)

    def test_max_sbsize_respected(self):
        h = Harness(max_sbsize=2)
        base = next(
            b for b in range(0, 200, 4)
            if not h.is_pair(b) and not h.is_pair(b + 2)
        )
        # Merge both pairs, then keep co-using all four blocks.
        for _ in range(6):
            for a in (base, base + 1, base + 2, base + 3):
                if a not in h.llc:
                    h.miss(a)
            for a in (base, base + 1, base + 2, base + 3):
                h.evict(a)
        posmap = h.oram.position_map
        assert not posmap.group_is_super_block(base, 4)


class TestBreaking:
    def _merged_pair(self, h):
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        assert h.is_pair(base)
        return base

    def test_unused_prefetches_break_the_pair(self):
        h = Harness()
        base = self._merged_pair(h)
        # Repeatedly demand the even member and never touch the prefetched
        # partner: each round is a prefetch miss, decrementing the break
        # counter from its initial value down to a break.
        for _ in range(initial_break_value(2) + 2):
            if base in h.llc:
                h.evict(base)
            if base + 1 in h.llc:
                h.evict(base + 1)
            h.miss(base)
            if not h.is_pair(base):
                break
        assert not h.is_pair(base)
        assert h.scheme.stats.breaks >= 1
        h.oram.check_invariants()

    def test_used_prefetches_keep_the_pair(self):
        h = Harness()
        base = self._merged_pair(h)
        for _ in range(8):
            if base in h.llc:
                h.evict(base)
            if base + 1 in h.llc:
                h.evict(base + 1)
            h.miss(base)
            h.use(base + 1)  # prefetch hit every round
        assert h.is_pair(base)
        assert h.scheme.stats.breaks == 0

    def test_break_disabled_variant_never_breaks(self):
        h = Harness(break_enabled=False)
        base = self._merged_pair(h)
        for _ in range(8):
            if base in h.llc:
                h.evict(base)
            if base + 1 in h.llc:
                h.evict(base + 1)
            h.miss(base)
        assert h.is_pair(base)
        assert h.scheme.stats.breaks == 0

    def test_broken_halves_get_independent_leaves(self):
        h = Harness()
        base = self._merged_pair(h)
        for _ in range(initial_break_value(2) + 2):
            if base in h.llc:
                h.evict(base)
            if base + 1 in h.llc:
                h.evict(base + 1)
            h.miss(base)
            if not h.is_pair(base):
                break
        posmap = h.oram.position_map
        # Almost surely different; with 2**8 leaves a collision is possible
        # but the group must at least not be *treated* as a super block by
        # construction of the break (counters reset).
        assert h.scheme.members_for(base) == [base] or posmap.leaf(base) == posmap.leaf(base + 1)


class TestPrefetchAccounting:
    def test_prefetch_hit_stats(self):
        h = Harness()
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        h.miss(base)
        h.use(base + 1)
        assert h.scheme.stats.prefetch_hits == 1
        assert h.scheme.stats.prefetch_misses == 0

    def test_prefetch_miss_stats_on_unused_eviction(self):
        h = Harness()
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        h.miss(base)
        h.evict(base + 1)  # prefetched, never used
        assert h.scheme.stats.prefetch_misses == 1


class TestPolicyIntegration:
    def test_adaptive_policy_receives_events(self):
        policy = AdaptiveThresholdPolicy(window_requests=4)
        h = Harness(policy=policy)
        base = next(b for b in range(0, 100, 2) if not h.is_pair(b))
        for _ in range(2):
            h.miss(base)
            h.miss(base + 1)
            h.evict(base)
            h.evict(base + 1)
        h.miss(base)
        h.use(base + 1)
        # The tracker reports prefetch hits to the policy's window.
        assert policy._window.prefetch_hits >= 1 or policy.prefetch_hit_rate == 1.0

    def test_invalid_max_sbsize(self):
        with pytest.raises(ValueError):
            DynamicSuperBlockScheme(max_sbsize=3)


class TestEvictionDecrementGuard:
    """Regression: the eviction-time merge-counter decrement must apply the
    same neighbor-validity guard as :meth:`_run_merge`.  While the neighbor
    group is not itself a super block the pair has no well-defined merge
    counter, so evicting a member must not skew the bits the merge path
    would never have read."""

    @staticmethod
    def _pair_with_invalid_neighbor(h):
        """Merge (0, 1) and force (2, 3) onto distinct leaves."""
        pm = h.oram.position_map
        h.oram.remap_group([0, 1])
        leaf01 = pm.leaf(0)
        pm.set_leaf(2, (leaf01 + 1) % pm.num_leaves)
        pm.set_leaf(3, (leaf01 + 2) % pm.num_leaves)
        return pm

    def test_no_decrement_while_neighbor_not_super_block(self):
        from repro.core.counters import bits_to_value

        h = Harness(max_sbsize=4)
        pm = self._pair_with_invalid_neighbor(h)
        pm.set_merge_bits(0, [0, 1, 1, 0])  # counter value 6
        h.scheme.on_llc_evict(0)
        assert bits_to_value(pm.merge_bits(0, 4)) == 6  # unchanged

    def test_decrement_once_neighbor_is_super_block(self):
        from repro.core.counters import bits_to_value

        h = Harness(max_sbsize=4)
        pm = self._pair_with_invalid_neighbor(h)
        # Now make (2, 3) a super block on a leaf distinct from (0, 1)'s so
        # super_block_of(0) still reports the size-2 group.
        leaf01 = pm.leaf(0)
        h.oram.remap_group([2, 3], leaf=(leaf01 + 3) % pm.num_leaves)
        pm.set_merge_bits(0, [0, 1, 1, 0])
        h.scheme.on_llc_evict(0)
        assert bits_to_value(pm.merge_bits(0, 4)) == 5

    def test_coresident_eviction_never_decrements(self):
        from repro.core.counters import bits_to_value

        h = Harness(max_sbsize=4)
        pm = self._pair_with_invalid_neighbor(h)
        leaf01 = pm.leaf(0)
        h.oram.remap_group([2, 3], leaf=(leaf01 + 3) % pm.num_leaves)
        pm.set_merge_bits(0, [0, 1, 1, 0])
        h.scheme._coresident[0] = 1  # residency saw its neighbor
        h.scheme.on_llc_evict(0)
        assert bits_to_value(pm.merge_bits(0, 4)) == 6
