"""Shared fixtures: small, fast configurations for unit/integration tests."""

import pytest

from repro.config import CacheConfig, DRAMConfig, ORAMConfig, SystemConfig
from repro.utils.rng import DeterministicRng


@pytest.fixture
def rng():
    """A seeded random source for tests that need ad-hoc draws."""
    return DeterministicRng(1234)


@pytest.fixture
def small_oram_config():
    """A tiny tree that still exercises multi-level paths and the stash."""
    return ORAMConfig(levels=6, bucket_size=3, stash_blocks=40, utilization=0.6)


@pytest.fixture
def small_system_config(small_oram_config):
    """A scaled-down Table 1: small caches so misses happen quickly.

    Most test modules define their own local configs for independence;
    these fixtures serve ad-hoc/new tests.
    """
    return SystemConfig(
        oram=small_oram_config,
        l1=CacheConfig(capacity_bytes=4 * 1024, associativity=4),
        llc=CacheConfig(capacity_bytes=16 * 1024, associativity=8, hit_latency=8),
        dram=DRAMConfig(),
    )
