"""Smoke tests: every example script is importable and exposes main().

The examples run multi-minute simulations at their default sizes, so the
tests exercise their *plumbing* (imports, argument handling, helper
functions) rather than full executions; the heavy paths they call are
covered by the integration tests and the benchmark suite.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load(path)
    assert callable(getattr(module, "main", None))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "secure_processor_sim",
        "oblivious_kv_store",
        "database_oram",
        "timing_channel_demo",
    } <= names


def test_secure_processor_sim_rejects_unknown_benchmark():
    module = load(next(p for p in EXAMPLES if p.stem == "secure_processor_sim"))
    with pytest.raises(SystemExit):
        module.build_trace("not_a_benchmark", 100)


def test_secure_processor_sim_builds_known_traces():
    module = load(next(p for p in EXAMPLES if p.stem == "secure_processor_sim"))
    for name in ("ocean_c", "mcf", "YCSB"):
        trace = module.build_trace(name, 500)
        assert len(trace) >= 500 or name == "YCSB"  # YCSB rounds to operations


def test_timing_channel_demo_traces():
    module = load(next(p for p in EXAMPLES if p.stem == "timing_channel_demo"))
    hungry, idle = module.make_traces(footprint=256, horizon_refs=100)
    assert len(hungry) == len(idle) == 100
    assert hungry.total_gap_cycles < idle.total_gap_cycles
