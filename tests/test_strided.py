"""Unit tests for the strided super block extension (section 6.2)."""

import pytest

from repro.config import ORAMConfig
from repro.core.strided import StridedDynamicScheme
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng


class Harness:
    """Backend-shaped driver with an explicit LLC set (as in the dyn tests)."""

    def __init__(self, strides=(1, 2, 4, 8), levels=11, seed=6):
        config = ORAMConfig(levels=levels, bucket_size=4, stash_blocks=60, utilization=0.5)
        self.oram = PathORAM(config, DeterministicRng(seed), populate=False)
        self.llc = set()
        self.scheme = StridedDynamicScheme(strides=strides)
        self.scheme.attach(self.oram, lambda addr: addr in self.llc)
        self.scheme.initialize()
        self.oram.populate()

    def miss(self, addr):
        members = self.scheme.members_for(addr)
        blocks = self.oram.begin_access(members)
        fetched = {m: blocks[m] for m in members if m not in self.llc}
        outcome = self.scheme.process_fetch(addr, members, fetched)
        self.oram.finish_access()
        for fill, _ in outcome.to_llc:
            self.llc.add(fill)
        return outcome

    def evict(self, addr):
        self.llc.discard(addr)
        self.scheme.on_llc_evict(addr)

    def paired(self, a, b):
        return self.scheme._partner.get(a) == b


class TestStridedMerging:
    def _train(self, h, a, stride, rounds=3):
        for _ in range(rounds):
            if a in h.llc:
                h.evict(a)
            if a + stride in h.llc:
                h.evict(a + stride)
            h.miss(a + stride)
            h.miss(a)  # probe sees a+stride resident -> evidence
        return h

    def test_unit_stride_pairs_form(self):
        h = Harness()
        self._train(h, 100, stride=1)
        assert h.paired(100, 101)
        h.oram.check_invariants()

    def test_large_stride_pairs_form(self):
        h = Harness()
        self._train(h, 200, stride=8)
        assert h.paired(200, 208)
        h.oram.check_invariants()

    def test_merged_pair_fetches_together(self):
        h = Harness()
        self._train(h, 300, stride=4)
        assert h.paired(300, 304)
        h.evict(300)
        h.evict(304)
        h.miss(300)
        assert 304 in h.llc  # prefetched with the demand fetch
        assert h.oram.position_map.leaf(300) == h.oram.position_map.leaf(304)

    def test_random_blocks_do_not_pair(self):
        h = Harness()
        for addr in (50, 500, 1000, 77, 800):
            h.miss(addr)
            h.evict(addr)
        assert not h.scheme._partner

    def test_unused_prefetches_break_the_pair(self):
        h = Harness()
        self._train(h, 400, stride=2)
        assert h.paired(400, 402)
        for _ in range(8):
            if 400 in h.llc:
                h.evict(400)
            if 402 in h.llc:
                h.evict(402)
            h.miss(400)  # 402 prefetched, never used
            if not h.paired(400, 402):
                break
        assert not h.paired(400, 402)
        assert h.scheme.stats.breaks >= 1
        h.oram.check_invariants()

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedDynamicScheme(strides=())
        with pytest.raises(ValueError):
            StridedDynamicScheme(strides=(0,))

    def test_hardware_estimate(self):
        scheme = StridedDynamicScheme(strides=(1, 2, 4, 8))
        assert scheme.extra_state_bits_per_block() == 3  # 1 flag + 2 stride bits


class TestSystemIntegration:
    def test_scheme_label_builds_and_runs(self):
        from repro.analysis.experiments import run_schemes
        from repro.config import CacheConfig, ORAMConfig, SystemConfig
        from repro.sim.trace import Trace

        config = SystemConfig(
            oram=ORAMConfig(levels=8, bucket_size=4, stash_blocks=50),
            l1=CacheConfig(capacity_bytes=2 * 1024, associativity=2),
            llc=CacheConfig(capacity_bytes=8 * 1024, associativity=8, hit_latency=8),
        )
        # A stride-4 scan: addr, addr+4 co-used.
        trace = Trace("strided", footprint_blocks=1024)
        for sweep in range(6):
            for base in range(0, 1024, 8):
                trace.append(10, base)
                trace.append(10, base + 4)
        res = run_schemes(
            trace, ["oram", "dyn", "dyn_strided"], config=config, warmup_fraction=0.4
        )
        strided = res["dyn_strided"]
        assert strided.cycles > 0
        # The strided scheme finds the stride-4 pairs the unit-stride
        # scheme cannot, and must not lose to the baseline.
        gain = strided.speedup_over(res["oram"])
        unit_gain = res["dyn"].speedup_over(res["oram"])
        assert gain >= unit_gain - 0.02
