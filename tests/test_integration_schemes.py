"""Cross-module integration tests: the paper's headline claims in miniature.

These are slower than unit tests (full system simulations) but much smaller
than the benchmark suite; they pin the qualitative results the benchmarks
measure at scale.
"""

import pytest

from repro.analysis.experiments import run_schemes
from repro.config import CacheConfig, ORAMConfig, SystemConfig
from repro.workloads.synthetic import locality_mix_trace, uniform_random_trace


@pytest.fixture(scope="module")
def mini_config():
    """A shrunken experiment config: small caches, small tree, fast runs."""
    return SystemConfig(
        oram=ORAMConfig(levels=9, bucket_size=4, stash_blocks=60, utilization=0.65),
        l1=CacheConfig(capacity_bytes=4 * 1024, associativity=4),
        llc=CacheConfig(capacity_bytes=32 * 1024, associativity=8, hit_latency=8),
    )


@pytest.fixture(scope="module")
def high_locality_results(mini_config):
    trace = locality_mix_trace(
        locality=0.9, footprint_blocks=1024, accesses=12_000, gap_mean=20
    )
    return run_schemes(
        trace, ["dram", "oram", "stat", "dyn"], config=mini_config, warmup_fraction=0.4
    )


@pytest.fixture(scope="module")
def no_locality_results(mini_config):
    trace = uniform_random_trace(footprint_blocks=2048, accesses=10_000, gap_mean=20)
    return run_schemes(
        trace, ["oram", "stat", "dyn"], config=mini_config, warmup_fraction=0.4
    )


class TestHeadlineClaims:
    def test_oram_costs_an_order_of_magnitude(self, high_locality_results):
        res = high_locality_results
        slowdown = res["oram"].cycles / res["dram"].cycles
        assert slowdown > 3.0

    def test_dyn_gains_with_locality(self, high_locality_results):
        res = high_locality_results
        assert res["dyn"].speedup_over(res["oram"]) > 0.1

    def test_dyn_approaches_stat_with_locality(self, high_locality_results):
        res = high_locality_results
        stat = res["stat"].speedup_over(res["oram"])
        dyn = res["dyn"].speedup_over(res["oram"])
        assert dyn > 0.5 * stat

    def test_dyn_saves_energy_with_locality(self, high_locality_results):
        res = high_locality_results
        assert res["dyn"].normalized_memory_accesses(res["oram"]) < 0.95

    def test_dyn_harmless_without_locality(self, no_locality_results):
        res = no_locality_results
        assert abs(res["dyn"].speedup_over(res["oram"])) < 0.05

    def test_stat_not_better_than_dyn_without_locality(self, no_locality_results):
        res = no_locality_results
        stat = res["stat"].speedup_over(res["oram"])
        dyn = res["dyn"].speedup_over(res["oram"])
        assert dyn >= stat - 0.02

    def test_dyn_merges_only_with_locality(self, high_locality_results, no_locality_results):
        merged_with = high_locality_results["dyn"].prefetch_hits
        merged_without = no_locality_results["dyn"].prefetched_blocks
        assert merged_with > 0
        # Random traffic produces at most incidental merging.
        assert merged_without < merged_with


class TestVariantMatrix:
    """Every scheme variant runs end to end on one trace."""

    @pytest.mark.parametrize(
        "scheme",
        ["dram", "dram_pre", "oram", "oram_pre", "stat", "dyn",
         "dyn_sm_nb", "dyn_am_nb", "dyn_sm_ab", "oram_intvl", "dyn_intvl"],
    )
    def test_variant_completes(self, mini_config, scheme):
        trace = locality_mix_trace(
            locality=0.5, footprint_blocks=512, accesses=1_500, gap_mean=15, seed=3
        )
        res = run_schemes(trace, [scheme], config=mini_config)[scheme]
        assert res.cycles > 0
        assert res.trace_entries == 1_500
