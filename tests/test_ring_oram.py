"""Unit tests for Ring ORAM and super blocks on it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.ring_oram import RingORAM, merge_pairs, reverse_bits
from repro.security.observer import AccessObserver
from repro.security.statistics import chi_square_uniformity, lag_autocorrelation
from repro.utils.rng import DeterministicRng


def make_oram(levels=5, num_blocks=96, seed=4, **kwargs):
    return RingORAM(levels=levels, num_blocks=num_blocks, rng=DeterministicRng(seed), **kwargs)


class TestReverseBits:
    def test_examples(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b110, 3) == 0b011
        assert reverse_bits(0, 4) == 0

    @given(st.integers(min_value=0, max_value=255))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 8), 8) == value

    def test_covers_all_leaves(self):
        # The eviction order visits every leaf exactly once per period.
        leaves = {reverse_bits(i, 4) for i in range(16)}
        assert leaves == set(range(16))


class TestBasics:
    def test_construction_invariant(self):
        make_oram().check_invariants()

    def test_access_returns_and_remaps(self):
        oram = make_oram()
        before = oram.leaf_of(7)
        blocks = oram.access([7], new_leaf=(before + 1) % oram.num_leaves)
        assert blocks[7].addr == 7
        assert oram.leaf_of(7) != before
        oram.check_invariants()

    def test_validation(self):
        with pytest.raises(ValueError):
            RingORAM(levels=0, num_blocks=4)
        with pytest.raises(ValueError):
            RingORAM(levels=3, num_blocks=4, s=2, a=8)  # budget < period
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access([])

    def test_split_group_rejected(self):
        oram = make_oram()
        if oram.leaf_of(0) == oram.leaf_of(1):
            oram.access([1], new_leaf=(oram.leaf_of(1) + 1) % oram.num_leaves)
        with pytest.raises(ValueError):
            oram.access([0, 1])

    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100))
    def test_random_sequences_preserve_invariant(self, raw):
        oram = make_oram(seed=9)
        for value in raw:
            oram.access([value % oram.num_blocks])
        oram.check_invariants()

    def test_eviction_and_reshuffle_fire(self):
        oram = make_oram(a=4, s=6)
        for i in range(80):
            oram.access([i % oram.num_blocks])
        assert oram.evict_paths >= 80 // 4
        oram.check_invariants()


class TestBandwidth:
    def test_cheaper_per_access_than_full_path_reads(self):
        # Ring's read moves L+1 blocks; a Path ORAM access moves
        # 2*(L+1)*Z.  Amortized (with evictions) Ring must stay well below.
        oram = make_oram(levels=6, num_blocks=256, z=8, s=12, a=8, seed=5)
        for i in range(400):
            oram.access([i % 256])
        path_oram_cost = 2 * (oram.levels + 1) * oram.z
        assert oram.blocks_per_access() < path_oram_cost * 0.8

    def test_super_blocks_cut_amortized_bandwidth(self):
        plain = make_oram(levels=6, num_blocks=256, seed=7)
        paired = make_oram(levels=6, num_blocks=256, seed=7)
        merge_pairs(paired)
        for oram in (plain, paired):
            oram.blocks_transferred = 0
            oram.accesses = 0
        for sweep in range(3):
            for addr in range(256):
                plain.access([addr])
            addr = 0
            while addr < 256:
                paired.access([addr, addr + 1])
                addr += 2
        # Pairing halves logical accesses; amortized traffic per *logical
        # block consumed* drops substantially.
        plain_per_block = plain.blocks_transferred / (3 * 256)
        paired_per_block = paired.blocks_transferred / (3 * 256)
        assert paired_per_block < 0.75 * plain_per_block
        paired.check_invariants()


class TestSecurity:
    def test_read_leaf_sequence_uniform_and_unlinkable(self):
        observer = AccessObserver()
        oram = RingORAM(
            levels=5, num_blocks=96, rng=DeterministicRng(6), observer=observer
        )
        for i in range(2500):
            oram.access([i % 96])
        leaves = observer.leaves()
        _, p = chi_square_uniformity(leaves, oram.num_leaves)
        assert p > 1e-4
        assert abs(lag_autocorrelation(leaves, lag=1)) < 0.07
