"""Unit tests for the Merkle integrity layer."""

import pytest

from repro.config import ORAMConfig
from repro.oram.block import Block
from repro.oram.integrity import (
    IntegrityViolationError,
    MerkleTree,
    VerifiedPathORAM,
)
from repro.oram.tree import BinaryTree
from repro.utils.rng import DeterministicRng


def make_tree(levels=3, bucket_size=2):
    tree = BinaryTree(levels=levels, bucket_size=bucket_size)
    tree.write_bucket(0, 0, [Block(1, 3)])
    tree.write_bucket(3, 5, [Block(2, 5, b"payload")])
    return tree


class TestMerkleTree:
    def test_fresh_tree_verifies(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        merkle.verify_all()
        for leaf in range(tree.num_leaves):
            merkle.verify_path(leaf)

    def test_root_changes_with_content(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        before = merkle.root
        tree.write_bucket(2, 7, [Block(9, 7)])
        merkle.update_path(7)
        assert merkle.root != before
        merkle.verify_all()

    def test_unupdated_write_is_detected(self):
        # An adversary swaps a bucket without fixing the hashes.
        tree = make_tree()
        merkle = MerkleTree(tree)
        tree.write_bucket(3, 5, [Block(666, 5, b"forged")])
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_tampered_payload_detected(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        tree.bucket(tree.bucket_index(3, 5))[0].data = b"evil"
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_tampered_hash_detected(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        index = tree.bucket_index(3, 5)
        merkle.overwrite_hash(index, b"\x00" * 32)
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_off_path_changes_not_checked_by_path_verify(self):
        # Path verification is local: leaf 0's path does not cover leaf 7's
        # leaf bucket, but verify_all does.
        tree = make_tree()
        merkle = MerkleTree(tree)
        far_index = tree.bucket_index(3, 7)
        tree.bucket(far_index).append(Block(99, 7))
        merkle.verify_path(0)  # unaffected path still verifies
        with pytest.raises(IntegrityViolationError):
            merkle.verify_all()


class TestVerifiedPathORAM:
    def make(self, levels=5):
        config = ORAMConfig(levels=levels, bucket_size=3, stash_blocks=40, utilization=0.5)
        return VerifiedPathORAM(config, DeterministicRng(3))

    def test_normal_operation_verifies_every_access(self):
        oram = self.make()
        for addr in range(20):
            oram.access([addr])
        oram.dummy_access()
        assert oram.verified_paths == 21
        oram.merkle.verify_all()
        oram.check_invariants()

    def test_tampering_between_accesses_is_caught(self):
        oram = self.make()
        oram.access([1])
        target = oram.position_map.leaf(5)
        index = oram.tree.bucket_index(oram.config.levels, target)
        # The adversary injects a forged block into the leaf bucket.
        bucket = oram.tree.bucket(index)
        if len(bucket) < oram.config.bucket_size:
            bucket.append(Block(12345 % oram.position_map.num_blocks, target))
        else:
            bucket[0].data = b"forged"
        with pytest.raises(IntegrityViolationError):
            oram.access([5])

    def test_stale_replay_is_caught(self):
        # Replay: restore an old bucket image after it was overwritten.
        oram = self.make()
        leaf = oram.position_map.leaf(7)
        index = oram.tree.bucket_index(0, leaf)  # the root bucket
        stale = list(oram.tree.bucket(index))
        for addr in range(10):
            oram.access([addr])
        oram.tree._buckets[index] = stale  # adversary rewinds the root bucket
        with pytest.raises(IntegrityViolationError):
            oram.access([7])
