"""Unit tests for the Merkle integrity layer."""

import pytest

from repro.config import ORAMConfig
from repro.oram.block import Block
from repro.oram.integrity import (
    IntegrityViolationError,
    MerkleTree,
    VerifiedPathORAM,
)
from repro.oram.tree import BinaryTree
from repro.utils.rng import DeterministicRng


def make_tree(levels=3, bucket_size=2):
    tree = BinaryTree(levels=levels, bucket_size=bucket_size)
    tree.write_bucket(0, 0, [Block(1, 3)])
    tree.write_bucket(3, 5, [Block(2, 5, b"payload")])
    return tree


class TestMerkleTree:
    def test_fresh_tree_verifies(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        merkle.verify_all()
        for leaf in range(tree.num_leaves):
            merkle.verify_path(leaf)

    def test_root_changes_with_content(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        before = merkle.root
        tree.write_bucket(2, 7, [Block(9, 7)])
        merkle.update_path(7)
        assert merkle.root != before
        merkle.verify_all()

    def test_unupdated_write_is_detected(self):
        # An adversary swaps a bucket without fixing the hashes.
        tree = make_tree()
        merkle = MerkleTree(tree)
        tree.write_bucket(3, 5, [Block(666, 5, b"forged")])
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_tampered_payload_detected(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        tree.bucket(tree.bucket_index(3, 5))[0].data = b"evil"
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_tampered_hash_detected(self):
        tree = make_tree()
        merkle = MerkleTree(tree)
        index = tree.bucket_index(3, 5)
        merkle.overwrite_hash(index, b"\x00" * 32)
        with pytest.raises(IntegrityViolationError):
            merkle.verify_path(5)

    def test_off_path_changes_not_checked_by_path_verify(self):
        # Path verification is local: leaf 0's path does not cover leaf 7's
        # leaf bucket, but verify_all does.
        tree = make_tree()
        merkle = MerkleTree(tree)
        far_index = tree.bucket_index(3, 7)
        tree.bucket(far_index).append(Block(99, 7))
        merkle.verify_path(0)  # unaffected path still verifies
        with pytest.raises(IntegrityViolationError):
            merkle.verify_all()


class TestVerifiedPathORAM:
    def make(self, levels=5):
        config = ORAMConfig(levels=levels, bucket_size=3, stash_blocks=40, utilization=0.5)
        return VerifiedPathORAM(config, DeterministicRng(3))

    def test_normal_operation_verifies_every_access(self):
        oram = self.make()
        for addr in range(20):
            oram.access([addr])
        oram.dummy_access()
        assert oram.verified_paths == 21
        oram.merkle.verify_all()
        oram.check_invariants()

    def test_tampering_between_accesses_is_caught(self):
        oram = self.make()
        oram.access([1])
        target = oram.position_map.leaf(5)
        index = oram.tree.bucket_index(oram.config.levels, target)
        # The adversary injects a forged block into the leaf bucket.
        bucket = oram.tree.bucket(index)
        if len(bucket) < oram.config.bucket_size:
            bucket.append(Block(12345 % oram.position_map.num_blocks, target))
        else:
            bucket[0].data = b"forged"
        with pytest.raises(IntegrityViolationError):
            oram.access([5])

    def test_stale_replay_is_caught(self):
        # Replay: restore an old bucket image after it was overwritten.
        oram = self.make()
        leaf = oram.position_map.leaf(7)
        index = oram.tree.bucket_index(0, leaf)  # the root bucket
        stale = list(oram.tree.bucket(index))
        for addr in range(10):
            oram.access([addr])
        oram.tree._buckets[index] = stale  # adversary rewinds the root bucket
        with pytest.raises(IntegrityViolationError):
            oram.access([7])


class TestSingleBitflipProperty:
    """Seeded property: a single bit-flip anywhere on an accessed path --
    any byte of any block of any bucket, or any byte of any stored hash
    the verification consumes -- is always detected by the Merkle layer.

    Exhaustive over positions; the flipped bit within each byte is drawn
    from a fixed seed, so the run is deterministic yet exercises varied
    bit positions across the sweep.
    """

    def _populated_oram(self):
        config = ORAMConfig(levels=5, bucket_size=3, stash_blocks=40, utilization=0.5)
        oram = VerifiedPathORAM(config, DeterministicRng(17))
        for addr in range(min(24, oram.position_map.num_blocks)):
            block = oram.begin_access([addr])[addr]
            block.data = bytes([addr & 0xFF, 0xA5, addr ^ 0x3C, 0x7E])
            oram.finish_access()
        oram.drain_stash()
        oram.merkle.verify_all()
        return oram

    @staticmethod
    def _flip(data: bytes, byte_index: int, bit: int) -> bytes:
        return (
            data[:byte_index]
            + bytes([data[byte_index] ^ bit])
            + data[byte_index + 1 :]
        )

    def test_every_payload_byte_flip_detected(self):
        oram = self._populated_oram()
        rng = DeterministicRng(23)
        leaves = (0, 5, oram.tree.num_leaves - 1)
        checked = 0
        for leaf in leaves:
            for index in oram.tree.path_indices(leaf):
                for block in oram.tree._buckets[index]:
                    if not block.data:
                        continue
                    for byte_index in range(len(block.data)):
                        bit = 1 << rng.randbelow(8)
                        original = block.data
                        block.data = self._flip(original, byte_index, bit)
                        with pytest.raises(IntegrityViolationError):
                            oram.merkle.verify_path(leaf)
                        block.data = original
                        checked += 1
            # Restoration left the path pristine.
            oram.merkle.verify_path(leaf)
        assert checked > 0

    def test_every_metadata_bit_flip_detected(self):
        # The serialization also commits to each block's address and leaf
        # label; single-bit corruption of either must be caught too.
        oram = self._populated_oram()
        rng = DeterministicRng(29)
        leaf = oram.tree.num_leaves // 2
        for index in oram.tree.path_indices(leaf):
            for block in oram.tree._buckets[index]:
                for attr in ("addr", "leaf"):
                    bit = 1 << rng.randbelow(8)
                    original = getattr(block, attr)
                    setattr(block, attr, original ^ bit)
                    with pytest.raises(IntegrityViolationError):
                        oram.merkle.verify_path(leaf)
                    setattr(block, attr, original)
        oram.merkle.verify_path(leaf)

    def test_every_stored_hash_byte_flip_detected(self):
        # Verification consumes the stored hash of every path node and of
        # every off-path child (sibling) of a path node; flipping any byte
        # of any of them must break the chain to the trusted root.
        oram = self._populated_oram()
        rng = DeterministicRng(31)
        leaf = 3
        path = oram.tree.path_indices(leaf)
        consumed = set(path)
        for index in path:
            for child in (2 * index + 1, 2 * index + 2):
                if child < oram.tree.num_buckets:
                    consumed.add(child)
        for index in sorted(consumed):
            stored = oram.merkle.stored_hash(index)
            for byte_index in range(len(stored)):
                bit = 1 << rng.randbelow(8)
                oram.merkle.overwrite_hash(index, self._flip(stored, byte_index, bit))
                with pytest.raises(IntegrityViolationError):
                    oram.merkle.verify_path(leaf)
                oram.merkle.overwrite_hash(index, stored)
        oram.merkle.verify_path(leaf)
