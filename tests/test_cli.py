"""Unit tests for the command-line interface."""

import pytest

from repro.cli import KNOWN_SCHEMES, build_trace, main


class TestBuildTrace:
    def test_splash2_workload(self):
        trace = build_trace("ocean_c", accesses=500)
        assert trace.name == "ocean_c"
        assert len(trace) == 500

    def test_spec06_workload(self):
        assert build_trace("mcf", accesses=300).name == "mcf"

    def test_dbms_workload(self):
        assert build_trace("YCSB", accesses=800).name == "YCSB"

    def test_synthetic_locality(self):
        trace = build_trace("locality:75", accesses=400)
        assert trace.name == "locality_75"

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_trace("nonexistent", accesses=10)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ocean_c" in out and "dyn" in out and "YCSB" in out

    def test_run_small(self, capsys):
        code = main(
            ["run", "-w", "locality:50", "-s", "oram,dyn",
             "--accesses", "1500", "--warmup", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup_vs_oram" in out
        assert "dyn" in out

    def test_run_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "locality:50", "-s", "bogus", "--accesses", "100"])

    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(
            ["trace", "-w", "locality:30", "--accesses", "200", "-o", str(out_file)]
        ) == 0
        from repro.sim.trace import Trace

        loaded = Trace.load(str(out_file))
        assert len(loaded) == 200

    def test_audit_reports_oblivious(self, capsys):
        code = main(
            ["audit", "-w", "locality:50", "-s", "dyn", "--accesses", "3000"]
        )
        out = capsys.readouterr().out
        assert "verdict" in out
        assert code == 0  # healthy ORAM passes the audit

    def test_sweep_z(self, capsys):
        code = main(
            ["sweep", "z", "-w", "locality:60", "-s", "dyn", "--accesses", "1200",
             "--warmup", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Z" in out

    def test_known_schemes_all_buildable(self):
        # The CLI's advertised scheme list matches what the factory accepts.
        from repro.analysis.experiments import experiment_config
        from repro.sim.system import SecureSystem

        for scheme in KNOWN_SCHEMES:
            SecureSystem.build(scheme, footprint_blocks=256, config=experiment_config())
