"""Unit tests for the command-line interface."""

import pytest

from repro.cli import KNOWN_SCHEMES, build_trace, main


class TestBuildTrace:
    def test_splash2_workload(self):
        trace = build_trace("ocean_c", accesses=500)
        assert trace.name == "ocean_c"
        assert len(trace) == 500

    def test_spec06_workload(self):
        assert build_trace("mcf", accesses=300).name == "mcf"

    def test_dbms_workload(self):
        assert build_trace("YCSB", accesses=800).name == "YCSB"

    def test_synthetic_locality(self):
        trace = build_trace("locality:75", accesses=400)
        assert trace.name == "locality_75"

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_trace("nonexistent", accesses=10)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ocean_c" in out and "dyn" in out and "YCSB" in out

    def test_run_small(self, capsys):
        code = main(
            ["run", "-w", "locality:50", "-s", "oram,dyn",
             "--accesses", "1500", "--warmup", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup_vs_oram" in out
        assert "dyn" in out

    def test_run_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "locality:50", "-s", "bogus", "--accesses", "100"])

    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(
            ["trace", "-w", "locality:30", "--accesses", "200", "-o", str(out_file)]
        ) == 0
        from repro.sim.trace import Trace

        loaded = Trace.load(str(out_file))
        assert len(loaded) == 200

    def test_audit_reports_oblivious(self, capsys):
        code = main(
            ["audit", "-w", "locality:50", "-s", "dyn", "--accesses", "3000"]
        )
        out = capsys.readouterr().out
        assert "verdict" in out
        assert code == 0  # healthy ORAM passes the audit

    def test_sweep_z(self, capsys):
        code = main(
            ["sweep", "z", "-w", "locality:60", "-s", "dyn", "--accesses", "1200",
             "--warmup", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Z" in out

    def test_known_schemes_all_buildable(self):
        # The CLI's advertised scheme list matches what the factory accepts.
        from repro.analysis.experiments import experiment_config
        from repro.sim.system import SecureSystem

        for scheme in KNOWN_SCHEMES:
            SecureSystem.build(scheme, footprint_blocks=256, config=experiment_config())


class TestObservabilityCommands:
    def test_run_trace_out_single_scheme(self, tmp_path, capsys):
        out_file = tmp_path / "spans.jsonl"
        code = main(
            ["run", "-w", "locality:50", "-s", "dyn", "--accesses", "1000",
             "--warmup", "0.2", "--trace-out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "spans" in out
        from repro.observability import is_span, read_jsonl_trace

        records = read_jsonl_trace(str(out_file))
        assert records[0]["event"] == "run_start"
        assert any(is_span(record) for record in records)

    def test_run_trace_out_multi_scheme_splits_files(self, tmp_path):
        out_file = tmp_path / "spans.jsonl"
        code = main(
            ["run", "-w", "locality:50", "-s", "oram,dyn", "--accesses", "800",
             "--warmup", "0.2", "--trace-out", str(out_file)]
        )
        assert code == 0
        assert (tmp_path / "spans.oram.jsonl").exists()
        assert (tmp_path / "spans.dyn.jsonl").exists()

    def test_trace_report_mode(self, tmp_path, capsys):
        out_file = tmp_path / "spans.jsonl"
        main(
            ["run", "-w", "locality:50", "-s", "dyn", "--accesses", "800",
             "--warmup", "0.2", "--trace-out", str(out_file)]
        )
        capsys.readouterr()
        assert main(["trace", "--report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "trace.spans.demand" in out
        assert "trace.latency.demand" in out

    def test_trace_requires_output_or_report(self):
        with pytest.raises(SystemExit):
            main(["trace", "-w", "locality:30", "--accesses", "100"])

    def test_metrics_command(self, capsys):
        code = main(
            ["metrics", "-w", "locality:50", "-s", "dyn", "--accesses", "1500",
             "--window", "512"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend.demand_requests" in out
        assert "leaf uniformity" in out
        assert "status: healthy" in out

    def test_metrics_rejects_dram(self):
        with pytest.raises(SystemExit):
            main(["metrics", "-w", "locality:50", "-s", "dram", "--accesses", "100"])
