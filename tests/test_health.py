"""Tests for the health-state control plane (DESIGN.md section 10).

Three layers are covered:

* the :class:`~repro.health.CircuitBreaker` state machine itself --
  every edge (degrade, recover, storm-quarantine, cooldown, half-open
  probe, budget exhaustion) is pinned on fixed event sequences;
* the :class:`~repro.health.HealthControlPlane` mirroring into the
  metrics registry;
* the integrations: the sharded bank's quarantine fallback with dummy
  padding, and the parallel runtime's deadline enforcement -- including
  the ISSUE acceptance tests that a no-fault health-supervised run is
  bit-identical to the serial reference and that a hung worker is
  detected within the heartbeat deadline.
"""

import dataclasses
import time

import pytest

from repro.config import SystemConfig
from repro.health import (
    CircuitBreaker,
    HealthControlPlane,
    HealthPolicy,
    HealthState,
)
from repro.observability.collect import collect_parallel
from repro.observability.metrics import MetricsRegistry
from repro.parallel import ParallelShardRuntime, run_serial_reference
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng

FOOTPRINT = 128


def small_stream(accesses=400, footprint=FOOTPRINT, seed=9):
    rng = DeterministicRng(seed)
    requests = []
    now = 0
    for index in range(accesses):
        now += rng.randint(1, 40)
        requests.append((rng.randint(0, footprint - 1), now, index % 4 == 0))
    return requests


# ------------------------------------------------------------------ policy
class TestHealthPolicy:
    def test_parse_empty_is_defaults(self):
        assert HealthPolicy.parse("") == HealthPolicy()

    def test_parse_overrides_ints_and_floats(self):
        policy = HealthPolicy.parse(
            "window=32, probe_batch=8,batch_deadline_s=1.5"
        )
        assert policy.window == 32
        assert policy.probe_batch == 8
        assert policy.batch_deadline_s == 1.5
        # untouched keys keep their defaults
        assert policy.quarantine_cooldown == HealthPolicy().quarantine_cooldown

    def test_parse_unknown_key_raises(self):
        with pytest.raises(ValueError, match="known keys"):
            HealthPolicy.parse("wndow=32")

    def test_parse_missing_equals_raises(self):
        with pytest.raises(ValueError):
            HealthPolicy.parse("window")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"degrade_failure_rate": 1.5},
            {"degrade_failure_rate": 0.9, "quarantine_failure_rate": 0.5},
            {"probe_successes": 9, "probe_batch": 8},
            {"stash_pressure_fraction": 0.0},
            {"quarantine_cooldown": -1},
            {"join_timeout_s": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


# ----------------------------------------------------------------- breaker
def tight_policy(**overrides):
    defaults = dict(
        window=8,
        degrade_failure_rate=0.25,
        quarantine_failure_rate=0.5,
        recover_windows=1,
        quarantine_cooldown=4,
        probe_batch=4,
        probe_successes=2,
    )
    defaults.update(overrides)
    return HealthPolicy(**defaults)


class TestCircuitBreaker:
    def test_failure_window_degrades(self):
        breaker = CircuitBreaker(tight_policy())
        for index in range(8):
            if index < 2:
                breaker.record_failure()
            else:
                breaker.record_success()
        assert breaker.state is HealthState.DEGRADED
        assert breaker.transition_pairs() == [("healthy", "degraded")]
        assert breaker.transitions[0].reason == "failure_window"

    def test_clean_window_recovers(self):
        breaker = CircuitBreaker(tight_policy())
        for _ in range(4):
            breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # 50% failures: straight to quarantine, not degraded
        assert breaker.state is HealthState.QUARANTINED

        breaker = CircuitBreaker(tight_policy())
        for index in range(8):
            breaker.record_failure() if index < 2 else breaker.record_success()
        assert breaker.state is HealthState.DEGRADED
        for _ in range(8):
            breaker.record_success()
        assert breaker.state is HealthState.HEALTHY
        assert breaker.transition_pairs()[-1] == ("degraded", "healthy")

    def test_recover_windows_requires_consecutive_clean(self):
        breaker = CircuitBreaker(tight_policy(recover_windows=2))
        for index in range(8):
            breaker.record_failure() if index < 2 else breaker.record_success()
        assert breaker.state is HealthState.DEGRADED
        for _ in range(8):  # one clean window: not yet
            breaker.record_success()
        assert breaker.state is HealthState.DEGRADED
        for _ in range(8):  # second consecutive clean window: recovered
            breaker.record_success()
        assert breaker.state is HealthState.HEALTHY

    def test_latency_window_degrades(self):
        breaker = CircuitBreaker(tight_policy(degrade_latency_cycles=10))
        for _ in range(8):
            breaker.record_success(latency_cycles=100)
        assert breaker.state is HealthState.DEGRADED
        assert breaker.transitions[0].reason == "latency_window"

    def test_stash_pressure_degrades_immediately(self):
        breaker = CircuitBreaker(tight_policy())
        breaker.record_pressure()
        assert breaker.state is HealthState.DEGRADED
        assert breaker.transitions[0].reason == "stash_pressure"

    def test_hard_failure_quarantines(self):
        breaker = CircuitBreaker(tight_policy())
        breaker.record_hard_failure("death")
        assert breaker.state is HealthState.QUARANTINED
        assert breaker.hard_failures == 1
        assert breaker.quarantines == 1

    def test_cooldown_gates_probing(self):
        breaker = CircuitBreaker(tight_policy())
        breaker.record_hard_failure("death")
        assert not breaker.ready_to_probe
        for _ in range(4):
            breaker.record_fallback()
        assert breaker.ready_to_probe
        breaker.begin_probe()
        assert breaker.state is HealthState.PROBING

    def test_begin_probe_outside_quarantine_rejected(self):
        breaker = CircuitBreaker(tight_policy())
        with pytest.raises(ValueError):
            breaker.begin_probe()

    def _quarantined_and_probing(self):
        breaker = CircuitBreaker(tight_policy())
        breaker.record_hard_failure("death")
        for _ in range(4):
            breaker.record_fallback()
        breaker.begin_probe()
        return breaker

    def test_probe_streak_readmits(self):
        breaker = self._quarantined_and_probing()
        breaker.record_probe(True)
        assert breaker.state is HealthState.PROBING
        breaker.record_probe(True)
        assert breaker.state is HealthState.HEALTHY
        assert breaker.readmissions == 1
        assert breaker.transition_pairs()[-1] == ("probing", "healthy")

    def test_probe_failure_requarantines(self):
        breaker = self._quarantined_and_probing()
        breaker.record_probe(True)
        breaker.record_probe(False)
        assert breaker.state is HealthState.QUARANTINED
        assert breaker.transitions[-1].reason == "probe_failed"
        assert breaker.quarantines == 2
        # the new quarantine restarts the cooldown
        assert not breaker.ready_to_probe

    def test_probe_budget_exhaustion_requarantines(self):
        # successes never consecutive enough: alternate would fail on the
        # first False, so use probe_successes > achievable streak instead.
        breaker = CircuitBreaker(tight_policy(probe_batch=3, probe_successes=3))
        breaker.record_hard_failure("death")
        for _ in range(4):
            breaker.record_fallback()
        breaker.begin_probe()
        breaker.record_probe(True)
        breaker.record_probe(True)
        # third probe fails: batch exhausted via the failure edge
        breaker.record_probe(False)
        assert breaker.state is HealthState.QUARANTINED

    def test_deterministic_trajectory(self):
        def drive():
            breaker = CircuitBreaker(tight_policy())
            rng = DeterministicRng(3)
            for _ in range(200):
                if breaker.state is HealthState.QUARANTINED:
                    breaker.record_fallback()
                    if breaker.ready_to_probe:
                        breaker.begin_probe()
                elif breaker.state is HealthState.PROBING:
                    breaker.record_probe(rng.randint(0, 9) > 0)
                elif rng.randint(0, 9) < 2:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            return breaker.transition_pairs(), breaker.state

        assert drive() == drive()


# ------------------------------------------------------------------- plane
class TestHealthControlPlane:
    def test_gauges_mirror_states(self):
        plane = HealthControlPlane(2, tight_policy())
        assert plane.registry.gauge("health.shard0.state").value == 0
        plane.record_hard_failure(1, "death")
        assert plane.registry.gauge("health.shard1.state").value == 2
        assert (
            plane.registry.counter(
                "health.transitions.healthy_to_quarantined"
            ).value
            == 1
        )
        assert plane.quarantined() == [1]
        assert not plane.all_healthy

    def test_readmission_counted(self):
        plane = HealthControlPlane(1, tight_policy())
        plane.record_hard_failure(0, "death")
        for _ in range(4):
            plane.record_fallback(0)
        assert plane.begin_probe_if_ready(0)
        plane.record_probe(0, True)
        plane.record_probe(0, True)
        assert plane.state(0) is HealthState.HEALTHY
        assert plane.total_quarantines() == 1
        assert plane.total_readmissions() == 1
        assert plane.total_transitions() == 3

    def test_to_registry_copies_only_health_names(self):
        plane = HealthControlPlane(1, tight_policy())
        plane.registry.counter("parallel.worker0.batches").inc()
        plane.record_hard_failure(0, "death")
        out = plane.to_registry()
        names = {instrument.name for instrument in out}
        assert "health.shard0.state" in names
        assert all(name.startswith("health.") for name in names)


# ---------------------------------------------------- parallel integration
class TestRuntimeHealth:
    def test_no_fault_run_bit_identical_to_serial(self, tmp_path):
        """ISSUE acceptance: the health plane must be pure supervision --
        a storm-free run merges to the exact serial SimResult."""
        requests = small_stream()
        config = SystemConfig()
        serial = run_serial_reference(
            "dyn", FOOTPRINT, requests, config, num_shards=2
        )
        with ParallelShardRuntime(
            "dyn",
            FOOTPRINT,
            config,
            2,
            checkpoint_dir=str(tmp_path),
            batch_size=16,
            health_policy=HealthPolicy(heartbeat_every=4),
        ) as runtime:
            parallel = runtime.run(requests, fsck=True)
            assert runtime.health.all_healthy
        assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)

    def test_health_policy_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint"):
            ParallelShardRuntime(
                "dyn", FOOTPRINT, num_workers=2, health_policy=HealthPolicy()
            )

    def test_hung_worker_detected_within_deadline(self, tmp_path):
        """ISSUE acceptance: a worker stuck mid-batch trips the deadline,
        is quarantined, and the run still conserves every access."""
        requests = small_stream(accesses=300)
        policy = HealthPolicy(
            quarantine_cooldown=8,
            probe_batch=8,
            probe_successes=2,
            heartbeat_every=4,
            batch_deadline_s=1.0,
            join_timeout_s=2.0,
        )
        with ParallelShardRuntime(
            "dyn",
            FOOTPRINT,
            num_workers=2,
            checkpoint_dir=str(tmp_path),
            batch_size=16,
            max_restarts=8,
            health_policy=policy,
        ) as runtime:
            runtime.hang_worker(0, seconds=120.0)
            started = time.perf_counter()
            result = runtime.run(requests, fsck=True)
            elapsed = time.perf_counter() - started
            assert runtime.total_hangs() >= 1
            assert runtime.health.total_quarantines() >= 1
            # detection is deadline-bounded, not sleep-bounded: the run
            # must finish far below the 120 s hang it was injected with
            assert elapsed < 60.0
        assert result.demand_requests == len(requests)

    def test_collect_parallel_surfaces_health(self, tmp_path):
        requests = small_stream(accesses=200)
        policy = HealthPolicy(
            quarantine_cooldown=8,
            probe_batch=8,
            probe_successes=2,
            heartbeat_every=4,
            batch_deadline_s=1.0,
            join_timeout_s=2.0,
        )
        with ParallelShardRuntime(
            "dyn",
            FOOTPRINT,
            num_workers=2,
            checkpoint_dir=str(tmp_path),
            batch_size=16,
            max_restarts=8,
            health_policy=policy,
        ) as runtime:
            runtime.hang_worker(1, seconds=120.0)
            runtime.run(requests)
            registry = collect_parallel(runtime)
        assert registry.counter("parallel.worker1.hangs").value >= 1
        assert registry.counter("parallel.worker1.restarts").value >= 1
        # healthy worker's counters are forced to exist at zero
        assert registry.counter("parallel.worker0.hangs").value == 0
        assert registry.gauge("health.shard1.state").value in (0, 1, 2, 3)
        assert registry.counter("health.shard1.hard_failures").value >= 1


# -------------------------------------------------------- bank integration
class TestBankQuarantine:
    def build(self, **overrides):
        policy = HealthPolicy(
            window=16,
            quarantine_cooldown=8,
            probe_batch=8,
            probe_successes=2,
            **overrides,
        )
        system = SecureSystem.build(
            "dyn", footprint_blocks=FOOTPRINT, num_shards=2,
            health_policy=policy,
        )
        return system, system.backend

    def test_quarantined_shard_serves_padded_fallback(self):
        system, bank = self.build()
        bank.quarantine_shard(0, reason="chaos")
        assert bank.health.state(0) is HealthState.QUARANTINED
        before = bank.stats.dummy_accesses
        now = 0
        # addresses congruent 0 mod 2 route to the quarantined shard
        for index in range(8):
            now += 50
            result = bank.demand_access(2 * index % FOOTPRINT, now, False)
            assert result.completion_cycle > now
        breaker = bank.health.breakers[0]
        assert breaker._fallback_served == 8
        # every fallback access carries a dummy-path padding access so the
        # quarantined channel keeps the uniform two-path shape
        assert bank.stats.dummy_accesses >= before + 8

    def test_cooldown_then_probe_readmits(self):
        system, bank = self.build()
        bank.quarantine_shard(0, reason="chaos")
        now = 0
        for _ in range(32):
            now += 50
            bank.demand_access(0, now, False)
            if bank.health.state(0) is HealthState.HEALTHY:
                break
        assert bank.health.state(0) is HealthState.HEALTHY
        assert bank.health.total_readmissions() == 1
        pairs = bank.health.breakers[0].transition_pairs()
        assert pairs == [
            ("healthy", "quarantined"),
            ("quarantined", "probing"),
            ("probing", "healthy"),
        ]

    def test_healthy_shard_unaffected(self):
        system, bank = self.build()
        bank.quarantine_shard(0, reason="chaos")
        now = 0
        for index in range(8):
            now += 50
            bank.demand_access((2 * index + 1) % FOOTPRINT, now, False)
        assert bank.health.state(1) is HealthState.HEALTHY
        assert bank.health.breakers[1]._fallback_served == 0

    def test_quarantine_without_plane_rejected(self):
        system = SecureSystem.build(
            "dyn", footprint_blocks=FOOTPRINT, num_shards=2
        )
        with pytest.raises(ValueError, match="health plane"):
            system.backend.quarantine_shard(0)

    def test_health_policy_single_shard_rejected(self):
        with pytest.raises(ValueError):
            SecureSystem.build(
                "dyn",
                footprint_blocks=FOOTPRINT,
                num_shards=1,
                health_policy=HealthPolicy(),
            )
