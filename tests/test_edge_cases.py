"""Edge-case coverage across modules: boundary geometries and parameters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheConfig, DRAMConfig, ORAMConfig, TimingProtectionConfig
from repro.memory.dram import DRAMBackend
from repro.memory.periodic import PeriodicORAMBackend
from repro.oram.checkpoint import dump_oram, load_oram
from repro.oram.path_oram import PathORAM
from repro.oram.super_block import BaselineScheme
from repro.utils.rng import DeterministicRng


class TestTinyGeometries:
    def test_one_level_tree_oram_works(self):
        config = ORAMConfig(levels=1, bucket_size=4, stash_blocks=10, utilization=0.5)
        oram = PathORAM(config, DeterministicRng(1))
        n = oram.position_map.num_blocks
        for i in range(20):
            oram.access([i % n])
            oram.drain_stash()
        oram.check_invariants()

    def test_single_block_address_space(self):
        config = ORAMConfig(levels=2, bucket_size=1, stash_blocks=5, utilization=0.2)
        oram = PathORAM(config, DeterministicRng(2))
        for _ in range(10):
            oram.access([0])
        oram.check_invariants()

    def test_direct_mapped_cache(self):
        cache = SetAssociativeCache(CacheConfig(1024, 1, 128))  # 8 sets, 1 way
        cache.insert(0)
        assert cache.contains(0)
        cache.insert(8)  # same set: evicts 0
        assert not cache.contains(0)

    def test_scaled_to_footprint_tiny_and_large(self):
        config = ORAMConfig()
        tiny = config.scaled_to_footprint(1)
        assert tiny.num_blocks >= 1
        big = config.scaled_to_footprint(200_000)
        assert big.num_blocks >= 200_000
        assert big.levels > tiny.levels


class TestBackendEdges:
    def test_single_bank_dram_serializes_fully(self):
        dram = DRAMBackend(DRAMConfig(num_banks=1), block_bytes=128)
        first = dram.demand_access(0, 0, False)
        second = dram.demand_access(1, 0, False)
        assert second.completion_cycle >= first.completion_cycle + 100

    def test_periodic_with_zero_interval_is_back_to_back(self):
        backend = PeriodicORAMBackend(
            ORAMConfig(levels=6, bucket_size=4, stash_blocks=30, utilization=0.5),
            DRAMConfig(),
            BaselineScheme(),
            DeterministicRng(3),
            TimingProtectionConfig(enabled=True, interval_cycles=0),
        )
        first = backend.demand_access(1, 0, False)
        second = backend.demand_access(2, first.completion_cycle, False)
        assert second.completion_cycle == first.completion_cycle + backend.timing.path_cycles

    def test_periodic_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            PeriodicORAMBackend(
                ORAMConfig(levels=6, bucket_size=4, stash_blocks=30),
                DRAMConfig(),
                BaselineScheme(),
                DeterministicRng(3),
                TimingProtectionConfig(enabled=True, interval_cycles=-1),
            )


class TestCheckpointProperty:
    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40))
    def test_checkpoint_preserves_position_map_exactly(self, addrs):
        config = ORAMConfig(levels=5, bucket_size=3, stash_blocks=30, utilization=0.5)
        oram = PathORAM(config, DeterministicRng(7))
        n = oram.position_map.num_blocks
        for raw in addrs:
            oram.access([raw % n])
        restored = load_oram(dump_oram(oram))
        for addr in range(n):
            assert restored.position_map.leaf(addr) == oram.position_map.leaf(addr)
        restored.check_invariants()


class TestRngEdges:
    def test_zipf_single_element(self):
        rng = DeterministicRng(1)
        assert all(rng.zipf(1, 0.9) == 0 for _ in range(5))

    def test_geometric_huge_mean_bounded_draws(self):
        rng = DeterministicRng(2)
        draws = [rng.geometric(1000.0) for _ in range(100)]
        assert all(d >= 1 for d in draws)
        assert max(d for d in draws) < 100_000
