"""Golden-output determinism tests for the simulation hot path.

The hot-path code (stash eviction, tree indexing, position map scans) is
performance-critical and gets refactored; these tests pin the *simulated
outcome* so an optimization that changes behaviour -- a different block
placement, a perturbed ``DeterministicRng`` call order, an altered counter
update -- fails loudly instead of silently skewing every figure.

The golden snapshot lives in ``tests/data/golden_dyn_locality80.json``.
Regenerate it (only after an *intentional* behaviour change, e.g. a bugfix)
with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_determinism.py

A property test additionally drives randomized merge -> break -> merge
histories through the dynamic scheme and asserts the ORAM's structural
invariants after every phase.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import experiment_config
from repro.config import ORAMConfig
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import StaticThresholdPolicy
from repro.oram.path_oram import PathORAM
from repro.sim.system import SecureSystem
from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import locality_mix_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_dyn_locality80.json"

#: Float-valued SimResult fields compared approximately (everything else
#: must match bit-for-bit).
FLOAT_FIELDS = {"posmap_cache_hit_rate"}


def golden_run():
    """The pinned scenario: PrORAM (dyn) on the 80%-locality synthetic mix."""
    # 8000 accesses is the smallest run that exercises merges *and* breaks
    # (8 merges, 1 break at this seed) while staying fast enough for CI.
    trace = locality_mix_trace(0.8, accesses=8000)
    system = SecureSystem.build("dyn", trace.footprint_blocks, experiment_config())
    result = system.run(trace)
    system.backend.oram.check_invariants()
    return result


def result_to_dict(result):
    data = dataclasses.asdict(result)
    data.pop("extra", None)
    return data


class TestGoldenDeterminism:
    def test_simresult_matches_snapshot(self):
        actual = result_to_dict(golden_run())
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"golden snapshot regenerated at {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing golden snapshot {GOLDEN_PATH}; regenerate with "
            "REPRO_UPDATE_GOLDEN=1"
        )
        expected = json.loads(GOLDEN_PATH.read_text())
        assert set(actual) == set(expected), "SimResult field set changed"
        for field, want in expected.items():
            got = actual[field]
            if field in FLOAT_FIELDS:
                assert got == pytest.approx(want, rel=1e-12), field
            else:
                assert got == want, (
                    f"SimResult.{field} drifted from golden snapshot: "
                    f"{got!r} != {want!r}"
                )

    def test_back_to_back_runs_identical(self):
        first = result_to_dict(golden_run())
        second = result_to_dict(golden_run())
        assert first == second


# --------------------------------------------------------------------------
# Property test: invariants hold through randomized merge/break churn.
# --------------------------------------------------------------------------
class ChurnDriver:
    """Drives forced merge -> break -> merge cycles through the full stack."""

    def __init__(self, seed: int, max_sbsize: int = 4):
        config = ORAMConfig(levels=9, bucket_size=4, stash_blocks=60, utilization=0.5)
        self.oram = PathORAM(config, DeterministicRng(seed), populate=False)
        self.llc = set()
        self.scheme = DynamicSuperBlockScheme(
            max_sbsize=max_sbsize, policy=StaticThresholdPolicy()
        )
        self.scheme.attach(self.oram, lambda addr: addr in self.llc)
        self.scheme.initialize()
        self.oram.populate()
        self.n = self.oram.position_map.num_blocks

    def miss(self, addr):
        members = self.scheme.members_for(addr)
        blocks = self.oram.begin_access(members)
        fetched = {m: blocks[m] for m in members if m not in self.llc}
        outcome = self.scheme.process_fetch(addr, members, fetched)
        self.oram.finish_access()
        for fill, _ in outcome.to_llc:
            self.llc.add(fill)
        self.oram.drain_stash()

    def touch(self, addr):
        addr %= self.n
        if addr in self.llc:
            self.scheme.on_llc_hit(addr)
        else:
            self.miss(addr)

    def evict_all(self):
        for addr in sorted(self.llc):
            self.scheme.on_llc_evict(addr)
        self.llc.clear()


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=10_000),
    bases=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=8),
)
def test_merge_break_merge_churn_preserves_invariants(seed, bases):
    driver = ChurnDriver(seed)
    for raw in bases:
        base = (raw % driver.n) & ~3  # aligned 4-group
        # Merge phase: streaming over the group trains the merge counters.
        for sweep in range(3):
            for offset in range(4):
                driver.touch(base + offset)
        driver.oram.check_invariants()
        # Break phase: evict everything unused, then re-touch only one
        # member so prefetch evidence turns negative and breaks fire.
        driver.evict_all()
        for _ in range(3):
            driver.touch(base)
            driver.evict_all()
        driver.oram.check_invariants()
        # Re-merge phase: stream again after the breaks.
        for offset in range(4):
            driver.touch(base + offset)
        driver.oram.check_invariants()
    driver.oram.check_invariants()
