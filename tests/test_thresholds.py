"""Unit tests for the static and adaptive threshold policies (section 4.4)."""

import pytest

from repro.core.thresholds import (
    AdaptiveThresholdPolicy,
    StaticThresholdPolicy,
)


class TestStaticPolicy:
    def test_merge_thresholds_match_paper(self):
        policy = StaticThresholdPolicy()
        # Result sizes 2, 4, 8 (halves of 1, 2, 4) -> thresholds 2, 4, 8.
        assert policy.merge_threshold(2) == 2
        assert policy.merge_threshold(4) == 4
        assert policy.merge_threshold(8) == 8

    def test_break_threshold_zero(self):
        policy = StaticThresholdPolicy()
        for size in [2, 4, 8]:
            assert policy.break_threshold(size) == 0.0

    def test_stat_hooks_are_noops(self):
        policy = StaticThresholdPolicy()
        policy.on_request(10, 20)
        policy.on_background_eviction()
        policy.on_prefetch_hit()
        policy.on_prefetch_miss()
        assert policy.merge_threshold(2) == 2  # unchanged


class TestAdaptivePolicy:
    def test_initial_thresholds_match_static(self):
        # Before any window completes, eviction_rate = 0 so the base term
        # vanishes: threshold_merge = sbsize, same as static for pairs.
        policy = AdaptiveThresholdPolicy()
        assert policy.merge_threshold(2) == pytest.approx(2.0)
        assert policy.break_threshold(2) == pytest.approx(0.0)

    def _fill_window(self, policy, evictions, hits, misses, busy=50, elapsed=100):
        for _ in range(policy.window_requests):
            policy.on_background_eviction(evictions)
            for _ in range(hits):
                policy.on_prefetch_hit()
            for _ in range(misses):
                policy.on_prefetch_miss()
            policy.on_request(busy_cycles=busy, elapsed_cycles=elapsed)

    def test_eviction_pressure_raises_threshold(self):
        policy = AdaptiveThresholdPolicy(window_requests=10)
        self._fill_window(policy, evictions=1, hits=1, misses=0)
        # eviction_rate = 0.5, access_rate = 0.5, hit rate 1.0:
        # base = 4 * 0.5 * 0.5 = 1 -> merge threshold 3.
        assert policy.merge_threshold(2) == pytest.approx(3.0)
        assert policy.break_threshold(2) == pytest.approx(1.0)

    def test_low_hit_rate_raises_threshold(self):
        policy = AdaptiveThresholdPolicy(window_requests=10)
        self._fill_window(policy, evictions=1, hits=0, misses=1)
        threshold_bad = policy.merge_threshold(2)
        policy2 = AdaptiveThresholdPolicy(window_requests=10)
        self._fill_window(policy2, evictions=1, hits=1, misses=0)
        assert threshold_bad > policy2.merge_threshold(2)

    def test_larger_blocks_harder_to_merge(self):
        # Equation 1's sbsize^2 term.
        policy = AdaptiveThresholdPolicy(window_requests=10)
        self._fill_window(policy, evictions=1, hits=1, misses=0)
        base2 = policy.merge_threshold(2) - 2
        base4 = policy.merge_threshold(4) - 4
        assert base4 == pytest.approx(4 * base2)

    def test_coefficient_scales(self):
        fast = AdaptiveThresholdPolicy(c_merge=1.0, window_requests=10)
        slow = AdaptiveThresholdPolicy(c_merge=8.0, window_requests=10)
        self._fill_window(fast, evictions=1, hits=1, misses=0)
        self._fill_window(slow, evictions=1, hits=1, misses=0)
        assert slow.merge_threshold(2) > fast.merge_threshold(2)

    def test_hysteresis_between_merge_and_break(self):
        # thresholdMerge = threshold + sbsize, thresholdBreak = threshold.
        policy = AdaptiveThresholdPolicy(window_requests=10)
        self._fill_window(policy, evictions=1, hits=1, misses=0)
        assert policy.merge_threshold(2) == pytest.approx(policy.break_threshold(2) + 2)

    def test_window_resets(self):
        policy = AdaptiveThresholdPolicy(window_requests=5)
        self._fill_window(policy, evictions=1, hits=1, misses=0)
        first = policy.eviction_rate
        # A calm window brings the rate back down.
        for _ in range(5):
            policy.on_request(busy_cycles=1, elapsed_cycles=100)
        assert policy.eviction_rate < first

    def test_no_prefetch_evidence_keeps_estimate(self):
        policy = AdaptiveThresholdPolicy(window_requests=5)
        self._fill_window(policy, evictions=0, hits=0, misses=1)
        after_bad = policy.prefetch_hit_rate
        assert after_bad < 1.0
        for _ in range(5):
            policy.on_request(busy_cycles=1, elapsed_cycles=2)
        assert policy.prefetch_hit_rate == after_bad  # no new evidence

    def test_access_rate_clamped(self):
        policy = AdaptiveThresholdPolicy(window_requests=3)
        for _ in range(3):
            policy.on_request(busy_cycles=500, elapsed_cycles=100)
        assert policy.access_rate == 1.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(window_requests=0)


class TestZeroElapsedBoundary:
    """Equation 1 at the degenerate boundary: ``elapsed_cycles == 0``.

    A same-cycle burst (two shards of a batch completing on one cycle)
    legitimately reports zero elapsed time.  The old pipeline clamped the
    value to 1 *before* the policy saw it, fabricating wall-clock; a
    window whose every request was such a burst then divided busy cycles
    by ~1 and wildly over-reported -- while a true zero would have raised
    ``ZeroDivisionError``.  The guard now lives in the policy itself.
    """

    def test_all_zero_elapsed_window_is_saturated(self):
        # Zero elapsed with real work means the ORAM never went idle:
        # access_rate is 1, not an exception and not busy/1.
        policy = AdaptiveThresholdPolicy(window_requests=3)
        for _ in range(3):
            policy.on_request(busy_cycles=1348, elapsed_cycles=0)
        assert policy.access_rate == 1.0

    def test_zero_elapsed_zero_busy_window_is_idle(self):
        policy = AdaptiveThresholdPolicy(window_requests=2)
        for _ in range(2):
            policy.on_request(busy_cycles=0, elapsed_cycles=0)
        assert policy.access_rate == 0.0

    def test_same_cycle_burst_adds_no_elapsed(self):
        # Mixed window: the bursts add busy evidence but no wall-clock,
        # so the rate is measured over the real requests' elapsed time.
        policy = AdaptiveThresholdPolicy(window_requests=4)
        policy.on_request(busy_cycles=100, elapsed_cycles=400)
        policy.on_request(busy_cycles=100, elapsed_cycles=0)
        policy.on_request(busy_cycles=100, elapsed_cycles=0)
        policy.on_request(busy_cycles=100, elapsed_cycles=400)
        assert policy.access_rate == pytest.approx(400 / 800)

    def test_negative_elapsed_clamped(self):
        # A caller with a skewed clock cannot shrink the window total.
        policy = AdaptiveThresholdPolicy(window_requests=2)
        policy.on_request(busy_cycles=10, elapsed_cycles=-50)
        policy.on_request(busy_cycles=10, elapsed_cycles=100)
        assert policy.access_rate == pytest.approx(20 / 100)

    def test_pipeline_feeds_raw_elapsed(self):
        # Regression at the pipeline boundary: the clamp must NOT happen
        # upstream.  Force the same-cycle-burst condition (previous
        # request completed at/after this one's issue) and check that the
        # policy's window gained busy cycles but zero fabricated elapsed.
        from repro.analysis.experiments import experiment_config
        from repro.sim.system import SecureSystem

        system = SecureSystem.build("dyn", 256, experiment_config())
        backend = system.backend
        policy = backend.scheme.policy
        assert isinstance(policy, AdaptiveThresholdPolicy)
        first = backend.demand_access(0, now=0, is_write=False)
        elapsed_first = policy._window.elapsed_cycles
        assert elapsed_first == first.completion_cycle
        backend._last_request_cycle = backend.busy_until + 10 ** 9
        backend.demand_access(1, now=backend.busy_until, is_write=False)
        assert policy._window.elapsed_cycles == elapsed_first
