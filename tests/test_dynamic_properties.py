"""Property-based tests: invariants survive arbitrary merge/break histories.

Hypothesis drives random interleavings of misses, LLC hits, and evictions
through the full dynamic-scheme + Path ORAM stack and then asserts the
structural invariants:

* P1/P3: every block on its mapped path or in the stash, none lost;
* P2: inferred super blocks always map to one leaf (by construction of the
  inference, checked via explicit group scans);
* counters always reconstruct to in-range values;
* the LLC model set and the scheme's view never diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ORAMConfig
from repro.core.counters import bits_to_value, counter_max
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import AdaptiveThresholdPolicy, StaticThresholdPolicy
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng


class Driver:
    """Backend-shaped harness with an explicit bounded LLC set."""

    def __init__(self, seed, max_sbsize=2, policy=None, llc_lines=48):
        config = ORAMConfig(levels=9, bucket_size=4, stash_blocks=50, utilization=0.5)
        self.oram = PathORAM(config, DeterministicRng(seed), populate=False)
        self.llc = []
        self.llc_lines = llc_lines
        self.scheme = DynamicSuperBlockScheme(
            max_sbsize=max_sbsize, policy=policy or StaticThresholdPolicy()
        )
        self.scheme.attach(self.oram, lambda addr: addr in self.llc)
        self.scheme.initialize()
        self.oram.populate()
        self.n = self.oram.position_map.num_blocks

    def access(self, addr):
        addr %= self.n
        if addr in self.llc:
            self.scheme.on_llc_hit(addr)
            return
        members = self.scheme.members_for(addr)
        blocks = self.oram.begin_access(members)
        fetched = {m: blocks[m] for m in members if m not in self.llc}
        outcome = self.scheme.process_fetch(addr, members, fetched)
        self.oram.finish_access()
        for fill, _ in outcome.to_llc:
            if fill not in self.llc:
                self.llc.append(fill)
        while len(self.llc) > self.llc_lines:
            victim = self.llc.pop(0)
            self.scheme.on_llc_evict(victim)
        self.oram.drain_stash()


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**20),
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=10, max_size=120),
)
def test_random_histories_preserve_oram_invariants(seed, addrs):
    driver = Driver(seed % 1000 + 1)
    for raw in addrs:
        # Mix streaming (locality) with random jumps so merging happens.
        driver.access(raw)
        driver.access(raw + 1)
    driver.oram.check_invariants()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=500))
def test_streaming_histories_merge_and_stay_consistent(seed):
    driver = Driver(seed, policy=AdaptiveThresholdPolicy(window_requests=50))
    for sweep in range(4):
        for addr in range(0, 96):
            driver.access(addr)
    driver.oram.check_invariants()
    posmap = driver.oram.position_map
    # P2: every inferred super block's members share a leaf, and the
    # counters stored in the bit fields are in range.
    for base in range(0, 96, 2):
        group_base_, size = posmap.super_block_of(base, 2)
        if size == 2:
            assert posmap.leaf(group_base_) == posmap.leaf(group_base_ + 1)
        value = bits_to_value(posmap.merge_bits(group_base_, 2))
        assert 0 <= value <= counter_max(2)
    assert driver.scheme.stats.merges > 0


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=500),
    st.lists(st.booleans(), min_size=20, max_size=60),
)
def test_merge_break_cycles_never_lose_blocks(seed, pattern):
    """Alternate locality-rich and locality-free episodes; blocks survive."""
    driver = Driver(seed, policy=StaticThresholdPolicy())
    rng = DeterministicRng(seed + 7)
    for streaming in pattern:
        if streaming:
            start = rng.randint(0, driver.n - 40)
            for addr in range(start, start + 32):
                driver.access(addr)
        else:
            for _ in range(32):
                driver.access(rng.randint(0, driver.n - 1))
    driver.oram.check_invariants()
    # Conservation is already asserted by check_invariants; additionally
    # the accounting stays sane.
    stats = driver.scheme.stats
    assert stats.prefetch_hits + stats.prefetch_misses <= stats.prefetched_blocks
