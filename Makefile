# PrORAM reproduction -- common workflows.

PYTHON ?= python

.PHONY: install test bench bench-fast profile shards parallel interconnect treetop trace serve soak chaos examples gallery audit clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-fast:
	REPRO_FAST=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

profile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_throughput.py
	PYTHONPATH=src $(PYTHON) -m repro run -w locality:80 -s dyn --accesses 20000 --warmup 0 --profile

shards:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shards.py
	PYTHONPATH=src $(PYTHON) -m repro run -w locality:80 -s dyn --accesses 20000 --warmup 0 --shards 4

parallel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_parallel.py
	PYTHONPATH=src $(PYTHON) -m repro parallel -w locality:80 -s dyn --parallel-workers 4 --accesses 8000 --fsck

interconnect:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_interconnect.py
	PYTHONPATH=src $(PYTHON) -m repro run -w locality:80 -s dyn --accesses 20000 --warmup 0 --dram-model channel --channels 4

treetop:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_treetop.py
	PYTHONPATH=src $(PYTHON) -m repro run -w locality:80 -s dyn --accesses 20000 --warmup 0 --dram-model channel --channels 4 --treetop 4

trace:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_trace_overhead.py
	PYTHONPATH=src $(PYTHON) -m repro metrics -w locality:80 -s dyn --accesses 20000

serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py
	PYTHONPATH=src $(PYTHON) -m repro serve -s dyn --shards 4 --tenants 4 --requests 400 --metrics

soak:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_soak_faults.py

chaos:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/oblivious_kv_store.py
	$(PYTHON) examples/database_oram.py
	$(PYTHON) examples/timing_channel_demo.py
	$(PYTHON) examples/real_programs.py
	$(PYTHON) examples/stash_pressure.py
	$(PYTHON) examples/multicore_contention.py

gallery:
	$(PYTHON) examples/figure_gallery.py

audit:
	$(PYTHON) -m repro audit -w ocean_c -s dyn

clean:
	rm -rf build src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
