"""Figure 14 -- sweeping the cacheline (ORAM block) size (section 5.5.5).

Completion time normalized to the insecure DRAM system at 64, 128 and
256-byte lines.  Paper finding: "the behaviors of dynamic and static super
block schemes do not change" -- the scheme ordering is stable across line
sizes.
"""

from benchmarks.figutils import ACCESSES, WARMUP, benchmark_trace, record_table
from repro.analysis.experiments import experiment_config, run_schemes

LINE_SIZES = [64, 128, 256]
SCHEMES = ["dram", "oram", "stat", "dyn"]


def run_workload(name):
    rows = []
    outcomes = {}
    trace = benchmark_trace(name, accesses=ACCESSES)
    for line in LINE_SIZES:
        config = experiment_config().with_block_bytes(line)
        res = run_schemes(trace, SCHEMES, config=config, warmup_fraction=WARMUP)
        dram = res["dram"]
        normalized = {s: res[s].normalized_completion_time(dram) for s in ("oram", "stat", "dyn")}
        outcomes[line] = normalized
        rows.append([f"{line} B", normalized["oram"], normalized["stat"], normalized["dyn"]])
    return rows, outcomes


def test_fig14_ocean_c(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("ocean_c",), rounds=1, iterations=1)
    record_table(
        "fig14a_cacheline_ocean_c",
        "Figure 14a: cacheline size sweep, ocean_c (completion time / DRAM)",
        ["line", "oram", "stat", "dyn"],
        rows,
    )
    # The scheme ordering is stable: dyn <= baseline at every line size.
    for line, norm in outcomes.items():
        assert norm["dyn"] < norm["oram"], f"dyn lost at {line}B lines"


def test_fig14_volrend(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("volrend",), rounds=1, iterations=1)
    record_table(
        "fig14b_cacheline_volrend",
        "Figure 14b: cacheline size sweep, volrend (completion time / DRAM)",
        ["line", "oram", "stat", "dyn"],
        rows,
    )
    for line, norm in outcomes.items():
        assert abs(norm["dyn"] - norm["oram"]) / norm["oram"] < 0.06
