#!/usr/bin/env python
"""Fault-injection soak: the self-healing KV store under sustained abuse.

Drives the :class:`repro.faults.ResilientKVStore` through a long mixed
put/get/delete workload (50,000 accesses by default) while the
:class:`repro.faults.FaultInjector` corrupts the untrusted storage with
every fault class at once -- bucket bit-flips, stale-bucket replays,
transient read failures, delayed responses.  Every read is verified
against a shadow dict *as it happens*, and a final full sweep re-checks
every key ever written, so the pass criterion is literal:

* **zero** lost or stale acknowledged writes, ever;
* **nonzero** retry and recovery counters (the ladder actually ran);
* a clean ``fsck`` audit of the surviving store.

The run is deterministic: the same ``--fault-seed`` reproduces the same
fault schedule and the same counters, byte for byte.  Counters land in
``BENCH_soak.json`` for CI to archive.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_soak_faults.py
    PYTHONPATH=src python benchmarks/bench_soak_faults.py --ops 5000 -o /tmp/soak.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ORAMConfig
from repro.faults import FaultConfig, ResilienceConfig, ResilientKVStore
from repro.faults.fsck import run_fsck
from repro.utils.rng import DeterministicRng

DEFAULT_OPS = 50_000

#: store geometry: big enough for realistic path depth, small enough that
#: 50k accesses finish in minutes
ORAM_LEVELS = 7
#: mixed fault cocktail (rates are per path access)
BITFLIP_RATE = 0.004
REPLAY_RATE = 0.002
TRANSIENT_RATE = 0.01
DELAY_RATE = 0.005
START_AFTER = 50


def soak(ops: int, fault_seed: int, workload_seed: int, checkpoint_interval: int):
    """Run the soak; returns (elapsed_sec, store, mismatches, final_checked)."""
    config = ORAMConfig(
        levels=ORAM_LEVELS, bucket_size=4, stash_blocks=60, utilization=0.5
    )
    faults = FaultConfig(
        seed=fault_seed,
        bitflip_rate=BITFLIP_RATE,
        replay_rate=REPLAY_RATE,
        transient_rate=TRANSIENT_RATE,
        delay_rate=DELAY_RATE,
        start_after=START_AFTER,
    )
    store = ResilientKVStore(
        config,
        fault_config=faults,
        resilience=ResilienceConfig(checkpoint_interval=checkpoint_interval),
        seed=5,
    )
    shadow = {}
    rng = DeterministicRng(workload_seed)
    mismatches = 0
    start = time.perf_counter()
    for i in range(ops):
        key = rng.randbelow(store.capacity)
        op = rng.randbelow(100)
        if op < 55:
            value = bytes([i % 251]) * (1 + rng.randbelow(8))
            store.put(key, value)
            shadow[key] = value
        elif op < 95:
            if store.get(key) != shadow.get(key):
                mismatches += 1
                print(f"op {i}: MISMATCH on key {key}", file=sys.stderr)
        else:
            store.delete(key)
            shadow.pop(key, None)
        if (i + 1) % 10_000 == 0:
            rs = store.recovery
            print(
                f"  {i + 1}/{ops} ops: {store.fault_stats.total_injected} faults "
                f"injected, {rs.retries} retries, {rs.recoveries} recoveries"
            )
    # Final sweep: every key ever acknowledged must read back exactly.
    for key, value in shadow.items():
        if store.get(key) != value:
            mismatches += 1
            print(f"final sweep: MISMATCH on key {key}", file=sys.stderr)
    elapsed = time.perf_counter() - start
    return elapsed, store, mismatches, len(shadow)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--workload-seed", type=int, default=99)
    parser.add_argument("--checkpoint-interval", type=int, default=256)
    parser.add_argument(
        "-o", "--output", default="BENCH_soak.json",
        help="JSON artifact path (default: BENCH_soak.json)",
    )
    args = parser.parse_args(argv)
    if args.ops < 1:
        parser.error("--ops must be >= 1")

    print(
        f"soak: {args.ops} KV accesses, fault seed {args.fault_seed} "
        f"(bitflip {BITFLIP_RATE}, replay {REPLAY_RATE}, "
        f"transient {TRANSIENT_RATE}, delay {DELAY_RATE})"
    )
    elapsed, store, mismatches, live_keys = soak(
        args.ops, args.fault_seed, args.workload_seed, args.checkpoint_interval
    )
    report = run_fsck(store.oram)
    fault_stats = store.fault_stats.as_dict()
    recovery_stats = store.recovery.as_dict()

    print(f"\ncompleted in {elapsed:.1f}s ({args.ops / elapsed:,.0f} ops/sec)")
    print(f"live keys: {live_keys}, mismatches: {mismatches}")
    print("faults injected:", fault_stats)
    print("recovery ladder:", recovery_stats)
    print(report.summary())

    ok = (
        mismatches == 0
        and report.ok
        and fault_stats["total_injected"] > 0
        and recovery_stats["retries"] > 0
        and recovery_stats["recoveries"] > 0
    )

    artifact = {
        "ops": args.ops,
        "fault_seed": args.fault_seed,
        "workload_seed": args.workload_seed,
        "checkpoint_interval": args.checkpoint_interval,
        "elapsed_sec": elapsed,
        "ops_per_sec": args.ops / elapsed,
        "live_keys": live_keys,
        "mismatches": mismatches,
        "fsck_clean": report.ok,
        "fault_rates": {
            "bitflip": BITFLIP_RATE,
            "replay": REPLAY_RATE,
            "transient": TRANSIENT_RATE,
            "delay": DELAY_RATE,
            "start_after": START_AFTER,
        },
        "fault_stats": fault_stats,
        "recovery_stats": recovery_stats,
        "pass": ok,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.output}")
    if not ok:
        print("SOAK FAILED", file=sys.stderr)
        return 1
    print("SOAK PASS: zero lost/stale acknowledged writes under sustained faults")
    return 0


if __name__ == "__main__":
    sys.exit(main())
