"""Figure 7 -- sweeping the (maximum) super block size (section 5.3.3).

The 100%-locality synthetic is run with super block size 2, 4 and 8.  The
paper's shape: the static scheme degrades quickly as sbsize grows (more
blocks per fetch means more background evictions), while the dynamic scheme
throttles merging through adaptive thresholding and stays flat/positive.
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.workloads.synthetic import sequential_trace

from benchmarks.figutils import FAST, WARMUP, record_table

# Shorter traces than the other figures: the sbsize-4/8 static runs spend
# most of their time in background-eviction storms, and the relative
# positions converge quickly.  The footprint is smaller so the dynamic
# scheme's merge training completes within even the fast traces.
ACCESSES = 25_000 if FAST else 50_000
FOOTPRINT = 8_192
SIZES = [2, 4, 8]
STRICT = not FAST


def run_figure():
    rows = []
    outcomes = {}
    trace = sequential_trace(footprint_blocks=FOOTPRINT, accesses=ACCESSES)
    for size in SIZES:
        config = experiment_config(max_super_block_size=size)
        res = run_schemes(
            trace, ["oram", "stat", "dyn"], config=config, warmup_fraction=WARMUP
        )
        stat = res["stat"].speedup_over(res["oram"])
        dyn = res["dyn"].speedup_over(res["oram"])
        stat_acc = res["stat"].normalized_memory_accesses(res["oram"])
        dyn_acc = res["dyn"].normalized_memory_accesses(res["oram"])
        outcomes[size] = (stat, dyn)
        rows.append([size, stat, dyn, stat_acc, dyn_acc])
    return rows, outcomes


def test_fig07_super_block_size(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "fig07_sbsize_sweep",
        "Figure 7: super block size sweep (100% locality synthetic)",
        ["sbsize", "stat", "dyn", "stat_norm_acc", "dyn_norm_acc"],
        rows,
    )
    # The static scheme degrades as sbsize grows; the throttled dynamic
    # scheme loses far less between sbsize 2 and 8.
    assert outcomes[8][0] < outcomes[2][0]
    stat_drop = outcomes[2][0] - outcomes[8][0]
    dyn_drop = outcomes[2][1] - outcomes[8][1]
    assert dyn_drop < stat_drop + 0.05
    # The dynamic scheme never collapses below the baseline.
    assert all(dyn > -0.05 for _, dyn in outcomes.values())
    if STRICT:
        # Both gain at sbsize 2 on a perfectly sequential workload.
        assert outcomes[2][0] > 0.1 and outcomes[2][1] > 0.1
