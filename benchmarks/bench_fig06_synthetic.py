"""Figures 6a and 6b -- the synthetic locality studies (section 5.3).

* Figure 6a sweeps the fraction of data with spatial locality (Z = 4, as in
  the paper's synthetic experiments).  Expected shape: the static scheme is
  negative at low locality and rises with it; the dynamic scheme tracks the
  baseline at zero locality (never loses), gains with locality, and
  approaches the static scheme at 100%.
* Figure 6b runs the phase-change workload against the Figure 6b legend:
  ``static`` (the static scheme), ``sm_nb`` (static-threshold merging, no
  breaking), ``am_nb`` (adaptive merging, no breaking) and ``am_ab``
  (adaptive merging + adaptive breaking -- full PrORAM).  Breaking must pay
  off under phase changes.
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.workloads.synthetic import locality_mix_trace, phase_change_trace

from benchmarks.figutils import FAST, WARMUP, record_table

ACCESSES = 30_000 if FAST else 90_000
#: Figure 6b ignores REPRO_FAST: merge training takes two passes per phase,
#: so the phase-change comparison is meaningless on short traces.
ACCESSES_6B = 90_000
FOOTPRINT = 12_288
LOCALITIES = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def run_fig6a():
    config = experiment_config()
    rows = []
    series = {}
    for locality in LOCALITIES:
        trace = locality_mix_trace(locality, footprint_blocks=FOOTPRINT, accesses=ACCESSES)
        res = run_schemes(trace, ["oram", "stat", "dyn"], config=config, warmup_fraction=WARMUP)
        stat = res["stat"].speedup_over(res["oram"])
        dyn = res["dyn"].speedup_over(res["oram"])
        series[locality] = (stat, dyn)
        rows.append([f"{locality:.1f}", stat, dyn])
    return rows, series


def test_fig06a_locality_sweep(benchmark):
    rows, series = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    record_table(
        "fig06a_locality_sweep",
        "Figure 6a: locality sweep, speedup over baseline ORAM (Z=4)",
        ["locality", "stat", "dyn"],
        rows,
    )
    # dyn never loses; it tracks the baseline with no locality ...
    assert all(dyn > -0.03 for _, dyn in series.values())
    assert abs(series[0.0][1]) < 0.03
    # ... the static scheme is negative with no locality ...
    assert series[0.0][0] < 0.0
    # ... and locality pays for both schemes.
    assert series[1.0][1] > 0.15
    assert series[1.0][0] > 0.15
    assert series[1.0][1] > series[0.2][1]


def run_fig6b():
    # Phases must be long enough for merge training (2 passes over the
    # sequential half) *and* for the stale super blocks to be re-touched
    # and broken after the switch; the slightly higher utilization makes
    # stale merges cost what the paper charges them (background evictions).
    config = experiment_config(utilization=0.72)
    trace = phase_change_trace(
        num_phases=3, footprint_blocks=12_288, accesses=ACCESSES_6B
    )
    labels = {
        "static": "stat",
        "sm_nb": "dyn_sm_nb",
        "am_nb": "dyn_am_nb",
        "am_ab": "dyn_am_ab",
    }
    res = run_schemes(trace, list(labels.values()) + ["oram"], config=config, warmup_fraction=0.3)
    rows = []
    outcomes = {}
    for label, scheme in labels.items():
        speedup = res[scheme].speedup_over(res["oram"])
        norm = res[scheme].normalized_memory_accesses(res["oram"])
        outcomes[label] = (speedup, norm, res[scheme].breaks, res[scheme].dummy_accesses)
        rows.append([label, speedup, norm])
    return rows, outcomes


def test_fig06b_phase_change(benchmark):
    rows, outcomes = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    record_table(
        "fig06b_phase_change",
        "Figure 6b: phase change, speedup and normalized memory accesses",
        ["scheme", "speedup", "norm_accesses"],
        rows,
    )
    # The paper's ordering under phase changes: the static scheme loses,
    # the dynamic variants win, and the adaptive/breaking machinery beats
    # plain never-break merging.
    assert outcomes["static"][0] < 0.0
    assert outcomes["am_ab"][0] > outcomes["static"][0]
    assert outcomes["am_ab"][0] > outcomes["sm_nb"][0]
    assert outcomes["am_ab"][0] > 0.0
    # Breaking fires and saves background evictions (the energy channel).
    assert outcomes["am_ab"][2] > 0
    assert outcomes["am_ab"][3] <= outcomes["am_nb"][3]
