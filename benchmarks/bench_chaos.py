#!/usr/bin/env python
"""Cross-layer chaos soak: the health control plane under a full storm.

Composes one seed-deterministic multi-fault storm -- worker kills, a
hung worker, bucket bit-flips, stale replays, transient read failures
and delayed responses -- across all three resilience layers at once
(self-healing KV store, process-parallel shard runtime, in-process
sharded bank) and gates the DESIGN.md §10 acceptance criteria:

* **zero lost writes** -- the KV shadow sweep stays clean and the
  parallel merge conserves every demand access exactly once;
* **hang detection** -- the stalled worker trips the heartbeat deadline
  and recovery stays inside the deadline-derived bound;
* **re-admission** -- every quarantined shard returns to HEALTHY
  through the half-open probe ladder;
* **leaf uniformity** -- the chi-squared monitor flags no window on the
  quarantined bank channels (the dummy-padding invariant).

The verdict and per-layer counters land in ``BENCH_chaos.json`` for CI
to archive; any failed gate exits 1.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --ops 4000 -o /tmp/chaos.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import ChaosScenario, chaos_policy, run_chaos

DEFAULT_OPS = 20_000


def build_scenario(ops: int, shards: int, seed: int) -> ChaosScenario:
    """Split the op budget 40/20/40 across parallel/kv/bank layers (the
    same split the ``repro chaos`` CLI uses)."""
    parallel_ops = (2 * ops) // 5
    return ChaosScenario(
        name="soak",
        seed=seed,
        num_shards=shards,
        parallel_ops=parallel_ops,
        kv_ops=ops - 2 * parallel_ops,
        bank_ops=parallel_ops,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help="total accesses across all layers")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--layers", default="kv,parallel,bank",
                        help="comma-separated subset of kv,parallel,bank")
    parser.add_argument("-o", "--output", default="BENCH_chaos.json")
    args = parser.parse_args(argv)

    scenario = build_scenario(args.ops, args.shards, args.seed)
    layers = tuple(layer.strip() for layer in args.layers.split(",") if layer.strip())
    start = time.perf_counter()
    report = run_chaos(scenario, chaos_policy(), layers=layers)
    elapsed = time.perf_counter() - start

    print(report.render())
    print(f"  wall clock: {elapsed:.1f} s")

    payload = report.as_dict()
    payload["elapsed_s"] = elapsed
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
