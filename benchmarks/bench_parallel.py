#!/usr/bin/env python
"""Wall-clock scaling benchmark for the process-parallel shard runtime.

``bench_shards`` shows the channel-interleaved bank wins *simulated*
cycles; this benchmark shows the :mod:`repro.parallel` runtime turns that
into real wall-clock time.  The workload is the 4-core pointer-chase from
``bench_shards`` (disjoint per-core regions, every miss reaches the
ORAM): its LLC-miss stream is captured once via
:func:`repro.sim.multicore.capture_miss_stream`, then replayed through

* the in-process serial :class:`~repro.controller.sharded.ShardedORAMBank`
  (the golden oracle), and
* a :class:`~repro.parallel.runtime.ParallelShardRuntime` at 1, 2, and 4
  workers.

Every parallel result must be bit-identical to the serial merge at the
same width.  The wall-clock acceptance gate -- >= 1.8x at 4 workers over
the serial 4-shard replay -- is enforced only when the machine has at
least 4 usable CPUs (the CI runners do); on smaller hosts the bit-identity
checks still run and the gate reports SKIPPED.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --references 4000

Writes ``BENCH_parallel.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_shards import REGION, hungry_trace  # noqa: E402

from repro.analysis.experiments import experiment_config  # noqa: E402
from repro.parallel import ParallelShardRuntime, run_serial_reference  # noqa: E402
from repro.sim.multicore import capture_miss_stream  # noqa: E402

SCHEME = "dyn"
CORES = 4
WORKER_COUNTS = [1, 2, 4]
ACCEPTANCE_SPEEDUP_AT_4 = 1.8
ACCEPTANCE_MIN_CPUS = 4


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--references", type=int, default=6_000, help="trace references per core"
    )
    parser.add_argument(
        "--batch", type=int, default=128, help="requests per shipped batch"
    )
    parser.add_argument("-o", "--output", default="BENCH_parallel.json")
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the speedup/identity assertions",
    )
    args = parser.parse_args(argv)
    if args.references < 1:
        parser.error("--references must be >= 1")

    config = experiment_config()
    traces = [
        hungry_trace(core, CORES, args.references, 10 + core)
        for core in range(CORES)
    ]
    footprint = REGION * CORES
    print(f"capturing the {CORES}-core pointer-chase miss stream ...")
    requests = capture_miss_stream(SCHEME, traces, config=config, num_shards=4)
    print(f"{len(requests)} demand requests over {footprint} blocks")

    cpus = usable_cpus()
    rows = []
    identical_everywhere = True
    serial_wall_by_width = {}
    for workers in WORKER_COUNTS:
        begin = time.perf_counter()
        serial = run_serial_reference(
            SCHEME, footprint, requests, config, num_shards=workers
        )
        serial_wall = time.perf_counter() - begin
        serial_wall_by_width[workers] = serial_wall
        with tempfile.TemporaryDirectory(prefix="bench-parallel-") as ckpt:
            with ParallelShardRuntime(
                SCHEME,
                footprint,
                config,
                workers,
                checkpoint_dir=ckpt,
                checkpoint_every=0,  # genesis only: measure compute, not I/O
                batch_size=args.batch,
            ) as runtime:
                begin = time.perf_counter()
                parallel = runtime.run(requests)
                parallel_wall = time.perf_counter() - begin
        identical = dataclasses.asdict(parallel) == dataclasses.asdict(serial)
        identical_everywhere = identical_everywhere and identical
        speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
        rows.append(
            {
                "workers": workers,
                "serial_wall_s": round(serial_wall, 4),
                "parallel_wall_s": round(parallel_wall, 4),
                "wall_speedup": round(speedup, 3),
                "sim_cycles": parallel.cycles,
                "bit_identical": identical,
            }
        )
        print(
            f"{workers} worker(s): serial {serial_wall:6.2f}s  "
            f"parallel {parallel_wall:6.2f}s  ({speedup:.2f}x)  "
            + ("bit-identical" if identical else "MISMATCH")
        )

    speedup_at_4 = rows[-1]["wall_speedup"]
    gate_applies = cpus >= ACCEPTANCE_MIN_CPUS
    gate_pass = speedup_at_4 >= ACCEPTANCE_SPEEDUP_AT_4
    if gate_applies:
        print(
            f"4-worker wall-clock speedup {speedup_at_4:.2f}x "
            f"(acceptance floor {ACCEPTANCE_SPEEDUP_AT_4:.1f}x): "
            + ("PASS" if gate_pass else "FAIL")
        )
    else:
        print(
            f"4-worker wall-clock speedup {speedup_at_4:.2f}x -- gate "
            f"SKIPPED ({cpus} usable CPU(s) < {ACCEPTANCE_MIN_CPUS}; "
            "bit-identity still enforced)"
        )
    print(
        "merged results: "
        + ("all bit-identical to serial" if identical_everywhere else "MISMATCH")
    )

    artifact = {
        "workload": "multicore_hungry",
        "scheme": SCHEME,
        "cores": CORES,
        "references_per_core": args.references,
        "region_blocks": REGION,
        "requests": len(requests),
        "batch_size": args.batch,
        "usable_cpus": cpus,
        "results": rows,
        "speedup_at_4_workers": speedup_at_4,
        "acceptance_floor": ACCEPTANCE_SPEEDUP_AT_4,
        "acceptance_gate_applied": gate_applies,
        "acceptance_pass": bool(gate_pass or not gate_applies),
        "bit_identical": identical_everywhere,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.no_assert:
        return 0
    if not identical_everywhere:
        return 1
    if gate_applies and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
