"""Ablation -- the unified-ORAM PosMap block cache (PLB), section 2.3.

The baseline design caches PosMap blocks on-chip so most requests need a
single path access; without the cache every request walks the whole
recursion (here 3 extra path accesses).  This ablation sweeps the cache
capacity on a memory-bound workload and shows where the paper's "one order
of magnitude more latency" would become far worse without unified caching.
"""

from benchmarks.figutils import ACCESSES, WARMUP, benchmark_trace, record_table
from repro.analysis.experiments import experiment_config, run_schemes

CACHE_SIZES = [0, 8, 128]


def run_figure():
    trace = benchmark_trace("mcf", accesses=ACCESSES)
    rows = []
    outcomes = {}
    for entries in CACHE_SIZES:
        config = experiment_config(posmap_cache_entries=entries)
        res = run_schemes(trace, ["oram"], config=config, warmup_fraction=WARMUP)["oram"]
        extra_per_request = res.posmap_accesses / max(1, res.demand_requests)
        outcomes[entries] = (res.cycles, extra_per_request)
        rows.append([entries, res.cycles, extra_per_request, res.posmap_cache_hit_rate])
    return rows, outcomes


def test_ablation_plb(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "ablation_plb",
        "Ablation: PosMap block cache capacity (mcf, baseline ORAM)",
        ["plb_entries", "cycles", "extra_paths_per_request", "hit_rate"],
        rows,
    )
    # No cache: the full 3-level walk on every request.
    assert outcomes[0][1] > 2.9
    # The default cache removes most of the recursion cost.
    assert outcomes[128][1] < 1.5
    assert outcomes[128][0] < outcomes[0][0]
