"""Figure 10 -- sweeping the merge/break coefficients of Equation 1.

``mXbY`` sets Cmerge = X, Cbreak = Y.  The paper's findings: for workloads
with good spatial locality, smaller merge coefficients merge earlier and
perform (mildly) better; for bad-locality workloads (volrend) the
coefficient barely matters because merging rarely happens at all.  The
paper settles on Cmerge = Cbreak = 1.
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.core.thresholds import AdaptiveThresholdPolicy

from benchmarks.figutils import (
    WARMUP,
    benchmark_trace,
    record_table,
    run_benchmark_schemes,
)

#: full-length traces regardless of REPRO_FAST: coefficient effects only
#: show once merge training has room to differ
ACCESSES = 80_000

WORKLOADS = ["fft", "ocean_c", "ocean_nc", "volrend"]
COEFFICIENTS = [(1, 1), (2, 2), (4, 1), (4, 4), (8, 8)]


def run_figure():
    rows = []
    outcomes = {}
    for name in WORKLOADS:
        base = run_benchmark_schemes(name, ["oram"], accesses=ACCESSES)
        trace = benchmark_trace(name, accesses=ACCESSES)
        row = [name]
        for c_merge, c_break in COEFFICIENTS:
            # The session cache keys on (workload, scheme); coefficients
            # change the policy, so these runs go direct.
            fresh = run_schemes(
                trace,
                ["dyn"],
                config=experiment_config(),
                warmup_fraction=WARMUP,
                policy_factory=lambda cm=c_merge, cb=c_break: AdaptiveThresholdPolicy(
                    c_merge=cm, c_break=cb
                ),
            )
            speedup = fresh["dyn"].speedup_over(base["oram"])
            outcomes[(name, c_merge, c_break)] = speedup
            row.append(speedup)
        rows.append(row)
    return rows, outcomes


def test_fig10_coefficients(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    headers = ["workload"] + [f"m{m}b{b}" for m, b in COEFFICIENTS]
    record_table(
        "fig10_coefficients",
        "Figure 10: merge/break coefficient sweep, dyn speedup over baseline",
        headers,
        rows,
    )
    # Locality-rich workloads gain under every coefficient ...
    for name in ("fft", "ocean_c", "ocean_nc"):
        assert outcomes[(name, 1, 1)] > 0.1
    # ... and volrend is insensitive: merging rarely triggers regardless.
    volrend = [outcomes[(("volrend"), m, b)] for m, b in COEFFICIENTS]
    assert max(volrend) - min(volrend) < 0.08
    assert all(abs(v) < 0.08 for v in volrend)
