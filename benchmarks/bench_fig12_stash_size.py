"""Figure 12 -- sweeping the stash size (section 5.5.3).

Completion time normalized to the insecure DRAM system.  Paper shape: the
baseline ORAM barely cares (its background eviction rate is already low);
the super block schemes improve with stash size because multiple blocks
enter the stash per access; and the dynamic scheme shows significant gains
even at small stash sizes, unlike the static scheme.
"""

from benchmarks.figutils import ACCESSES, WARMUP, benchmark_trace, record_table
from repro.analysis.experiments import experiment_config, run_schemes

STASH_SIZES = [25, 50, 100, 200, 400]
SCHEMES = ["dram", "oram", "stat", "dyn"]


def run_workload(name):
    rows = []
    outcomes = {}
    trace = benchmark_trace(name, accesses=ACCESSES)
    for stash in STASH_SIZES:
        config = experiment_config(stash_blocks=stash)
        res = run_schemes(trace, SCHEMES, config=config, warmup_fraction=WARMUP)
        dram = res["dram"]
        normalized = {s: res[s].normalized_completion_time(dram) for s in ("oram", "stat", "dyn")}
        outcomes[stash] = normalized
        rows.append([stash, normalized["oram"], normalized["stat"], normalized["dyn"]])
    return rows, outcomes


def test_fig12_ocean_c(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("ocean_c",), rounds=1, iterations=1)
    record_table(
        "fig12a_stash_size_ocean_c",
        "Figure 12a: stash size sweep, ocean_c (completion time / DRAM)",
        ["stash", "oram", "stat", "dyn"],
        rows,
    )
    # The baseline is insensitive to stash size ...
    oram_vals = [norm["oram"] for norm in outcomes.values()]
    assert max(oram_vals) - min(oram_vals) < 0.15 * min(oram_vals)
    # ... super block schemes gain from a larger stash ...
    assert outcomes[400]["stat"] <= outcomes[25]["stat"]
    # ... and dyn beats the baseline already at a small stash.
    assert outcomes[50]["dyn"] < outcomes[50]["oram"]


def test_fig12_volrend(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("volrend",), rounds=1, iterations=1)
    record_table(
        "fig12b_stash_size_volrend",
        "Figure 12b: stash size sweep, volrend (completion time / DRAM)",
        ["stash", "oram", "stat", "dyn"],
        rows,
    )
    # No locality: dyn tracks the baseline at every stash size.
    for norm in outcomes.values():
        assert abs(norm["dyn"] - norm["oram"]) / norm["oram"] < 0.05
