"""Extension -- core-count scaling on one shared ORAM controller.

The paper's platform shares a single memory controller among tiles
(section 5.1, "we assume there is only one memory controller on the
chip"), and a single ORAM access saturates it (section 2.6).  This
benchmark measures how completion time scales with co-running cores and
whether PrORAM's access savings survive contention.
"""

from repro.analysis.experiments import experiment_config
from repro.sim.multicore import MultiCoreSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

from benchmarks.figutils import FAST, record_table

REFERENCES = 8_000 if FAST else 16_000
#: per-core private region; cores work on DISJOINT data (the contention
#: case -- identical co-runners would share fetches through the LLC)
REGION = 2_048
CORE_COUNTS = [1, 2, 4]


def hungry_trace(core: int, total_cores: int, seed: int) -> Trace:
    rng = DeterministicRng(seed)
    base = core * REGION
    trace = Trace(f"hungry{core}", footprint_blocks=REGION * total_cores)
    pointer = 0
    for _ in range(REFERENCES):
        if rng.random() < 0.8:
            addr = base + pointer
            pointer = (pointer + 1) % REGION
        else:
            addr = base + rng.randint(0, REGION - 1)
        trace.append(rng.expovariate_int(120), addr)
    return trace


def run(scheme: str, cores: int) -> int:
    traces = [hungry_trace(i, cores, 10 + i) for i in range(cores)]
    system = MultiCoreSystem.build(scheme, traces, config=experiment_config())
    results = system.run(traces)
    system.backend.oram.check_invariants()
    return max(r.cycles for r in results)


def run_figure():
    rows = []
    outcomes = {}
    for cores in CORE_COUNTS:
        oram_cycles = run("oram", cores)
        dyn_cycles = run("dyn", cores)
        gain = oram_cycles / dyn_cycles - 1
        outcomes[cores] = (oram_cycles, dyn_cycles, gain)
        rows.append([cores, oram_cycles, dyn_cycles, gain])
    return rows, outcomes


def test_extension_multicore(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "extension_multicore",
        "Extension: core-count scaling on one shared ORAM controller",
        ["cores", "oram_cycles", "dyn_cycles", "dyn_gain"],
        rows,
    )
    # The serialized controller makes co-runners pay: 4 cores take far
    # longer than 1 (they share one access stream).
    assert outcomes[4][0] > 2 * outcomes[1][0]
    # PrORAM's gain survives (and matters) under contention.
    assert outcomes[4][2] > 0.05
