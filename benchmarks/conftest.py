"""Benchmark-suite plumbing: print every recorded figure table at the end."""

from __future__ import annotations

from benchmarks.figutils import FAST, RECORDED_TABLES


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RECORDED_TABLES:
        return
    terminalreporter.section("PrORAM figure reproductions")
    if FAST:
        terminalreporter.write_line(
            "(REPRO_FAST=1: shortened traces; see EXPERIMENTS.md for full runs)\n"
        )
    for name in sorted(RECORDED_TABLES):
        terminalreporter.write_line(RECORDED_TABLES[name])
