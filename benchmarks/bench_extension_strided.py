"""Extension -- strided super blocks (the paper's section 6.2 future work).

A workload that co-uses blocks at stride 4 (think: a struct-of-arrays
sweep, or matrix columns) gives the unit-stride scheme nothing to merge;
the strided extension finds the pairs and recovers the Figure 8-style
gains.  On an ordinary sequential workload the extension matches the
unit-stride scheme (stride 1 is in its candidate set).
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

from benchmarks.figutils import FAST, WARMUP, record_table

SWEEPS = 4 if FAST else 10
FOOTPRINT = 8_192
STRIDE = 4


def strided_trace() -> Trace:
    """Co-use (a, a+STRIDE); the intermediate lanes are never touched.

    Only blocks with ``addr % (2*STRIDE) in {0, STRIDE}`` are accessed, so
    unit-stride neighbors are never co-resident (they are never accessed at
    all) and only a strided scheme has anything to merge.
    """
    rng = DeterministicRng(12)
    trace = Trace("strided_scan", footprint_blocks=FOOTPRINT)
    for _ in range(SWEEPS):
        for base in range(0, FOOTPRINT, 2 * STRIDE):
            trace.append(rng.expovariate_int(60), base)
            trace.append(rng.expovariate_int(60), base + STRIDE)
    return trace


def run_figure():
    trace = strided_trace()
    res = run_schemes(
        trace,
        ["oram", "dyn", "dyn_strided"],
        config=experiment_config(),
        warmup_fraction=WARMUP,
    )
    base = res["oram"]
    rows = []
    outcomes = {}
    for scheme in ("dyn", "dyn_strided"):
        speedup = res[scheme].speedup_over(base)
        outcomes[scheme] = (speedup, res[scheme].merges, res[scheme].prefetch_hits)
        rows.append([scheme, speedup, res[scheme].merges, res[scheme].prefetch_hits])
    return rows, outcomes


def test_extension_strided(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "extension_strided",
        f"Section 6.2 extension: stride-{STRIDE} co-use workload, speedup over baseline",
        ["scheme", "speedup", "merges_in_window", "prefetch_hits"],
        rows,
    )
    # The strided extension harvests what the unit-stride scheme cannot.
    assert outcomes["dyn_strided"][0] > outcomes["dyn"][0] + 0.03
    assert outcomes["dyn_strided"][2] > outcomes["dyn"][2]
    # And the unit-stride scheme at least does no harm here.
    assert outcomes["dyn"][0] > -0.04