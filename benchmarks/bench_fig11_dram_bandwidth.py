"""Figure 11 -- sweeping the DRAM pin bandwidth (section 5.5.2).

Completion time normalized to the insecure DRAM system at the same
bandwidth.  Paper shape: on a memory-intensive, locality-rich workload
(ocean_contiguous) the dynamic scheme's gain is consistent across
bandwidths; on a no-locality workload (volrend) dyn tracks the baseline
while the static scheme trails both.
"""

from dataclasses import replace

from repro.analysis.experiments import experiment_config, run_schemes

from benchmarks.figutils import ACCESSES, WARMUP, benchmark_trace, record_table

BANDWIDTHS = [4.0, 8.0, 16.0]
SCHEMES = ["dram", "oram", "stat", "dyn"]


def run_workload(name):
    rows = []
    outcomes = {}
    trace = benchmark_trace(name, accesses=ACCESSES)
    for bandwidth in BANDWIDTHS:
        config = experiment_config()
        config = replace(config, dram=replace(config.dram, bandwidth_gbps=bandwidth))
        res = run_schemes(trace, SCHEMES, config=config, warmup_fraction=WARMUP)
        dram = res["dram"]
        normalized = {s: res[s].normalized_completion_time(dram) for s in ("oram", "stat", "dyn")}
        outcomes[bandwidth] = normalized
        rows.append([f"{bandwidth:.0f} GB/s", normalized["oram"], normalized["stat"], normalized["dyn"]])
    return rows, outcomes


def test_fig11_ocean_c(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("ocean_c",), rounds=1, iterations=1)
    record_table(
        "fig11a_dram_bandwidth_ocean_c",
        "Figure 11a: DRAM bandwidth sweep, ocean_c (completion time / DRAM)",
        ["bandwidth", "oram", "stat", "dyn"],
        rows,
    )
    for bandwidth, norm in outcomes.items():
        # dyn's gain over the baseline persists at every bandwidth.
        assert norm["dyn"] < norm["oram"]
    # Lower bandwidth = relatively heavier ORAM.
    assert outcomes[4.0]["oram"] > outcomes[16.0]["oram"]


def test_fig11_volrend(benchmark):
    rows, outcomes = benchmark.pedantic(run_workload, args=("volrend",), rounds=1, iterations=1)
    record_table(
        "fig11b_dram_bandwidth_volrend",
        "Figure 11b: DRAM bandwidth sweep, volrend (completion time / DRAM)",
        ["bandwidth", "oram", "stat", "dyn"],
        rows,
    )
    for bandwidth, norm in outcomes.items():
        # No locality: dyn tracks the baseline; stat trails both.
        assert abs(norm["dyn"] - norm["oram"]) / norm["oram"] < 0.05
        assert norm["stat"] >= norm["dyn"] * 0.98
