"""Figure 5 -- traditional data prefetching on DRAM vs ORAM.

Paper result: a stream prefetcher gains on DRAM-based systems (positive
speedup bars) but does not help -- and can hurt -- on ORAM, because a
single ORAM access already saturates the channel and prefetches block
demand requests (section 5.2).

Series: dram_pre = speedup of (DRAM + prefetcher) over DRAM;
        oram_pre = speedup of (ORAM + prefetcher) over ORAM.
"""

from benchmarks.figutils import record_table, run_benchmark_schemes, suite_average

WORKLOADS = ["barnes", "cholesky", "lu_nc", "raytrace", "ocean_c", "ocean_nc"]


#: the fully memory-bound entries, where the paper's effect is starkest
MEMORY_BOUND = ["ocean_c", "ocean_nc"]


def run_figure():
    rows = []
    gains = {}
    for name in WORKLOADS:
        res = run_benchmark_schemes(name, ["dram", "dram_pre", "oram", "oram_pre"])
        dram_gain = res["dram_pre"].speedup_over(res["dram"])
        oram_gain = res["oram_pre"].speedup_over(res["oram"])
        gains[name] = (dram_gain, oram_gain)
        rows.append([name, dram_gain, oram_gain])
    rows.append(
        ["avg", suite_average(g[0] for g in gains.values()), suite_average(g[1] for g in gains.values())]
    )
    return rows, gains


def test_fig05_traditional_prefetch(benchmark):
    rows, gains = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "fig05_traditional_prefetch",
        "Figure 5: traditional prefetching, speedup over the unprefetched system",
        ["workload", "dram_pre", "oram_pre"],
        rows,
    )
    # Shape (section 3.1): "prefetching only works when DRAM has extra
    # bandwidth" -- on the memory-bound workloads the ORAM has none, so
    # the prefetcher's ORAM gain collapses while its DRAM gain is largest.
    for name in MEMORY_BOUND:
        dram_gain, oram_gain = gains[name]
        assert dram_gain > 0.0
        assert oram_gain < dram_gain
        assert oram_gain < 0.05
    # And nowhere does traditional ORAM prefetching approach PrORAM's
    # 20-40% gains on these same workloads (Figure 8a).
    assert all(gain[1] < 0.12 for gain in gains.values())
