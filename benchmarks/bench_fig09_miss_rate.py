"""Figure 9 -- prefetch miss rates of the static and dynamic schemes.

"On average, the dynamic super block scheme lowers the overall prefetch
miss rate of static super block from 48.6% to 37.1% for Splash2 benchmarks
and from 55.5% to 34.8% for SPEC06."  water-* are excluded (they barely
access the ORAM).

The runs are shared with the Figure 8 benchmarks through the session cache,
so this figure costs almost nothing extra.
"""

from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_MISS_RATE_SET

from benchmarks.figutils import FAST, record_table, run_benchmark_schemes, suite_average

#: miss-rate comparisons need trained merge state (full traces)
STRICT = not FAST


def run_suite(names):
    rows = []
    rates = {}
    for name in names:
        res = run_benchmark_schemes(name, ["oram", "stat", "dyn"])
        stat_rate = res["stat"].prefetch_miss_rate
        dyn_rate = res["dyn"].prefetch_miss_rate
        rates[name] = (stat_rate, dyn_rate)
        rows.append([name, stat_rate, dyn_rate])
    rows.append(
        [
            "avg",
            suite_average(r[0] for r in rates.values()),
            suite_average(r[1] for r in rates.values()),
        ]
    )
    return rows, rates


def test_fig09a_splash2_miss_rate(benchmark):
    rows, rates = benchmark.pedantic(run_suite, args=(SPLASH2_MISS_RATE_SET,), rounds=1, iterations=1)
    record_table(
        "fig09a_splash2_miss_rate",
        "Figure 9a: prefetch miss rate, Splash2 (water_* excluded)",
        ["workload", "stat", "dyn"],
        rows,
    )
    # The locality-poor benchmarks are where selectivity shows first.
    assert rates["volrend"][1] <= rates["volrend"][0]
    assert rates["radix"][1] <= rates["radix"][0]
    if STRICT:
        # The dynamic scheme prefetches more selectively on average.
        stat_avg = suite_average(r[0] for r in rates.values())
        dyn_avg = suite_average(r[1] for r in rates.values())
        assert dyn_avg < stat_avg


def test_fig09b_spec06_miss_rate(benchmark):
    names = [p.name for p in SPEC06_PROFILES]
    rows, rates = benchmark.pedantic(run_suite, args=(names,), rounds=1, iterations=1)
    record_table(
        "fig09b_spec06_miss_rate",
        "Figure 9b: prefetch miss rate, SPEC06",
        ["workload", "stat", "dyn"],
        rows,
    )
    if STRICT:
        stat_avg = suite_average(r[0] for r in rates.values())
        dyn_avg = suite_average(r[1] for r in rates.values())
        assert dyn_avg < stat_avg
