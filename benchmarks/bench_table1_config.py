"""Table 1 -- system configuration and the derived Path ORAM latency.

The paper quotes a 2364-cycle Path ORAM latency for the default 8 GB / Z=3
configuration.  Our latency model derives the cost of one path access from
the nominal tree geometry and pin bandwidth; with the measured PosMap-cache
behaviour the average request latency lands in the same neighbourhood.
"""

from repro.config import ORAMConfig, SystemConfig
from repro.memory.timing import ORAMTimingModel

from benchmarks.figutils import record_table


def build_rows():
    config = SystemConfig(oram=ORAMConfig())  # Table 1 verbatim (Z=3)
    model = ORAMTimingModel.from_config(config.oram, config.dram)
    rows = [
        ["DRAM bandwidth", f"{config.dram.bandwidth_gbps:.0f} GB/s"],
        ["DRAM latency", f"{config.dram.latency_cycles} cycles"],
        ["ORAM capacity", f"{config.oram.capacity_bytes // 1024**3} GB"],
        ["block size", f"{config.oram.block_bytes} B"],
        ["Z", str(config.oram.bucket_size)],
        ["stash size", f"{config.oram.stash_blocks} blocks"],
        ["ORAM hierarchies", str(config.oram.num_hierarchies)],
        ["nominal tree levels", str(config.oram.nominal_levels)],
        ["bytes per path access", str(model.bytes_per_path)],
        ["cycles per path access", str(model.path_cycles)],
        ["request latency, PosMap cached", str(model.access_cycles(1))],
        ["request latency, 1 PosMap miss", str(model.access_cycles(2))],
        ["paper's quoted latency", "2364 cycles"],
    ]
    return model, rows


def test_table1_derived_latency(benchmark):
    model, rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table("table1_config", "Table 1: configuration and derived latency", ["parameter", "value"], rows)
    # The paper's 2364-cycle figure sits between the cached-PosMap case and
    # the one-extra-path case of our derivation.
    assert model.access_cycles(1) < 2364 < model.access_cycles(2)
