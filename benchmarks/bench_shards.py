#!/usr/bin/env python
"""Shard-count scaling benchmark for the channel-interleaved ORAM bank.

The paper's platform serializes every ORAM access through one memory
controller (section 2.6: a single access saturates the DRAM pins), so
co-running cores queue on one ``busy_until``.  The
:class:`~repro.controller.sharded.ShardedORAMBank` splits the tree into N
address-interleaved channels, each with its own controller and timing, so
misses to different channels overlap.  This benchmark measures *simulated*
completion time of the multicore pointer-chasing workload (the same
"hungry" traces as ``bench_extension_multicore``) as the shard count
grows, and asserts the acceptance floor: >= 1.3x simulated throughput at
4 shards over the single-controller baseline.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shards.py
    PYTHONPATH=src python benchmarks/bench_shards.py --cores 4 --references 4000

Writes ``BENCH_shards.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiments import experiment_config
from repro.faults import run_fsck_bank
from repro.sim.multicore import MultiCoreSystem
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

#: per-core private region (blocks); cores chase pointers in DISJOINT data
#: so every miss reaches the ORAM -- the worst case for a shared channel.
REGION = 2_048
SHARD_COUNTS = [1, 2, 4]
SCHEME = "dyn"
ACCEPTANCE_SPEEDUP_AT_4 = 1.3


def hungry_trace(core: int, total_cores: int, references: int, seed: int) -> Trace:
    """80% sequential pointer chase + 20% random, per-core private region."""
    rng = DeterministicRng(seed)
    base = core * REGION
    trace = Trace(f"hungry{core}", footprint_blocks=REGION * total_cores)
    pointer = 0
    for _ in range(references):
        if rng.random() < 0.8:
            addr = base + pointer
            pointer = (pointer + 1) % REGION
        else:
            addr = base + rng.randint(0, REGION - 1)
        trace.append(rng.expovariate_int(120), addr)
    return trace


def run(cores: int, references: int, num_shards: int) -> int:
    """Simulated cycles to finish all cores' traces on an N-shard bank."""
    traces = [hungry_trace(i, cores, references, 10 + i) for i in range(cores)]
    system = MultiCoreSystem.build(
        SCHEME, traces, config=experiment_config(), num_shards=num_shards
    )
    results = system.run(traces)
    backend = system.backend
    if num_shards == 1:
        backend.oram.check_invariants()
    else:
        report = run_fsck_bank(backend)
        assert report.ok, report.summary()
    return max(r.cycles for r in results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument(
        "--references", type=int, default=8_000, help="trace references per core"
    )
    parser.add_argument("-o", "--output", default="BENCH_shards.json")
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the 1.3x acceptance assertion",
    )
    args = parser.parse_args(argv)
    if args.cores < 1 or args.references < 1:
        parser.error("--cores and --references must be >= 1")

    rows = []
    cycles_by_shards = {}
    baseline = None
    for num_shards in SHARD_COUNTS:
        cycles = run(args.cores, args.references, num_shards)
        cycles_by_shards[num_shards] = cycles
        if baseline is None:
            baseline = cycles
        speedup = baseline / cycles
        rows.append((num_shards, cycles, speedup))
        print(
            f"{num_shards} shard(s): {cycles:>12,} cycles "
            f"({speedup:.2f}x vs 1 shard)"
        )

    speedup_at_4 = baseline / cycles_by_shards[4]
    verdict = speedup_at_4 >= ACCEPTANCE_SPEEDUP_AT_4
    print(
        f"4-shard speedup {speedup_at_4:.2f}x "
        f"(acceptance floor {ACCEPTANCE_SPEEDUP_AT_4:.1f}x): "
        + ("PASS" if verdict else "FAIL")
    )

    artifact = {
        "workload": "multicore_hungry",
        "scheme": SCHEME,
        "cores": args.cores,
        "references_per_core": args.references,
        "region_blocks": REGION,
        "results": [
            {"num_shards": n, "cycles": c, "speedup_vs_1_shard": s}
            for n, c, s in rows
        ],
        "speedup_at_4_shards": speedup_at_4,
        "acceptance_floor": ACCEPTANCE_SPEEDUP_AT_4,
        "acceptance_pass": verdict,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if not args.no_assert and not verdict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
