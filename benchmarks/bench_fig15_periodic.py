"""Figure 15 -- super blocks under periodic (timing-protected) ORAM.

Speedup relative to the baseline *periodic* ORAM (Oint = 100 cycles).  The
plain non-periodic ORAM is plotted alongside.  Paper findings: (1) the
periodicity itself costs only a few percent at this Oint ("ORAM bandwidth
is almost maximized"), and (2) dynamic super blocks keep their gains when
integrated with periodic accesses.
"""

from repro.workloads.dbms import DBMS_PROFILES
from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_PROFILES

from benchmarks.figutils import FAST, record_table, run_benchmark_schemes, suite_average

SCHEMES = ["oram", "oram_intvl", "stat_intvl", "dyn_intvl"]


def run_suite(profiles):
    rows = []
    stats = {}
    for profile in profiles:
        res = run_benchmark_schemes(profile.name, SCHEMES)
        base = res["oram_intvl"]
        oram = res["oram"].speedup_over(base)
        stat = res["stat_intvl"].speedup_over(base)
        dyn = res["dyn_intvl"].speedup_over(base)
        stats[profile.name] = {
            "oram": oram, "stat": stat, "dyn": dyn, "mem": profile.memory_intensive,
        }
        rows.append([profile.name, oram, stat, dyn])
    rows.append(
        [
            "avg",
            suite_average(s["oram"] for s in stats.values()),
            suite_average(s["stat"] for s in stats.values()),
            suite_average(s["dyn"] for s in stats.values()),
        ]
    )
    mem = [s for s in stats.values() if s["mem"]]
    if mem:
        rows.append(
            [
                "mem_avg",
                suite_average(s["oram"] for s in mem),
                suite_average(s["stat"] for s in mem),
                suite_average(s["dyn"] for s in mem),
            ]
        )
    return rows, stats


HEADERS = ["workload", "oram", "stat_intvl", "dyn_intvl"]


def check_shapes(stats, min_mem_gain):
    mem = {k: s for k, s in stats.items() if s["mem"]}
    for name, s in mem.items():
        # Periodicity costs little on memory-bound workloads: the plain
        # ORAM is only slightly faster than the periodic baseline (the
        # paper reports 3.6% average extra degradation on Splash2).
        assert -0.02 < s["oram"] < 0.25, f"{name}: periodic overhead off ({s['oram']:+.3f})"
    if not FAST:
        # dyn keeps its gain (where there is locality to harvest) and
        # never loses under periodicity.
        assert suite_average(s["dyn"] for s in mem.values()) > min_mem_gain


def test_fig15a_splash2_periodic(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(SPLASH2_PROFILES,), rounds=1, iterations=1)
    record_table(
        "fig15a_splash2_periodic",
        "Figure 15a: periodic ORAM (Oint=100), speedup over periodic baseline",
        HEADERS,
        rows,
    )
    # Splash2's memory-intensive set is locality-rich: big gains persist.
    check_shapes(stats, min_mem_gain=0.05)


def test_fig15b_spec06_periodic(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(SPEC06_PROFILES,), rounds=1, iterations=1)
    record_table(
        "fig15b_spec06_periodic",
        "Figure 15b: periodic ORAM (Oint=100), speedup over periodic baseline",
        HEADERS,
        rows,
    )
    # SPEC06's memory-intensive pair (omnet, mcf) has little spatial
    # locality: "no gain" is the correct outcome there, "no loss" the bar.
    check_shapes(stats, min_mem_gain=-0.02)


def test_fig15c_dbms_periodic(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(DBMS_PROFILES,), rounds=1, iterations=1)
    record_table(
        "fig15c_dbms_periodic",
        "Figure 15c: periodic ORAM (Oint=100), speedup over periodic baseline",
        HEADERS,
        rows,
    )
    if not FAST:
        assert stats["YCSB"]["dyn"] > stats["TPCC"]["dyn"]
