#!/usr/bin/env python
"""Serving front-end scaling benchmark (open-loop sweep over shard counts).

The deadline-aware front end (:mod:`repro.serve`) admits a multi-tenant
open-loop request stream into bounded fair queues and batches it onto an
N-shard ORAM bank.  This benchmark offers the *same* fixed load -- four
tenants, exponential arrivals -- to 1/2/4-shard banks and measures served
throughput (requests per kilocycle of simulated time) and the p99
admission->completion latency.

A single shard saturates below the offered rate, so admission control
sheds and latency balloons; four shards absorb the full load.  Acceptance
gates: the 4-shard bank must sustain >= 2x the 1-shard served throughput,
with a bounded p99 (the overload survives in the *shed* column, not the
latency tail).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --requests 300 --gap 2500

Writes ``BENCH_serve.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiments import experiment_config
from repro.config import ServeConfig
from repro.serve import OpenLoopSource, ServingFrontEnd

SHARD_COUNTS = [1, 2, 4]
SCHEME = "dyn"
TENANTS = 4
#: acceptance: thr(4 shards) / thr(1 shard) floor
ACCEPTANCE_SPEEDUP_AT_4 = 2.0
#: acceptance: p99 admission->completion ceiling at 4 shards (cycles).
#: Generous vs. the observed ~32k: the gate catches pathological queueing,
#: not bucket-boundary jitter (histogram buckets are powers of two).
ACCEPTANCE_P99_AT_4 = 65_536


def run(num_shards: int, requests: int, gap_mean: float, seed: int):
    source = OpenLoopSource.synthetic(
        TENANTS,
        requests,
        footprint_per_tenant=2_048,
        gap_mean=gap_mean,
        locality=0.6,
        seed=seed,
    )
    frontend = ServingFrontEnd.build(
        SCHEME,
        source.footprint_blocks,
        experiment_config(),
        num_shards,
        serve_config=ServeConfig(),
        workload="bench_serve",
    )
    return frontend.run(source)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=600, help="requests per tenant"
    )
    parser.add_argument(
        "--gap",
        type=float,
        default=3_300.0,
        help="mean inter-arrival gap per tenant (cycles)",
    )
    parser.add_argument("--seed", type=int, default=33)
    parser.add_argument("-o", "--output", default="BENCH_serve.json")
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the throughput/latency acceptance gates",
    )
    args = parser.parse_args(argv)
    if args.requests < 1 or args.gap <= 0:
        parser.error("--requests must be >= 1 and --gap positive")

    rows = []
    by_shards = {}
    for num_shards in SHARD_COUNTS:
        report = run(num_shards, args.requests, args.gap, args.seed)
        by_shards[num_shards] = report
        rows.append(report)
        print(
            f"{num_shards} shard(s): {report.served_per_kilocycle:6.3f} "
            f"req/kcycle  served {report.served}/{report.offered} "
            f"(shed {report.shed}, coalesced {report.coalesced})  "
            f"p99<={report.p99_latency:,}  "
            f"deadline misses {report.deadline_misses}"
        )

    speedup_at_4 = (
        by_shards[4].served_per_kilocycle / by_shards[1].served_per_kilocycle
    )
    p99_at_4 = by_shards[4].p99_latency
    thr_ok = speedup_at_4 >= ACCEPTANCE_SPEEDUP_AT_4
    p99_ok = p99_at_4 <= ACCEPTANCE_P99_AT_4
    print(
        f"4-shard served-throughput scaling {speedup_at_4:.2f}x "
        f"(floor {ACCEPTANCE_SPEEDUP_AT_4:.1f}x): "
        + ("PASS" if thr_ok else "FAIL")
    )
    print(
        f"4-shard p99 latency {p99_at_4:,} cycles "
        f"(ceiling {ACCEPTANCE_P99_AT_4:,}): " + ("PASS" if p99_ok else "FAIL")
    )

    artifact = {
        "workload": "serve_open_loop",
        "scheme": SCHEME,
        "tenants": TENANTS,
        "requests_per_tenant": args.requests,
        "gap_mean": args.gap,
        "seed": args.seed,
        "results": [
            {
                "num_shards": report.num_shards,
                "served_per_kilocycle": report.served_per_kilocycle,
                "offered": report.offered,
                "served": report.served,
                "shed": report.shed,
                "coalesced": report.coalesced,
                "batches": report.batches,
                "deadline_closes": report.deadline_closes,
                "deadline_misses": report.deadline_misses,
                "p50_latency": report.p50_latency,
                "p99_latency": report.p99_latency,
                "mean_latency": report.mean_latency,
                "makespan_cycles": report.makespan_cycles,
            }
            for report in rows
        ],
        "speedup_at_4_shards": speedup_at_4,
        "p99_at_4_shards": p99_at_4,
        "acceptance": {
            "throughput_floor": ACCEPTANCE_SPEEDUP_AT_4,
            "throughput_pass": thr_ok,
            "p99_ceiling": ACCEPTANCE_P99_AT_4,
            "p99_pass": p99_ok,
        },
        "acceptance_pass": thr_ok and p99_ok,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if not args.no_assert and not (thr_ok and p99_ok):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
