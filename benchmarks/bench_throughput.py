#!/usr/bin/env python
"""Simulator throughput benchmark: trace accesses per second.

This benchmark measures how fast the *simulator* runs on the host (not the
simulated cycle counts): it replays the 80%-locality synthetic workload
through the full PrORAM system ("dyn") several times, reports the best-of-N
accesses/sec, compares against the calibrated pre-optimization baseline,
and writes the result (plus a phase/counter profile from
:mod:`repro.profiling`) to ``BENCH_throughput.json``.

The timed runs are *bare* -- the profiler's shims add per-call overhead, so
the phase breakdown comes from one separate profiled run.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --accesses 2000 -o /tmp/t.json

Baseline note: ``SEED_BASELINE_ACCESSES_PER_SEC`` was calibrated on the
development machine by running this exact workload ("dyn", 80% locality,
20,000 accesses, default config) on the pre-optimization tree, interleaved
in-process with the optimized tree to cancel machine-speed drift.  On a
different host the *ratio* is only indicative; recalibrate with
``--baseline`` (accesses/sec of the old tree on that host) for a fair
comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.profiling import Profiler
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace

#: Best-of-N accesses/sec of the pre-optimization simulator on the
#: development machine (see the module docstring for the methodology).
SEED_BASELINE_ACCESSES_PER_SEC = 16_500.0

#: The workload every throughput number refers to.
LOCALITY = 0.8
DEFAULT_ACCESSES = 20_000
SCHEME = "dyn"


def run_once(accesses: int) -> float:
    """One bare timed run; returns accesses/sec."""
    trace = locality_mix_trace(LOCALITY, accesses=accesses)
    system = SecureSystem.build(SCHEME, trace.footprint_blocks)
    start = time.perf_counter()
    system.run(trace)
    return accesses / (time.perf_counter() - start)


def profiled_run(accesses: int):
    """One profiled run for the phase/counter breakdown."""
    trace = locality_mix_trace(LOCALITY, accesses=accesses)
    system = SecureSystem.build(SCHEME, trace.footprint_blocks)
    profiler = Profiler().attach(system)
    system.run(trace)
    return profiler.profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    parser.add_argument("--repeats", type=int, default=5, help="timed runs (best-of)")
    parser.add_argument(
        "--baseline",
        type=float,
        default=SEED_BASELINE_ACCESSES_PER_SEC,
        help="pre-optimization accesses/sec to compare against",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_throughput.json",
        help="JSON artifact path (default: BENCH_throughput.json)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.accesses < 1:
        parser.error("--accesses must be >= 1")

    samples = []
    for i in range(args.repeats):
        rate = run_once(args.accesses)
        samples.append(rate)
        print(f"run {i + 1}/{args.repeats}: {rate:,.0f} accesses/sec")
    best = max(samples)
    # ratio is None (JSON null) rather than NaN when no baseline is given:
    # json.dump would emit non-standard ``NaN`` otherwise.
    ratio = best / args.baseline if args.baseline > 0 else None
    print(f"best: {best:,.0f} accesses/sec")
    print(f"baseline (pre-optimization): {args.baseline:,.0f} accesses/sec")
    print(f"speedup: {ratio:.2f}x" if ratio is not None else "speedup: n/a (no baseline)")

    profile = profiled_run(args.accesses)
    print()
    print(profile.report())

    artifact = {
        "workload": f"locality_{int(LOCALITY * 100)}",
        "scheme": SCHEME,
        "accesses": args.accesses,
        "repeats": args.repeats,
        "samples_accesses_per_sec": samples,
        "best_accesses_per_sec": best,
        "baseline_accesses_per_sec": args.baseline,
        "speedup_vs_baseline": ratio,
        "profile": profile.to_json() if profile is not None else None,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
