"""Figure 8 -- static vs dynamic super blocks on the real benchmark suites.

Regenerates all three panels: (a) fourteen Splash2 workloads, (b) ten
SPEC06 workloads, (c) YCSB and TPCC.  For each workload the table reports
the speedup of ``stat`` and ``dyn`` over baseline ORAM and the normalized
memory access count (the paper's energy proxy, its red markers), plus the
``avg`` and (for Splash2) ``mem_avg`` rows.

Expected shapes (paper section 5.4):
* dyn >= baseline everywhere (never below -3%);
* stat loses on the low-locality workloads (volrend, radix, sjeng, astar,
  omnet, mcf, TPCC);
* the gains concentrate in the memory-intensive benchmarks;
* dyn saves memory accesses (energy) on the locality-rich suites.
"""

from repro.workloads.dbms import DBMS_PROFILES
from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_PROFILES

from benchmarks.figutils import FAST, record_table, run_benchmark_schemes, suite_average

#: training-dependent magnitude assertions only hold at full trace length
STRICT = not FAST

SCHEMES = ["oram", "stat", "dyn"]
#: benchmarks the paper singles out as hurt by the static scheme
STATIC_LOSERS = {"volrend", "radix", "sjeng", "astar", "omnet", "mcf", "TPCC"}


def run_suite(profiles):
    rows = []
    stats = {}
    for profile in profiles:
        res = run_benchmark_schemes(profile.name, SCHEMES)
        stat = res["stat"].speedup_over(res["oram"])
        dyn = res["dyn"].speedup_over(res["oram"])
        if res["oram"].total_memory_accesses:
            stat_acc = res["stat"].normalized_memory_accesses(res["oram"])
            dyn_acc = res["dyn"].normalized_memory_accesses(res["oram"])
        else:
            # Fully cached in the measurement window (water_*): no memory
            # traffic for any scheme.
            stat_acc = dyn_acc = 1.0
        stats[profile.name] = {
            "stat": stat,
            "dyn": dyn,
            "dyn_acc": dyn_acc,
            "mem": profile.memory_intensive,
        }
        rows.append([profile.name, stat, dyn, stat_acc, dyn_acc])
    rows.append(
        [
            "avg",
            suite_average(s["stat"] for s in stats.values()),
            suite_average(s["dyn"] for s in stats.values()),
            "",
            suite_average(s["dyn_acc"] for s in stats.values()),
        ]
    )
    mem = [s for s in stats.values() if s["mem"]]
    if mem:
        rows.append(
            [
                "mem_avg",
                suite_average(s["stat"] for s in mem),
                suite_average(s["dyn"] for s in mem),
                "",
                suite_average(s["dyn_acc"] for s in mem),
            ]
        )
    return rows, stats


def check_common_shapes(stats):
    for name, s in stats.items():
        # dyn never loses meaningfully (the paper's headline stability claim).
        assert s["dyn"] > -0.04, f"dyn lost on {name}: {s['dyn']:+.3f}"
        if STRICT and name in STATIC_LOSERS:
            assert s["stat"] < 0.02, f"stat should lose on {name}: {s['stat']:+.3f}"


HEADERS = ["workload", "stat", "dyn", "stat_norm_acc", "dyn_norm_acc"]


def test_fig08a_splash2(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(SPLASH2_PROFILES,), rounds=1, iterations=1)
    record_table("fig08a_splash2", "Figure 8a: Splash2, speedup over baseline ORAM", HEADERS, rows)
    check_common_shapes(stats)
    mem_avg = suite_average(s["dyn"] for s in stats.values() if s["mem"])
    comp_avg = suite_average(s["dyn"] for s in stats.values() if not s["mem"])
    if STRICT:
        # Paper: 20.2% gain on memory-intensive Splash2.
        assert mem_avg > 0.12
        # Memory-intensive gains dominate the compute-intensive ones.
        assert mem_avg > comp_avg


def test_fig08b_spec06(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(SPEC06_PROFILES,), rounds=1, iterations=1)
    record_table("fig08b_spec06", "Figure 8b: SPEC06, speedup over baseline ORAM", HEADERS, rows)
    check_common_shapes(stats)
    avg = suite_average(s["dyn"] for s in stats.values())
    if STRICT:
        # Paper: 5.5% average on SPEC06 -- modest but positive.
        assert 0.0 < avg < 0.2


def test_fig08c_dbms(benchmark):
    rows, stats = benchmark.pedantic(run_suite, args=(DBMS_PROFILES,), rounds=1, iterations=1)
    record_table("fig08c_dbms", "Figure 8c: DBMS, speedup over baseline ORAM", HEADERS, rows)
    check_common_shapes(stats)
    # Paper: YCSB 23.6% >> TPCC 5%.
    assert stats["YCSB"]["dyn"] > stats["TPCC"]["dyn"]
    if STRICT:
        assert stats["YCSB"]["dyn"] > 0.08
        assert stats["TPCC"]["dyn"] > 0.0
    # Energy: dyn saves memory accesses on YCSB.
    assert stats["YCSB"]["dyn_acc"] < 1.0
