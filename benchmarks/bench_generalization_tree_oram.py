"""Generalization -- super blocks on a second tree ORAM (section 6.1).

"In general, all ORAM schemes should be able to take advantage of super
blocks as long as they have support for background eviction."  This
benchmark demonstrates the claim on the Shi et al. binary-tree ORAM:
pairing blocks halves both the access count and the bucket traffic of a
sequential workload, exactly as on Path ORAM.
"""

from repro.oram.tree_oram import ShiTreeORAM, merge_pairs
from repro.utils.rng import DeterministicRng

from benchmarks.figutils import FAST, record_table

SWEEPS = 2 if FAST else 4
BLOCKS = 512
LEVELS = 8


def run_variant(paired):
    oram = ShiTreeORAM(levels=LEVELS, num_blocks=BLOCKS, rng=DeterministicRng(3))
    if paired:
        merge_pairs(oram, sbsize=2)
    oram.accesses = 0
    oram.bucket_touches = 0
    for _ in range(SWEEPS):
        addr = 0
        while addr < BLOCKS:
            if paired:
                oram.access([addr, addr + 1])
                addr += 2
            else:
                oram.access([addr])
                addr += 1
    oram.check_invariants()
    return oram.accesses, oram.bucket_touches


def run_figure():
    plain_accesses, plain_touches = run_variant(paired=False)
    pair_accesses, pair_touches = run_variant(paired=True)
    rows = [
        ["no super blocks", plain_accesses, plain_touches, 1.0],
        [
            "size-2 super blocks",
            pair_accesses,
            pair_touches,
            pair_touches / plain_touches,
        ],
    ]
    return rows, (plain_accesses, pair_accesses, plain_touches, pair_touches)


def test_generalization_tree_oram(benchmark):
    rows, (plain_acc, pair_acc, plain_touch, pair_touch) = benchmark.pedantic(
        run_figure, rounds=1, iterations=1
    )
    record_table(
        "generalization_tree_oram",
        "Section 6.1: super blocks on the Shi et al. tree ORAM (sequential scan)",
        ["variant", "oram_accesses", "bucket_touches", "norm_traffic"],
        rows,
    )
    # Pairing halves the access count and substantially cuts bucket traffic.
    assert pair_acc * 2 == plain_acc
    assert pair_touch < 0.7 * plain_touch
