#!/usr/bin/env python
"""Treetop-size sweep: pinned tree-top levels vs streamed path latency.

The treetop cache (DESIGN.md section 13) pins the top ``k`` levels of the
nominal tree in on-chip SRAM, so every path access streams only the
bottom ``L + 1 - k`` bucket-levels over the pins.  This benchmark runs
the PrORAM scheme on the 80%-locality synthetic mix for
``k in {0, 2, 4, 6}`` under both interconnect models and reports the
mean demand-path read latency (the ``path_read`` phase per pipeline
request).

The measured bank is one *shard* of a sharded deployment -- a 32 MB slice
(17-level nominal tree) rather than the full 8 GB monolith -- with
LPDDR-class per-channel bandwidth (4 GB/s), so path streaming is
bandwidth-dominated and a 4-level treetop removes a meaningful fraction
(4 of 18 bucket-levels) of every path.  The channel layout's subtree
tiles are sized to the treetop (``subtree_levels = 4``): the pinned
region is then exactly the root tile, so pinning eliminates a whole row
activation burst per path -- including the tier-0 tile that the per-tier
rotation always places on channel 0, the one structurally hot channel of
the ``k = 0`` layout.

Acceptance gate: >= 1.25x path-latency reduction at ``k = 4`` over
``k = 0`` under the 4-channel model.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_treetop.py
    PYTHONPATH=src python benchmarks/bench_treetop.py --accesses 4000

Writes ``BENCH_treetop.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiments import experiment_config
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace

TREETOP_LEVELS = [0, 2, 4, 6]
SCHEME = "dyn"
ACCEPTANCE_SPEEDUP_AT_4 = 1.25
#: one shard of a sharded bank: 32 MB -> 17-level nominal tree
SHARD_CAPACITY_BYTES = 32 << 20
#: LPDDR-class per-channel pins: streaming is bandwidth-dominated
CHANNEL_BANDWIDTH_GBPS = 4.0
DRAM_LATENCY_CYCLES = 50
#: tile height == gate treetop height: the pinned region is whole tiles
SUBTREE_LEVELS = 4
GATE_CHANNELS = 4


def bench_config(dram_model: str, treetop: int):
    config = experiment_config(capacity_bytes=SHARD_CAPACITY_BYTES)
    return dataclasses.replace(
        config,
        oram=dataclasses.replace(config.oram, treetop_levels=treetop),
        dram=dataclasses.replace(
            config.dram,
            model=dram_model,
            num_channels=GATE_CHANNELS if dram_model == "channel" else 1,
            bandwidth_gbps=CHANNEL_BANDWIDTH_GBPS,
            latency_cycles=DRAM_LATENCY_CYCLES,
            subtree_levels=SUBTREE_LEVELS,
        ),
    )


def run(trace, dram_model: str, treetop: int) -> dict:
    """One configuration: returns cycles + mean path-read latency."""
    config = bench_config(dram_model, treetop)
    system = SecureSystem.build(SCHEME, trace.footprint_blocks, config)
    result = system.run(trace)
    system.backend.oram.check_invariants()
    pipeline = system.backend.pipeline
    interconnect = system.backend.interconnect
    mean_path_read = pipeline.phase_cycles["path_read"] / pipeline.requests
    summary = interconnect.summary()
    row = {
        "dram_model": dram_model,
        "treetop_levels": treetop,
        "offchip_levels": interconnect.offchip_levels,
        "cycles": result.cycles,
        "pipeline_requests": pipeline.requests,
        "mean_path_read_cycles": round(mean_path_read, 2),
        "nominal_path_cycles": interconnect.path_cycles,
        "treetop_hits": int(summary["treetop_hits"]),
        "treetop_bytes_saved": int(summary["treetop_bytes_saved"]),
    }
    cache = system.backend.oram.tree.treetop
    row["treetop_flushes"] = cache.flushes if cache is not None else 0
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=6_000)
    parser.add_argument("--locality", type=float, default=0.8)
    parser.add_argument("-o", "--output", default="BENCH_treetop.json")
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the 1.25x acceptance assertion",
    )
    args = parser.parse_args(argv)
    if args.accesses < 1:
        parser.error("--accesses must be >= 1")

    trace = locality_mix_trace(args.locality, accesses=args.accesses)
    rows = []
    baselines = {}
    for dram_model in ("flat", "channel"):
        for treetop in TREETOP_LEVELS:
            row = run(trace, dram_model, treetop)
            rows.append(row)
            if treetop == 0:
                baselines[dram_model] = row["mean_path_read_cycles"]
            reduction = baselines[dram_model] / row["mean_path_read_cycles"]
            row["path_latency_reduction_vs_k0"] = round(reduction, 3)
            print(
                f"{dram_model:>7} k={treetop}: {row['cycles']:>12,} cycles, "
                f"mean path read {row['mean_path_read_cycles']:.0f} cyc "
                f"({reduction:.2f}x vs k=0, "
                f"{row['treetop_bytes_saved'] / (1 << 20):.0f} MiB saved)"
            )

    at_4 = next(
        r
        for r in rows
        if r["dram_model"] == "channel" and r["treetop_levels"] == 4
    )
    reduction_at_4 = at_4["path_latency_reduction_vs_k0"]
    verdict = reduction_at_4 >= ACCEPTANCE_SPEEDUP_AT_4
    print(
        f"4-level treetop path-latency reduction {reduction_at_4:.2f}x under "
        f"the {GATE_CHANNELS}-channel model (acceptance floor "
        f"{ACCEPTANCE_SPEEDUP_AT_4:.2f}x): " + ("PASS" if verdict else "FAIL")
    )

    artifact = {
        "workload": f"locality:{args.locality:g}",
        "scheme": SCHEME,
        "accesses": args.accesses,
        "shard_capacity_bytes": SHARD_CAPACITY_BYTES,
        "gate_channels": GATE_CHANNELS,
        "results": rows,
        "path_latency_reduction_at_treetop_4": reduction_at_4,
        "acceptance_floor": ACCEPTANCE_SPEEDUP_AT_4,
        "acceptance_pass": verdict,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if not args.no_assert and not verdict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
