#!/usr/bin/env python
"""Tracing-overhead gate for the observability subsystem.

The structured tracer promises two things (DESIGN.md section 8):

* **Zero cost disabled** -- with no recorder attached the simulation is
  bit-identical to the pre-tracing simulator (the golden determinism test
  pins that); this harness additionally asserts that an *enabled* recorder
  does not perturb the simulated outcome at all (same ``SimResult``).
* **Cheap enabled** -- recording spans costs wall-clock only: dict
  building and list appends, no file I/O on the access path.  The
  acceptance gate bounds the enabled overhead at < 10% on the golden
  scenario (PrORAM "dyn" on the 80%-locality mix).

The harness also proves the JSONL exporter is deterministic: two runs of
the same seed write byte-identical trace files.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --accesses 4000 --no-gate

Writes ``BENCH_trace.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiments import experiment_config
from repro.observability import InMemoryRecorder, JsonlTraceRecorder
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace

SCHEME = "dyn"
LOCALITY = 0.8
ACCEPTANCE_OVERHEAD = 0.10  # traced may cost at most 10% extra wall-clock


def timed_run(accesses: int, recorder=None):
    """One fresh golden-scenario run; returns (wall seconds, result, system)."""
    trace = locality_mix_trace(LOCALITY, accesses=accesses)
    system = SecureSystem.build(SCHEME, trace.footprint_blocks, experiment_config())
    if recorder is not None:
        system.attach_recorder(recorder)
    start = perf_counter()
    result = system.run(trace)
    wall = perf_counter() - start
    return wall, result, system


def best_of(repeats: int, accesses: int, recorder_factory):
    """Best wall time over ``repeats`` fresh runs (quietest-neighbor timing)."""
    best = None
    last = None
    for _ in range(repeats):
        recorder = recorder_factory() if recorder_factory else None
        wall, result, _ = timed_run(accesses, recorder)
        best = wall if best is None else min(best, wall)
        last = (result, recorder)
    return best, last[0], last[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=8000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the wall-clock acceptance assert (noisy CI machines); "
        "the determinism and non-perturbation asserts always run",
    )
    parser.add_argument("-o", "--output", default="BENCH_trace.json")
    args = parser.parse_args(argv)

    base_wall, base_result, _ = best_of(args.repeats, args.accesses, None)
    traced_wall, traced_result, recorder = best_of(
        args.repeats, args.accesses, InMemoryRecorder
    )

    # --- non-perturbation: tracing must not change the simulated outcome.
    assert dataclasses.asdict(base_result) == dataclasses.asdict(traced_result), (
        "attaching a recorder changed the SimResult"
    )

    # --- JSONL export: deterministic bytes for a fixed seed.
    with tempfile.TemporaryDirectory() as tmp:
        paths = [Path(tmp) / "a.jsonl", Path(tmp) / "b.jsonl"]
        jsonl_wall = None
        for path in paths:
            jsonl_recorder = JsonlTraceRecorder(str(path))
            start = perf_counter()
            timed_run(args.accesses, jsonl_recorder)
            jsonl_recorder.close()
            wall = perf_counter() - start
            jsonl_wall = wall if jsonl_wall is None else min(jsonl_wall, wall)
        first, second = (path.read_bytes() for path in paths)
        assert first == second, "JSONL trace is not byte-deterministic"
        trace_bytes = len(first)

    overhead = traced_wall / base_wall - 1.0
    jsonl_overhead = jsonl_wall / base_wall - 1.0
    report = {
        "scheme": SCHEME,
        "workload": f"locality_{int(LOCALITY * 100)}",
        "accesses": args.accesses,
        "repeats": args.repeats,
        "untraced_seconds": base_wall,
        "traced_seconds": traced_wall,
        "jsonl_seconds": jsonl_wall,
        "overhead": overhead,
        "jsonl_overhead": jsonl_overhead,
        "acceptance_overhead": ACCEPTANCE_OVERHEAD,
        "gated": not args.no_gate,
        "span_count": recorder.span_count(),
        "record_count": len(recorder.records),
        "trace_bytes": trace_bytes,
        "result_identical": True,
        "jsonl_deterministic": True,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(
        f"untraced {base_wall:.3f} s | traced {traced_wall:.3f} s "
        f"({overhead:+.1%}) | jsonl {jsonl_wall:.3f} s ({jsonl_overhead:+.1%})"
    )
    print(
        f"{report['span_count']} spans / {report['record_count']} records, "
        f"{trace_bytes:,} trace bytes -> {args.output}"
    )
    if not args.no_gate:
        assert overhead < ACCEPTANCE_OVERHEAD, (
            f"tracing overhead {overhead:.1%} exceeds the "
            f"{ACCEPTANCE_OVERHEAD:.0%} acceptance gate"
        )
        print(f"acceptance: overhead {overhead:.1%} < {ACCEPTANCE_OVERHEAD:.0%} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
