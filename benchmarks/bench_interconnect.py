#!/usr/bin/env python
"""Channel-count sweep for the pluggable memory interconnect.

The paper times every path access with one flat scalar ("a single ORAM
access saturates the available DRAM bandwidth", section 5.1).  The
channel interconnect instead lays the tree out subtree-by-subtree across
independent DRAM channels (:class:`~repro.oram.tree.PhysicalLayout`) and
streams each path's buckets through per-channel bank/row schedulers, so
aggregate bandwidth -- and with it path latency -- scales with the
channel count.  This benchmark runs the PrORAM scheme on the 80%-locality
synthetic mix under the flat model and under the channel model at 1, 2, 4
and 8 channels, reports the mean demand-path read latency (the streamed
``path_read`` phase per pipeline request), and asserts the acceptance
gate: >= 1.3x path-latency reduction at 4 channels over the flat model.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_interconnect.py
    PYTHONPATH=src python benchmarks/bench_interconnect.py --accesses 4000

Writes ``BENCH_interconnect.json`` (override with ``-o``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiments import experiment_config
from repro.sim.system import SecureSystem
from repro.workloads.synthetic import locality_mix_trace

CHANNEL_COUNTS = [1, 2, 4, 8]
SCHEME = "dyn"
ACCEPTANCE_SPEEDUP_AT_4 = 1.3


def run(trace, dram_model: str, num_channels: int) -> dict:
    """One configuration: returns cycles + mean path-read latency."""
    config = experiment_config()
    config = dataclasses.replace(
        config,
        dram=dataclasses.replace(
            config.dram, model=dram_model, num_channels=num_channels
        ),
    )
    system = SecureSystem.build(SCHEME, trace.footprint_blocks, config)
    result = system.run(trace)
    system.backend.oram.check_invariants()
    pipeline = system.backend.pipeline
    path_read_cycles = pipeline.phase_cycles["path_read"]
    mean_path_read = path_read_cycles / pipeline.requests
    row = {
        "dram_model": dram_model,
        "num_channels": num_channels if dram_model == "channel" else 1,
        "cycles": result.cycles,
        "pipeline_requests": pipeline.requests,
        "mean_path_read_cycles": round(mean_path_read, 2),
        "nominal_path_cycles": system.backend.interconnect.path_cycles,
    }
    if dram_model == "channel":
        for name in ("row_hits", "row_misses", "bank_wait_cycles"):
            row[name] = int(result.extra[f"interconnect_{name}"])
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=8_000)
    parser.add_argument("--locality", type=float, default=0.8)
    parser.add_argument("-o", "--output", default="BENCH_interconnect.json")
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the 1.3x acceptance assertion",
    )
    args = parser.parse_args(argv)
    if args.accesses < 1:
        parser.error("--accesses must be >= 1")

    trace = locality_mix_trace(args.locality, accesses=args.accesses)
    rows = [run(trace, "flat", 1)]
    flat = rows[0]
    print(
        f"flat model: {flat['cycles']:>12,} cycles, "
        f"mean path read {flat['mean_path_read_cycles']:.0f} cyc"
    )
    by_channels = {}
    for channels in CHANNEL_COUNTS:
        row = run(trace, "channel", channels)
        rows.append(row)
        by_channels[channels] = row
        reduction = flat["mean_path_read_cycles"] / row["mean_path_read_cycles"]
        row["path_latency_reduction_vs_flat"] = round(reduction, 3)
        print(
            f"{channels} channel(s): {row['cycles']:>12,} cycles, "
            f"mean path read {row['mean_path_read_cycles']:.0f} cyc "
            f"({reduction:.2f}x reduction vs flat)"
        )

    reduction_at_4 = (
        flat["mean_path_read_cycles"] / by_channels[4]["mean_path_read_cycles"]
    )
    verdict = reduction_at_4 >= ACCEPTANCE_SPEEDUP_AT_4
    print(
        f"4-channel path-latency reduction {reduction_at_4:.2f}x "
        f"(acceptance floor {ACCEPTANCE_SPEEDUP_AT_4:.1f}x): "
        + ("PASS" if verdict else "FAIL")
    )

    artifact = {
        "workload": f"locality:{args.locality:g}",
        "scheme": SCHEME,
        "accesses": args.accesses,
        "results": rows,
        "path_latency_reduction_at_4_channels": reduction_at_4,
        "acceptance_floor": ACCEPTANCE_SPEEDUP_AT_4,
        "acceptance_pass": verdict,
    }
    with open(args.output, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if not args.no_assert and not verdict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
