"""Shared machinery for the figure-regeneration benchmarks.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation section: it runs the relevant workload x scheme matrix, renders
the same series the paper plots as an ASCII table, records the table for
the terminal summary, and writes it under ``benchmarks/results/``.

Set ``REPRO_FAST=1`` to shrink the traces (quick CI pass); the numbers in
EXPERIMENTS.md come from the default lengths.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.analysis.experiments import experiment_config, run_schemes
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.trace import Trace
from repro.workloads.base import trace_for
from repro.workloads.dbms import dbms_trace
from repro.workloads.spec06 import SPEC06_BY_NAME
from repro.workloads.splash2 import SPLASH2_BY_NAME

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))

#: trace length for real-benchmark workloads
ACCESSES = 24_000 if FAST else 80_000
#: measurement warmup (steady-state window, see SecureSystem.run)
WARMUP = 0.5

RESULTS_DIR = Path(__file__).parent / "results"

#: tables recorded this session, printed by the terminal-summary hook
RECORDED_TABLES: "Dict[str, str]" = {}

#: session-wide simulation cache so figures sharing runs (8a/8b/8c and 9)
#: pay for each (workload, scheme, config) once
_RESULT_CACHE: Dict[tuple, SimResult] = {}


def benchmark_trace(name: str, accesses: Optional[int] = None) -> Trace:
    """Trace for a named real benchmark (Splash2 / SPEC06 / DBMS)."""
    n = accesses if accesses is not None else ACCESSES
    if name in SPLASH2_BY_NAME:
        return trace_for(SPLASH2_BY_NAME[name], accesses=n)
    if name in SPEC06_BY_NAME:
        return trace_for(SPEC06_BY_NAME[name], accesses=n)
    if name in ("YCSB", "TPCC"):
        return dbms_trace(name, accesses=n)
    raise KeyError(f"unknown benchmark '{name}'")


def _config_key(config: SystemConfig) -> tuple:
    oram = config.oram
    return (
        oram.bucket_size,
        oram.utilization,
        oram.stash_blocks,
        oram.block_bytes,
        oram.max_super_block_size,
        config.dram.bandwidth_gbps,
        config.llc.capacity_bytes,
        config.timing_protection.interval_cycles,
    )


def run_benchmark_schemes(
    workload: str,
    schemes: Sequence[str],
    config: Optional[SystemConfig] = None,
    accesses: Optional[int] = None,
    **kwargs,
) -> Dict[str, SimResult]:
    """Cached run of a named real benchmark through the given schemes."""
    config = config or experiment_config()
    n = accesses if accesses is not None else ACCESSES
    missing = []
    out: Dict[str, SimResult] = {}
    for scheme in schemes:
        key = (workload, scheme, n, _config_key(config))
        if key in _RESULT_CACHE:
            out[scheme] = _RESULT_CACHE[key]
        else:
            missing.append(scheme)
    if missing:
        trace = benchmark_trace(workload, accesses=n)
        fresh = run_schemes(trace, missing, config=config, warmup_fraction=WARMUP, **kwargs)
        for scheme, result in fresh.items():
            _RESULT_CACHE[(workload, scheme, n, _config_key(config))] = result
            out[scheme] = result
    return out


def record_table(name: str, title: str, headers, rows) -> str:
    """Render, persist, and register one figure's table."""
    body = format_table(headers, rows)
    text = f"{title}\n{body}\n"
    RECORDED_TABLES[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


def suite_average(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
