"""Figure 13 -- Z = 3 vs Z = 4 (section 5.5.4).

Completion time normalized to the insecure DRAM system.  Paper findings:
Z=3 beats Z=4 for the *baseline* ORAM (shorter path to move); the dynamic
super block scheme gains under both Z values in the paper's 26-level
production tree.  Our functional tree is much shallower, which costs Z=3
most of its write-back slack (see EXPERIMENTS.md); the reproduction checks
the baseline ordering and that dyn never loses at either Z, with its gains
concentrated at Z=4.
"""

from benchmarks.figutils import ACCESSES, WARMUP, benchmark_trace, record_table
from repro.analysis.experiments import experiment_config, run_schemes

WORKLOADS = ["fft", "ocean_c", "ocean_nc", "volrend"]
Z_VALUES = [3, 4]


def run_figure():
    rows = []
    outcomes = {}
    for name in WORKLOADS:
        trace = benchmark_trace(name, accesses=ACCESSES)
        row = [name]
        for z in Z_VALUES:
            config = experiment_config(bucket_size=z)
            res = run_schemes(
                trace, ["dram", "oram", "stat", "dyn"], config=config, warmup_fraction=WARMUP
            )
            dram = res["dram"]
            for scheme in ("oram", "stat", "dyn"):
                outcomes[(name, z, scheme)] = res[scheme].normalized_completion_time(dram)
            row.extend(
                [outcomes[(name, z, "oram")], outcomes[(name, z, "stat")], outcomes[(name, z, "dyn")]]
            )
        rows.append(row)
    return rows, outcomes


def test_fig13_z_values(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    headers = ["workload", "oram_Z3", "stat_Z3", "dyn_Z3", "oram_Z4", "stat_Z4", "dyn_Z4"]
    record_table(
        "fig13_z_values",
        "Figure 13: Z sweep (completion time / DRAM)",
        headers,
        rows,
    )
    from benchmarks.figutils import FAST

    for name in WORKLOADS:
        # Z=3 is the better baseline (shorter paths), as the paper reports.
        assert outcomes[(name, 3, "oram")] < outcomes[(name, 4, "oram")]
        # At Z=4 dyn never loses to its own baseline.
        assert outcomes[(name, 4, "dyn")] <= outcomes[(name, 4, "oram")] * 1.03
        # At Z=3 our 13-level functional tree has almost no write-back
        # drain margin for pairs (the production 26-level tree does --
        # DESIGN.md section 1.4.3), so super blocks pay a real eviction
        # tax here.  The reproducible claims: dyn's adaptive throttle
        # keeps the damage bounded, and far below the static scheme's.
        assert outcomes[(name, 3, "dyn")] <= outcomes[(name, 3, "oram")] * 1.20
        assert outcomes[(name, 3, "dyn")] < outcomes[(name, 3, "stat")]
    if not FAST:
        # At Z=4 the locality-rich workloads gain clearly.
        for name in ("fft", "ocean_c", "ocean_nc"):
            assert outcomes[(name, 4, "dyn")] < outcomes[(name, 4, "oram")] * 0.9
