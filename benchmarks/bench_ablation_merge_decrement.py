"""Ablation -- Algorithm 1's decrement: load-time (literal) vs eviction-time.

DESIGN.md documents the one place this reproduction deviates from the
paper's pseudocode: Algorithm 1 as printed decrements the merge counter
whenever a block loads with its neighbor absent.  On a sequential scan over
a footprint larger than the LLC -- the pattern super blocks exist for --
the lower-address member of every pair always loads *before* its neighbor
arrives, so each pass contributes exactly one increment and one decrement
and the counter never reaches the threshold.  This ablation runs both
variants on the paper's flagship workload and shows the literal rule
(almost) never merges, while the eviction-time rule reproduces the paper's
gains.  (A handful of literal-mode merges can still occur where LLC
residency happens to straddle a pass boundary.)
"""

from repro.analysis.experiments import experiment_config, run_schemes
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import AdaptiveThresholdPolicy
from repro.sim.system import SecureSystem

from benchmarks.figutils import WARMUP, benchmark_trace, record_table

#: full-length trace even under REPRO_FAST: the contrast needs the merge
#: training to finish well inside the measurement window (3 runs total)
ACCESSES = 80_000


def run_variant(trace, literal):
    config = experiment_config()
    system = SecureSystem.build("dyn", trace.footprint_blocks, config)
    # Swap in the requested scheme variant before running.
    backend = system.backend
    scheme = DynamicSuperBlockScheme(
        max_sbsize=config.oram.max_super_block_size,
        policy=AdaptiveThresholdPolicy(),
        literal_merge_decrement=literal,
    )
    scheme.attach(backend.oram, backend._probe_llc)
    backend.scheme = scheme
    result = system.run(trace, warmup_entries=int(len(trace) * WARMUP))
    # Merges counted over the whole run, not just the window:
    total_merges = scheme.stats.merges
    return result, total_merges


def run_figure():
    trace = benchmark_trace("ocean_c", accesses=ACCESSES)
    base = run_schemes(
        trace, ["oram"], config=experiment_config(), warmup_fraction=WARMUP
    )["oram"]
    rows = []
    outcomes = {}
    for label, literal in [("eviction-time (ours)", False), ("load-time (literal)", True)]:
        result, merges = run_variant(trace, literal)
        speedup = result.speedup_over(base)
        outcomes[label] = (speedup, merges)
        rows.append([label, speedup, merges])
    return rows, outcomes


def test_ablation_merge_decrement(benchmark):
    rows, outcomes = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_table(
        "ablation_merge_decrement",
        "Ablation: Algorithm 1 decrement placement (ocean_c)",
        ["variant", "speedup_vs_oram", "merges"],
        rows,
    )
    ours = outcomes["eviction-time (ours)"]
    literal = outcomes["load-time (literal)"]
    # The literal rule merges an order of magnitude less and forfeits the
    # gain; the eviction-time rule delivers the paper's speedup.
    assert ours[1] > 5 * max(1, literal[1])
    assert ours[0] > literal[0] + 0.1
