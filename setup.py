"""Setup shim so `pip install -e .` works without the `wheel` package.

The environment has setuptools but no `wheel`, which breaks PEP 517
editable installs; keeping a classic setup.py lets pip fall back to the
legacy `setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
