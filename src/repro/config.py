"""System configuration dataclasses mirroring Table 1 of the paper.

Two layers of configuration exist:

* The *nominal* configuration describes the machine the paper models: an
  8 GB Path ORAM behind a 16 GB/s pin interface on a 1 GHz chip.  All
  latency charging is derived from these numbers
  (see :mod:`repro.memory.timing`), so the default Path ORAM access costs
  roughly the paper's 2364 cycles.
* The *functional* configuration describes the Python-scale tree actually
  simulated (a few thousand leaves).  Stash pressure, background eviction
  rate, and super block dynamics come from this tree.  DESIGN.md section
  1.3 documents why this split preserves the paper's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.bitops import is_power_of_two, log2_exact

#: Default clock frequency in Hz (Table 1: 1 GHz in-order core).
CLOCK_HZ = 1_000_000_000


@dataclass(frozen=True)
class ORAMConfig:
    """Path ORAM parameters (Table 1, "Default ORAM configuration").

    Attributes:
        capacity_bytes: nominal ORAM capacity (8 GB in the paper); used only
            by the latency model.
        block_bytes: basic block / cacheline size (128 B).
        bucket_size: blocks per bucket, the paper's ``Z`` (3).
        stash_blocks: stash capacity excluding the path buffer (100).
        num_hierarchies: total ORAM hierarchies for recursion, counting the
            data ORAM itself (4).
        levels: depth ``L`` of the *functional* binary tree; the tree has
            ``2**levels`` leaves and ``2**(levels+1) - 1`` buckets.
        utilization: fraction of the functional tree's block slots filled at
            initialization.  Path ORAM keeps roughly 50% utilization.
        max_super_block_size: cap on merged super block size (Table 1: 2).
        posmap_entries_per_block: position maps stored per PosMap block
            (the paper packs 32 x (25-bit leaf + merge bit + break bit)
            into a 128 B block).
        posmap_cache_entries: on-chip unified-ORAM PosMap block cache (PLB)
            capacity, in PosMap blocks.
        treetop_levels: top levels of the tree pinned in on-chip SRAM
            (the treetop cache, DESIGN.md section 13).  Every path access
            touches all of them, so pinning the top ``k`` levels leaks
            nothing and shrinks every path transfer to the bottom
            ``L - k`` levels.  ``0`` (the default) disables the cache and
            is bit-identical to the pre-treetop simulator.  Validated
            against the *nominal* tree height: the truncated public path
            cost must keep at least one off-chip level.
    """

    capacity_bytes: int = 8 * 1024**3
    block_bytes: int = 128
    bucket_size: int = 3
    stash_blocks: int = 100
    num_hierarchies: int = 4
    levels: int = 13
    utilization: float = 0.7
    max_super_block_size: int = 2
    posmap_entries_per_block: int = 32
    posmap_cache_entries: int = 128
    treetop_levels: int = 0

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("ORAM tree needs at least 1 level")
        if self.bucket_size < 1:
            raise ValueError("bucket size Z must be >= 1")
        if not is_power_of_two(self.block_bytes):
            raise ValueError("block size must be a power of two")
        if not is_power_of_two(self.max_super_block_size):
            raise ValueError("max super block size must be a power of two")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if self.treetop_levels < 0:
            raise ValueError("treetop levels cannot be negative")
        # Validate against the nominal tree (the one timing is charged
        # for), not the functional tree: scaled_to_footprint() shrinks
        # ``levels`` for small workloads and the functional attach point
        # caps itself, but the nominal truncation must keep at least one
        # level streaming off-chip.
        if self.treetop_levels and self.treetop_levels >= self.nominal_levels:
            raise ValueError(
                f"treetop_levels={self.treetop_levels} must be smaller than "
                f"the nominal tree height ({self.nominal_levels} levels)"
            )

    @property
    def num_leaves(self) -> int:
        """Leaves of the functional tree."""
        return 1 << self.levels

    @property
    def num_buckets(self) -> int:
        """Buckets of the functional tree."""
        return (1 << (self.levels + 1)) - 1

    @property
    def tree_capacity_blocks(self) -> int:
        """Total block slots in the functional tree."""
        return self.num_buckets * self.bucket_size

    @property
    def num_blocks(self) -> int:
        """Real data blocks stored in the functional tree at init."""
        return int(self.tree_capacity_blocks * self.utilization)

    @property
    def nominal_levels(self) -> int:
        """Tree depth of the *nominal* (paper-scale) ORAM.

        The nominal tree must hold ``capacity_bytes / block_bytes`` real
        blocks at ~50% utilization with ``Z`` blocks per bucket.
        """
        blocks = self.capacity_bytes // self.block_bytes
        levels = 0
        while ((1 << (levels + 1)) - 1) * self.bucket_size // 2 < blocks:
            levels += 1
        return levels

    def scaled_to_footprint(self, footprint_blocks: int) -> "ORAMConfig":
        """Return a copy whose functional tree comfortably holds a workload.

        The tree is sized so the footprint fills about ``utilization`` of
        its slots, keeping stash/eviction dynamics realistic regardless of
        workload size.
        """
        levels = 1
        while ((1 << (levels + 1)) - 1) * self.bucket_size * self.utilization < footprint_blocks:
            levels += 1
        return replace(self, levels=levels)


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level (Table 1: 32 KB 4-way L1, 512 KB 8-way LLC)."""

    capacity_bytes: int
    associativity: int
    block_bytes: int = 128
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError("capacity must be a multiple of way size")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM model (Table 1) plus the pluggable interconnect knobs.

    The paper models DRAM as a flat ``latency_cycles`` access bounded by pin
    bandwidth; bank-level parallelism lets independent requests overlap.
    ``model`` selects how ORAM path accesses are timed:

    * ``"flat"`` (default, the paper's model): one scalar ``path_cycles``
      per path access -- a single access saturates the pin bandwidth.
    * ``"channel"``: the path's buckets are laid out across
      ``num_channels`` independent channels (subtree-to-channel tiling,
      see DESIGN.md section 11) and streamed through a per-channel
      bank/row scheduler.  ``bandwidth_gbps`` is then *per-channel* pin
      bandwidth, so channels multiply aggregate bandwidth.

    ``page_policy`` applies to the channel model only: ``"open"`` leaves
    rows open so consecutive hits pay ``row_hit_latency_cycles``
    (default ``latency_cycles // 2``); ``"closed"`` precharges after
    every access, so every array access pays the full latency.
    ``subtree_levels`` is the height of the layout's subtree tiles.
    """

    bandwidth_gbps: float = 16.0
    latency_cycles: int = 100
    num_banks: int = 8
    model: str = "flat"
    num_channels: int = 1
    page_policy: str = "open"
    row_hit_latency_cycles: int = 0
    subtree_levels: int = 2

    def __post_init__(self) -> None:
        if self.model not in ("flat", "channel"):
            raise ValueError("DRAM model must be 'flat' or 'channel'")
        if self.page_policy not in ("open", "closed"):
            raise ValueError("page policy must be 'open' or 'closed'")
        if self.num_channels < 1:
            raise ValueError("need at least one DRAM channel")
        if self.num_banks < 1:
            raise ValueError("need at least one DRAM bank")
        if self.subtree_levels < 1:
            raise ValueError("subtree tiles must be at least one level tall")
        if self.row_hit_latency_cycles < 0:
            raise ValueError("row hit latency cannot be negative")

    @property
    def bytes_per_cycle(self) -> float:
        """Per-channel pin bandwidth in bytes per core cycle at 1 GHz."""
        return self.bandwidth_gbps * 1e9 / CLOCK_HZ

    @property
    def row_hit_cycles(self) -> int:
        """Effective open-page row-hit latency (0 means latency/2)."""
        if self.row_hit_latency_cycles:
            return self.row_hit_latency_cycles
        return max(1, self.latency_cycles // 2)


@dataclass(frozen=True)
class PrefetchConfig:
    """Traditional stream prefetcher parameters (section 5.2 strawman)."""

    enabled: bool = False
    num_streams: int = 4
    depth: int = 2
    #: accesses with ascending addresses needed before a stream trains
    train_threshold: int = 2


@dataclass(frozen=True)
class TimingProtectionConfig:
    """Periodic ORAM access configuration (sections 2.5 and 5.6)."""

    enabled: bool = False
    interval_cycles: int = 100


@dataclass(frozen=True)
class ServeConfig:
    """Request-serving front-end policies (DESIGN.md section 12).

    The front end (:mod:`repro.serve`) sits between a multi-tenant request
    stream and a sharded ORAM bank.  These knobs bound its queues and shape
    its batches; the defaults favour fairness and bounded latency over raw
    batch efficiency.

    Attributes:
        enabled: ``False`` bypasses every serving policy -- requests are
            issued directly at their arrival cycles in arrival order, which
            is bit-identical to driving the bank without a front end.
        batch_size: per-shard batch quota for HEALTHY shards; a batch is
            issued as soon as it holds this many distinct accesses.
        deadline_cycles: default admission->completion budget stamped on
            requests whose source does not set one explicitly.
        deadline_close_fraction: a batch also closes when its oldest
            member has spent this fraction of its deadline budget waiting
            (the "half-spent" rule at the default 0.5).
        queue_capacity: per-tenant ingress queue bound; arrivals beyond it
            are shed at admission.
        max_backlog: global bound on queued + batched-but-unissued
            requests; ``0`` disables the global cap.
        coalesce: dedupe concurrent requests for the same super block onto
            one pending ORAM access and fan the completion back out.
        degraded_quota_fraction: batch-quota multiplier for DEGRADED
            shards (smaller batches -> less merge/stash pressure).
        stash_shed_fraction: shed new arrivals for a shard whose stash
            occupancy exceeds this fraction of capacity -- admission
            control firing *before* the stash overflows.  ``0`` disables.
    """

    enabled: bool = True
    batch_size: int = 8
    deadline_cycles: int = 30_000
    deadline_close_fraction: float = 0.5
    queue_capacity: int = 64
    max_backlog: int = 512
    coalesce: bool = True
    degraded_quota_fraction: float = 0.5
    stash_shed_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if self.deadline_cycles < 1:
            raise ValueError("deadline budget must be at least 1 cycle")
        if not 0.0 < self.deadline_close_fraction <= 1.0:
            raise ValueError("deadline close fraction must be in (0, 1]")
        if self.queue_capacity < 1:
            raise ValueError("per-tenant queues need capacity >= 1")
        if self.max_backlog < 0:
            raise ValueError("max backlog cannot be negative")
        if not 0.0 <= self.degraded_quota_fraction <= 1.0:
            raise ValueError("degraded quota fraction must be in [0, 1]")
        if not 0.0 <= self.stash_shed_fraction <= 1.0:
            raise ValueError("stash shed fraction must be in [0, 1]")

    def quota_for(self, throttled: bool) -> int:
        """Per-shard batch quota given the shard's health throttle state."""
        if not throttled:
            return self.batch_size
        return max(1, int(self.batch_size * self.degraded_quota_fraction))


@dataclass(frozen=True)
class SystemConfig:
    """Complete secure-processor configuration (the whole of Table 1)."""

    oram: ORAMConfig = field(default_factory=ORAMConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=32 * 1024, associativity=4)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            capacity_bytes=512 * 1024, associativity=8, hit_latency=8
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    timing_protection: TimingProtectionConfig = field(default_factory=TimingProtectionConfig)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.l1.block_bytes != self.oram.block_bytes or self.llc.block_bytes != self.oram.block_bytes:
            raise ValueError("cache line size must match the ORAM block size")

    def with_block_bytes(self, block_bytes: int) -> "SystemConfig":
        """Copy of this config with a different cacheline/block size everywhere."""
        return replace(
            self,
            oram=replace(self.oram, block_bytes=block_bytes),
            l1=replace(self.l1, block_bytes=block_bytes),
            llc=replace(self.llc, block_bytes=block_bytes),
        )


DEFAULT_CONFIG = SystemConfig()
