"""A stride prefetcher -- the extension the paper's section 6.2 points at.

"Previous work in data prefetch allows data striding in the address space
to be prefetched.  Merging striding blocks is also possible for the dynamic
super block scheme.  Such exploration is left for future work."  The
simulator ships this as an optional traditional prefetcher so the strided
workloads can be studied; it detects a constant stride in the global miss
stream and predicts the next ``depth`` strided blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import PrefetchConfig


@dataclass
class StridePrefetcher:
    """Constant-stride detector over the demand-miss address stream."""

    config: PrefetchConfig
    _last_addr: Optional[int] = None
    _stride: Optional[int] = None
    _confidence: int = 0
    issued: int = 0

    def on_demand_miss(self, addr: int) -> List[int]:
        """Train on a miss; return strided prefetch candidates (maybe [])."""
        picks: List[int] = []
        if self._last_addr is not None:
            stride = addr - self._last_addr
            if stride != 0 and stride == self._stride:
                self._confidence += 1
                if self._confidence >= self.config.train_threshold:
                    picks = [
                        addr + stride * (i + 1) for i in range(self.config.depth)
                    ]
                    self.issued += len(picks)
            else:
                self._stride = stride if stride != 0 else self._stride
                self._confidence = 1 if stride != 0 else self._confidence
        self._last_addr = addr
        return picks
