"""A stride prefetcher -- the extension the paper's section 6.2 points at.

"Previous work in data prefetch allows data striding in the address space
to be prefetched.  Merging striding blocks is also possible for the dynamic
super block scheme.  Such exploration is left for future work."  The
simulator ships this as an optional traditional prefetcher so the strided
workloads can be studied; it detects a constant stride in the global miss
stream and predicts the next ``depth`` strided blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import PrefetchConfig


@dataclass
class StridePrefetcher:
    """Constant-stride detector over the demand-miss address stream."""

    config: PrefetchConfig
    _last_addr: Optional[int] = None
    _stride: Optional[int] = None
    _confidence: int = 0
    #: furthest block (in the stride's direction) already handed to the
    #: backend; the strided windows of consecutive misses overlap by
    #: ``depth - 1`` blocks, and re-issuing those would both waste ORAM
    #: accesses and inflate ``issued``
    _frontier: Optional[int] = None
    issued: int = 0

    def on_demand_miss(self, addr: int) -> List[int]:
        """Train on a miss; return strided prefetch candidates (maybe [])."""
        picks: List[int] = []
        if self._last_addr is not None:
            stride = addr - self._last_addr
            if stride != 0 and stride == self._stride:
                self._confidence += 1
                if self._confidence >= self.config.train_threshold:
                    window = [
                        addr + stride * (i + 1) for i in range(self.config.depth)
                    ]
                    frontier = self._frontier
                    if frontier is not None:
                        if stride > 0:
                            window = [b for b in window if b > frontier]
                        else:
                            window = [b for b in window if b < frontier]
                    picks = window
                    if picks:
                        self._frontier = picks[-1]
                        self.issued += len(picks)
            elif stride != 0:
                # Stride changed.  A single delta is pure noise -- it takes
                # a confirming repeat to reach confidence 1 -- and the old
                # issued window no longer bounds anything.
                self._stride = stride
                self._confidence = 0
                self._frontier = None
        self._last_addr = addr
        return picks
