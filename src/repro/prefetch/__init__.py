"""Traditional hardware prefetchers (the section 3.1 / 5.2 strawmen)."""

from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = ["MarkovPrefetcher", "StreamPrefetcher", "StridePrefetcher"]
