"""A classic multi-stream sequential prefetcher (Palacharla & Kessler style).

This is the "traditional data prefetching" of paper sections 3.1 and 5.2:
on a demand miss to block ``a`` it predicts ``a+1 ... a+depth`` once a
stream has trained.  It works on DRAM because prefetches ride spare
bandwidth; on ORAM every prefetch is a full blocking path access, which is
the effect Figure 5 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import PrefetchConfig


@dataclass
class _Stream:
    last_addr: int
    direction: int = 1
    confidence: int = 0
    age: int = 0


@dataclass
class StreamPrefetcher:
    """Tracks up to ``num_streams`` concurrent sequential streams."""

    config: PrefetchConfig
    _streams: List[_Stream] = field(default_factory=list)
    issued: int = 0

    def on_demand_miss(self, addr: int) -> List[int]:
        """Train on a miss; return the block addresses to prefetch (maybe [])."""
        for stream in self._streams:
            stream.age += 1
        for stream in self._streams:
            if addr == stream.last_addr + stream.direction:
                stream.last_addr = addr
                stream.confidence += 1
                stream.age = 0
                if stream.confidence >= self.config.train_threshold:
                    picks = [
                        addr + stream.direction * (i + 1)
                        for i in range(self.config.depth)
                    ]
                    self.issued += len(picks)
                    # Advance past what we just predicted: the next miss the
                    # stream follows is the one past the prefetched window
                    # (the window itself is being filled).  Leaving last_addr
                    # at ``addr`` would re-issue ``depth`` overlapping
                    # prefetches on every subsequent miss in the stream.
                    stream.last_addr = picks[-1]
                    return picks
                return []
            if addr == stream.last_addr - 1 and stream.confidence == 0:
                # Second touch descending: flip to a backward stream.
                stream.direction = -1
                stream.last_addr = addr
                stream.confidence = 1
                stream.age = 0
                return []
        self._allocate(addr)
        return []

    def _allocate(self, addr: int) -> None:
        if len(self._streams) < self.config.num_streams:
            self._streams.append(_Stream(last_addr=addr))
            return
        victim = max(self._streams, key=lambda s: s.age)
        victim.last_addr = addr
        victim.direction = 1
        victim.confidence = 0
        victim.age = 0
