"""A Markov (correlation) prefetcher -- the strongest traditional strawman.

Stream and stride prefetchers only capture regular address arithmetic; a
Markov prefetcher (Joseph & Grunwald, ISCA'97) records which miss tends to
*follow* which, and predicts successors of the current miss from that
history -- it can follow pointer chains the others cannot.  The section
5.2 conclusion still holds: on ORAM every prediction is a full blocking
path access, so even the strongest traditional prefetcher buys little.

The table maps a miss address to its most recent successors (first-order
Markov chain with per-entry LRU of successors).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import PrefetchConfig


@dataclass
class MarkovPrefetcher:
    """First-order miss-correlation predictor.

    Attributes:
        config: ``depth`` bounds successors predicted per miss;
            ``num_streams`` is reused as the successor-list width.
        table_entries: capacity of the correlation table (LRU-replaced).
    """

    config: PrefetchConfig
    table_entries: int = 256
    _table: "OrderedDict[int, List[int]]" = field(default_factory=OrderedDict)
    _last_miss: Optional[int] = None
    #: predictions handed to the backend and not yet seen again as demand
    #: misses; re-predicting one would duplicate an in-flight prefetch
    _in_flight: "OrderedDict[int, None]" = field(default_factory=OrderedDict)
    issued: int = 0

    def on_demand_miss(self, addr: int) -> List[int]:
        """Record the (previous -> current) transition; predict successors."""
        # The address showed up as a demand miss, so any prefetch we had in
        # flight for it is resolved (usefully or not) -- it may be predicted
        # again.
        self._in_flight.pop(addr, None)
        if self._last_miss is not None and self._last_miss != addr:
            successors = self._table.get(self._last_miss)
            if successors is None:
                if len(self._table) >= self.table_entries:
                    self._table.popitem(last=False)
                successors = []
                self._table[self._last_miss] = successors
            else:
                self._table.move_to_end(self._last_miss)
            if addr in successors:
                successors.remove(addr)
            successors.insert(0, addr)  # most recent first
            del successors[self.config.num_streams:]
        self._last_miss = addr
        successors = self._table.get(addr)
        if successors is None:
            return []
        # Prediction is a *use* of the entry: refresh its LRU recency, or
        # hot predicted-from entries get evicted while stale trained-into
        # entries survive.
        self._table.move_to_end(addr)
        predictions: List[int] = []
        for successor in successors:
            if len(predictions) >= self.config.depth:
                break
            if successor in self._in_flight:
                continue  # suppressed: already in flight, and not re-counted
            predictions.append(successor)
        for successor in predictions:
            self._in_flight[successor] = None
        while len(self._in_flight) > self.table_entries:
            self._in_flight.popitem(last=False)
        self.issued += len(predictions)
        return predictions
