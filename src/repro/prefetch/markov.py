"""A Markov (correlation) prefetcher -- the strongest traditional strawman.

Stream and stride prefetchers only capture regular address arithmetic; a
Markov prefetcher (Joseph & Grunwald, ISCA'97) records which miss tends to
*follow* which, and predicts successors of the current miss from that
history -- it can follow pointer chains the others cannot.  The section
5.2 conclusion still holds: on ORAM every prediction is a full blocking
path access, so even the strongest traditional prefetcher buys little.

The table maps a miss address to its most recent successors (first-order
Markov chain with per-entry LRU of successors).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import PrefetchConfig


@dataclass
class MarkovPrefetcher:
    """First-order miss-correlation predictor.

    Attributes:
        config: ``depth`` bounds successors predicted per miss;
            ``num_streams`` is reused as the successor-list width.
        table_entries: capacity of the correlation table (LRU-replaced).
    """

    config: PrefetchConfig
    table_entries: int = 256
    _table: "OrderedDict[int, List[int]]" = field(default_factory=OrderedDict)
    _last_miss: Optional[int] = None
    issued: int = 0

    def on_demand_miss(self, addr: int) -> List[int]:
        """Record the (previous -> current) transition; predict successors."""
        if self._last_miss is not None and self._last_miss != addr:
            successors = self._table.get(self._last_miss)
            if successors is None:
                if len(self._table) >= self.table_entries:
                    self._table.popitem(last=False)
                successors = []
                self._table[self._last_miss] = successors
            else:
                self._table.move_to_end(self._last_miss)
            if addr in successors:
                successors.remove(addr)
            successors.insert(0, addr)  # most recent first
            del successors[self.config.num_streams:]
        self._last_miss = addr
        predictions = list(self._table.get(addr, ()))[: self.config.depth]
        self.issued += len(predictions)
        return predictions
