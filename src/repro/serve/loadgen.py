"""Deterministic open- and closed-loop load generators.

Both sources speak the same protocol the front-end event loop drives:

* :meth:`LoadSource.next_arrival_cycle` -- peek the next arrival time;
* :meth:`LoadSource.take_arrivals` -- pop every request due at/before a
  cycle, in ``(cycle, req_id)`` order;
* :meth:`LoadSource.on_completion` / :meth:`LoadSource.on_shed` --
  completion feedback (the closed-loop source schedules each client's next
  request from it; the open-loop source ignores it);
* :attr:`LoadSource.exhausted` -- no arrival will *ever* surface again.

Everything draws from forked :class:`~repro.utils.rng.DeterministicRng`
streams, so a (source seed, front-end config, bank seed) triple replays
bit-identically.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.serve.request import Request
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

DEFAULT_DEADLINE = 30_000


class LoadSource:
    """Base: a deterministic time-ordered arrival heap."""

    def __init__(self, num_tenants: int, weights: Optional[Sequence[int]] = None):
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        self.num_tenants = num_tenants
        self.weights: List[int] = list(weights) if weights else [1] * num_tenants
        if len(self.weights) != num_tenants:
            raise ValueError("one weight per tenant")
        self._heap: List[Tuple[int, int, Request]] = []
        self._next_id = 0
        self._max_addr = -1

    # -------------------------------------------------------------- scheduling
    def _schedule(
        self,
        cycle: int,
        tenant: int,
        addr: int,
        is_write: bool,
        deadline: int,
        client: int = -1,
    ) -> Request:
        request = Request(
            req_id=self._next_id,
            tenant=tenant,
            addr=addr,
            is_write=is_write,
            arrival_cycle=cycle,
            deadline_cycles=deadline,
            client=client,
        )
        heapq.heappush(self._heap, (cycle, request.req_id, request))
        self._next_id += 1
        if addr > self._max_addr:
            self._max_addr = addr
        return request

    # ---------------------------------------------------------------- protocol
    def next_arrival_cycle(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def take_arrivals(self, now: int) -> List[Request]:
        """Pop every request with ``arrival_cycle <= now``."""
        due: List[Request] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[2])
        return due

    def on_completion(self, request: Request, cycle: int) -> None:
        """A request finished (default: open loop, nothing to do)."""

    def on_shed(self, request: Request, cycle: int) -> None:
        """A request was shed at admission (default: nothing to do)."""

    @property
    def exhausted(self) -> bool:
        return not self._heap


class OpenLoopSource(LoadSource):
    """Arrivals fixed up front; completions do not influence the stream."""

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        num_tenants: int = 1,
        *,
        weights: Optional[Sequence[int]] = None,
        deadline_cycles: int = DEFAULT_DEADLINE,
        load_scale: float = 1.0,
    ) -> "OpenLoopSource":
        """Offer a :class:`Trace` round-robin across ``num_tenants``.

        Arrival times are the trace's cumulative compute gaps divided by
        ``load_scale`` (2.0 = offer twice as fast).  The trace's incremental
        ``write_fraction`` / ``total_gap_cycles`` feed the CLI banner.
        """
        if load_scale <= 0.0:
            raise ValueError("load scale must be positive")
        source = cls(num_tenants, weights)
        now = 0.0
        for index, (gap, addr, is_write) in enumerate(trace.entries):
            now += gap / load_scale
            source._schedule(
                int(now), index % num_tenants, addr, bool(is_write),
                deadline_cycles,
            )
        return source

    @classmethod
    def synthetic(
        cls,
        num_tenants: int,
        requests_per_tenant: int,
        *,
        footprint_per_tenant: int = 2_048,
        gap_mean: float = 200.0,
        locality: float = 0.5,
        write_fraction: float = 0.2,
        deadline_cycles: int = DEFAULT_DEADLINE,
        weights: Optional[Sequence[int]] = None,
        seed: int = 42,
    ) -> "OpenLoopSource":
        """Multi-tenant synthetic mix over disjoint per-tenant regions.

        Each tenant cyclically scans a ``locality`` fraction of its private
        region and hits the rest uniformly at random (the section 5.3
        pattern), with exponential inter-arrival gaps of ``gap_mean``
        cycles -- the open-loop knob benchmarks sweep for offered load.
        """
        if requests_per_tenant < 1:
            raise ValueError("need at least one request per tenant")
        if footprint_per_tenant < 1:
            raise ValueError("tenant regions need at least one block")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        source = cls(num_tenants, weights)
        root = DeterministicRng(seed)
        seq_blocks = int(footprint_per_tenant * locality)
        if locality > 0.0 and seq_blocks == 0:
            seq_blocks = 1
        arrivals: List[Tuple[int, int, int, bool]] = []
        for tenant in range(num_tenants):
            rng = root.fork(17 + tenant)
            base = tenant * footprint_per_tenant
            pointer = 0
            now = 0
            for _ in range(requests_per_tenant):
                now += rng.expovariate_int(gap_mean)
                if seq_blocks > 0 and rng.random() < locality:
                    offset = pointer
                    pointer = (pointer + 1) % seq_blocks
                elif seq_blocks >= footprint_per_tenant:
                    offset = rng.randint(0, footprint_per_tenant - 1)
                else:
                    offset = rng.randint(seq_blocks, footprint_per_tenant - 1)
                is_write = rng.random() < write_fraction
                arrivals.append((now, tenant, base + offset, is_write))
        # Global arrival order: by cycle, ties by tenant -- req_ids are
        # assigned in that order so every downstream tie-break is stable.
        arrivals.sort(key=lambda item: (item[0], item[1]))
        for cycle, tenant, addr, is_write in arrivals:
            source._schedule(cycle, tenant, addr, is_write, deadline_cycles)
        return source

    @property
    def footprint_blocks(self) -> int:
        """Smallest footprint covering every address ever scheduled.

        Tracked at scheduling time (not read off the live heap), so the
        value survives the run draining the arrivals.
        """
        return self._max_addr + 1


class ClosedLoopSource(LoadSource):
    """Fixed client population; each client thinks, issues, and blocks.

    A client's next request is scheduled ``think`` cycles after its
    previous one completes (or is shed -- a shed request still unblocks
    the client, modelling a user retrying later), so offered load adapts
    to service capacity like a real interactive population.
    """

    def __init__(
        self,
        num_tenants: int,
        clients_per_tenant: int,
        requests_per_client: int,
        *,
        footprint_per_tenant: int = 2_048,
        think_mean: float = 500.0,
        write_fraction: float = 0.2,
        deadline_cycles: int = DEFAULT_DEADLINE,
        weights: Optional[Sequence[int]] = None,
        seed: int = 42,
    ):
        super().__init__(num_tenants, weights)
        if clients_per_tenant < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request each")
        if footprint_per_tenant < 1:
            raise ValueError("tenant regions need at least one block")
        self.deadline_cycles = deadline_cycles
        self.write_fraction = write_fraction
        self.footprint_per_tenant = footprint_per_tenant
        root = DeterministicRng(seed)
        self.think_mean = think_mean
        self._rngs: List[DeterministicRng] = []
        self._remaining: List[int] = []
        self._tenant_of: List[int] = []
        client = 0
        for tenant in range(num_tenants):
            for _ in range(clients_per_tenant):
                rng = root.fork(1009 + client)
                self._rngs.append(rng)
                self._remaining.append(requests_per_client)
                self._tenant_of.append(tenant)
                self._issue_next(client, 0)
                client += 1

    def _issue_next(self, client: int, after_cycle: int) -> None:
        rng = self._rngs[client]
        tenant = self._tenant_of[client]
        cycle = after_cycle + rng.expovariate_int(self.think_mean)
        addr = tenant * self.footprint_per_tenant + rng.randint(
            0, self.footprint_per_tenant - 1
        )
        is_write = rng.random() < self.write_fraction
        self._remaining[client] -= 1
        self._schedule(
            cycle, tenant, addr, is_write, self.deadline_cycles, client=client
        )

    def _advance(self, request: Request, cycle: int) -> None:
        client = request.client
        if client >= 0 and self._remaining[client] > 0:
            self._issue_next(client, cycle)

    def on_completion(self, request: Request, cycle: int) -> None:
        self._advance(request, cycle)

    def on_shed(self, request: Request, cycle: int) -> None:
        self._advance(request, cycle)

    @property
    def exhausted(self) -> bool:
        # Clients blocked on an in-flight request will schedule again from
        # completion feedback; only a drained heap with no credits left is
        # truly done.
        return not self._heap and all(r == 0 for r in self._remaining)

    @property
    def footprint_blocks(self) -> int:
        return self.num_tenants * self.footprint_per_tenant
