"""The deadline-aware request-serving front end (DESIGN.md section 12).

:class:`ServingFrontEnd` sits between a multi-tenant request stream (a
:mod:`repro.serve.loadgen` source) and a
:class:`~repro.controller.sharded.ShardedORAMBank`.  It is a cycle-clocked
discrete-event loop over three event kinds -- request arrivals, ORAM access
completions, and batch deadline closes -- that applies four policies:

1. **Admission control**: bounded per-tenant ingress queues with a global
   backlog cap and a stash-pressure watermark, shedding load *before* the
   stash feels it.
2. **Weighted-fair batching**: queued requests drain into per-shard
   batches via smooth weighted round-robin (:class:`~repro.serve.queue.
   TenantQueues`); a shard runs at most one batch in flight, so overload
   backs up into the fair queues instead of the ORAM.
3. **Coalescing**: concurrent requests for the same super block dedupe
   onto one pending ORAM access (reads may also latch onto an
   already-issued access, MSHR-style) and the completion fans back out.
4. **Deadline-aware closes**: a batch issues when it fills its quota or
   when its oldest member has spent half (``deadline_close_fraction``) of
   its deadline budget waiting -- and drains immediately once the source
   is exhausted.

Health integration: DEGRADED shards get ``quota_for(throttled)``-sized
batches; QUARANTINED shards are rerouted at admission onto a serial
fallback lane whose accesses the bank pads with dummy paths.

Everything ties are broken on (cycle, sequence) pairs, so a run is a pure
function of (source, config, bank seed).  With ``ServeConfig.enabled``
False the loop degenerates to issuing each request at its arrival cycle
in arrival order -- bit-identical, via the shared snapshot/merge path, to
:func:`repro.parallel.merge.run_serial_reference` over the same stream.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.config import ServeConfig, SystemConfig
from repro.observability.metrics import MetricsRegistry
from repro.parallel.merge import merge_shard_snapshots
from repro.serve.loadgen import LoadSource
from repro.serve.queue import TenantQueues
from repro.serve.request import SERVED, SHED, Request, ServeReport, TenantReport


class _Access:
    """One pending/issued ORAM access serving >= 1 coalesced requests."""

    __slots__ = (
        "addr", "is_write", "requests", "shard", "key", "inflight_key",
        "completion_cycle",
    )

    def __init__(self, request: Request, key):
        self.addr = request.addr
        self.is_write = request.is_write
        self.requests: List[Request] = [request]
        self.shard = -1
        #: open-group coalescing key (None with coalescing off)
        self.key = key
        #: in-flight coalescing key, stamped at issue time
        self.inflight_key = None
        self.completion_cycle = -1


class ServingFrontEnd:
    """Deadline-aware serving layer over a sharded ORAM bank.

    Args:
        bank: the (already built) :class:`ShardedORAMBank`; its optional
            health plane drives quotas and quarantine rerouting.
        serve_config: policies (:class:`~repro.config.ServeConfig`).
        workload: label stamped on the report and merged SimResult.
        scheme: scheme label for the same.
        registry: metrics sink; a private one is created when omitted.

    A front end drives its bank's state forward, so :meth:`run` may be
    called once per instance.
    """

    def __init__(
        self,
        bank,
        serve_config: Optional[ServeConfig] = None,
        *,
        workload: str = "serve",
        scheme: str = "dyn",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.bank = bank
        self.config = serve_config or ServeConfig()
        self.health = bank.health
        self.workload = workload
        self.scheme = scheme
        self.registry = registry if registry is not None else MetricsRegistry()
        num_shards = bank.num_shards
        self.queues: Optional[TenantQueues] = None
        self._open_batches: List[List[_Access]] = [[] for _ in range(num_shards)]
        self._open_groups: Dict[Tuple[int, int], _Access] = {}
        self._inflight_groups: Dict[Tuple[int, int], _Access] = {}
        self._outstanding: List[int] = [0] * num_shards
        self._fallback: List[List[Request]] = [[] for _ in range(num_shards)]
        self._comp_heap: List[Tuple[int, int, _Access]] = []
        self._event_seq = 0
        #: (addr, issue_cycle, is_write) in issue order -- replayable
        #: through ``run_serial_reference`` / ``ParallelShardRuntime.run``
        self.issued: List[Tuple[int, int, bool]] = []
        #: completion cycle per issued access, in issue order
        self.access_completions: List[int] = []
        self.all_requests: List[Request] = []
        self._makespan = 0
        self._sum_latency = 0
        self._ran = False

    # -------------------------------------------------------------- factories
    @classmethod
    def build(
        cls,
        scheme: str,
        footprint_blocks: int,
        config: Optional[SystemConfig] = None,
        num_shards: int = 1,
        *,
        serve_config: Optional[ServeConfig] = None,
        health_policy=None,
        static_sbsize: Optional[int] = None,
        workload: str = "serve",
        registry: Optional[MetricsRegistry] = None,
    ) -> "ServingFrontEnd":
        """Build a bank exactly as the serial reference does and wrap it.

        ``health_policy`` (a :class:`~repro.health.HealthPolicy`) attaches
        a control plane so admission rerouting and degraded quotas engage.
        """
        from repro.controller.sharded import ShardedORAMBank
        from repro.sim.system import build_shard_backend

        config = config or SystemConfig()
        shards = [
            build_shard_backend(
                scheme, footprint_blocks, config, index, num_shards,
                static_sbsize=static_sbsize,
            )
            for index in range(num_shards)
        ]
        bank = ShardedORAMBank(shards)
        if health_policy is not None:
            from repro.health.plane import HealthControlPlane

            bank.attach_health(HealthControlPlane(num_shards, health_policy))
        return cls(
            bank, serve_config, workload=workload, scheme=scheme,
            registry=registry,
        )

    # ------------------------------------------------------------------- run
    def run(self, source: LoadSource) -> ServeReport:
        """Drive the source to exhaustion; return the serving report."""
        if self._ran:
            raise RuntimeError("a front end drives its bank once; build a new one")
        self._ran = True
        self.queues = TenantQueues(source.weights, self.config.queue_capacity)
        self._tenant_counts = [TenantReport(tenant=t) for t in range(source.num_tenants)]
        if self.config.enabled:
            self._serve_loop(source)
        else:
            self._bypass_loop(source)
        return self._finish(source)

    # ------------------------------------------------------------ event loops
    def _serve_loop(self, source: LoadSource) -> None:
        now = 0
        while True:
            next_arrival = source.next_arrival_cycle()
            next_completion = self._comp_heap[0][0] if self._comp_heap else None
            next_close = self._next_close()
            candidates = [
                c for c in (next_arrival, next_completion, next_close)
                if c is not None
            ]
            if not candidates:
                break
            now = max(now, min(candidates))
            while self._comp_heap and self._comp_heap[0][0] <= now:
                _, _, access = heapq.heappop(self._comp_heap)
                self._complete(access, source)
            for request in source.take_arrivals(now):
                self._admit(request, source, now)
            self._pump(source, now)

    def _bypass_loop(self, source: LoadSource) -> None:
        """Front end disabled: issue each request at its arrival cycle.

        Per-shard issue order equals arrival order and ``now`` equals the
        arrival cycle, which is exactly the request stream
        ``run_serial_reference`` replays -- so the merged SimResult is
        bit-identical to the no-front-end bank.
        """
        counters = self._tenant_counts
        latency_hist = self.registry.histogram("serve.latency_cycles")
        while True:
            next_arrival = source.next_arrival_cycle()
            next_completion = self._comp_heap[0][0] if self._comp_heap else None
            if next_arrival is None and next_completion is None:
                break
            now = min(c for c in (next_arrival, next_completion) if c is not None)
            while self._comp_heap and self._comp_heap[0][0] <= now:
                _, _, access = heapq.heappop(self._comp_heap)
                request = access.requests[0]
                source.on_completion(request, access.completion_cycle)
            for request in source.take_arrivals(now):
                self.all_requests.append(request)
                tenant = counters[request.tenant]
                tenant.offered += 1
                tenant.admitted += 1
                access = _Access(request, None)
                access.shard = self.bank.shard_of(request.addr)
                result = self.bank.demand_access(
                    request.addr, request.arrival_cycle, request.is_write
                )
                access.completion_cycle = result.completion_cycle
                self.issued.append(
                    (request.addr, request.arrival_cycle, request.is_write)
                )
                self.access_completions.append(result.completion_cycle)
                request.status = SERVED
                request.completion_cycle = result.completion_cycle
                self._makespan = max(self._makespan, result.completion_cycle)
                self._sum_latency += request.latency
                latency_hist.record(request.latency)
                self.registry.histogram(
                    f"serve.tenant{request.tenant}.latency_cycles"
                ).record(request.latency)
                tenant.served += 1
                heapq.heappush(
                    self._comp_heap,
                    (result.completion_cycle, self._event_seq, access),
                )
                self._event_seq += 1

    # -------------------------------------------------------------- admission
    def _admit(self, request: Request, source: LoadSource, now: int) -> None:
        config = self.config
        self.all_requests.append(request)
        self._tenant_counts[request.tenant].offered += 1
        self.registry.counter("serve.offered").inc()
        shard = self.bank.shard_of(request.addr)
        if self.health is not None and self.health.should_reroute(shard):
            if len(self._fallback[shard]) >= config.queue_capacity:
                self._shed(request, source, now, "queue_full")
                return
            request.rerouted = True
            self._fallback[shard].append(request)
            self._tenant_counts[request.tenant].admitted += 1
            self.registry.counter("serve.admitted").inc()
            self.registry.counter("serve.rerouted").inc()
            return
        if (
            config.stash_shed_fraction > 0.0
            and self.bank.stash_fraction(shard) >= config.stash_shed_fraction
        ):
            self._shed(request, source, now, "pressure")
            return
        if config.max_backlog and self._backlog() >= config.max_backlog:
            self._shed(request, source, now, "backlog")
            return
        if not self.queues.push(request):
            self._shed(request, source, now, "queue_full")
            return
        self._tenant_counts[request.tenant].admitted += 1
        self.registry.counter("serve.admitted").inc()

    def _shed(
        self, request: Request, source: LoadSource, now: int, reason: str
    ) -> None:
        request.status = SHED
        self._tenant_counts[request.tenant].shed += 1
        self.registry.counter("serve.shed").inc()
        self.registry.counter(f"serve.shed_{reason}").inc()
        source.on_shed(request, now)

    def _backlog(self) -> int:
        """Admitted-but-unissued requests (queued, batched, or fallback)."""
        return (
            self.queues.total_depth()
            + sum(
                len(access.requests)
                for batch in self._open_batches
                for access in batch
            )
            + sum(len(lane) for lane in self._fallback)
        )

    # ----------------------------------------------------- batching/coalescing
    def _quota(self, shard: int) -> int:
        throttled = self.health is not None and self.health.throttled(shard)
        return self.config.quota_for(throttled)

    def _close_cycle(self, shard: int) -> int:
        """Deadline-close cycle of a shard's open batch (min over members)."""
        fraction = self.config.deadline_close_fraction
        return min(
            request.arrival_cycle + int(request.deadline_cycles * fraction)
            for access in self._open_batches[shard]
            for request in access.requests
        )

    def _next_close(self) -> Optional[int]:
        cycles = [
            self._close_cycle(shard)
            for shard in range(self.bank.num_shards)
            if self._open_batches[shard] and not self._outstanding[shard]
        ]
        return min(cycles) if cycles else None

    def _placeable(self, request: Request, now: int) -> bool:
        shard = self.bank.shard_of(request.addr)
        if self.config.coalesce:
            key = self.bank.coalesce_key(request.addr)
            if key in self._open_groups:
                return True
            if key in self._inflight_groups and not request.is_write:
                return True
        return len(self._open_batches[shard]) < self._quota(shard)

    def _place(self, request: Request, now: int) -> None:
        shard = self.bank.shard_of(request.addr)
        key = self.bank.coalesce_key(request.addr) if self.config.coalesce else None
        if key is not None:
            open_access = self._open_groups.get(key)
            if open_access is not None:
                open_access.requests.append(request)
                open_access.is_write = open_access.is_write or request.is_write
                self._mark_coalesced(request)
                return
            inflight = self._inflight_groups.get(key)
            if inflight is not None and not request.is_write:
                # MSHR-style: the super block is already on its way; ride
                # the pending access and share its completion.
                inflight.requests.append(request)
                self._mark_coalesced(request)
                return
        access = _Access(request, key)
        access.shard = shard
        self._open_batches[shard].append(access)
        if key is not None:
            self._open_groups[key] = access

    def _mark_coalesced(self, request: Request) -> None:
        request.coalesced = True
        self._tenant_counts[request.tenant].coalesced += 1
        self.registry.counter("serve.coalesced").inc()

    def _pump(self, source: LoadSource, now: int) -> None:
        """Fill batches from the fair queues and issue every ready one.

        Runs to a fixpoint: closing a batch frees quota, which may make
        more queued requests placeable, which may fill another batch.
        """
        while True:
            progress = False
            while True:
                request = self.queues.pop_where(
                    lambda r: self._placeable(r, now)
                )
                if request is None:
                    break
                self._place(request, now)
                progress = True
            drain = source.exhausted and not self.queues
            for shard in range(self.bank.num_shards):
                if self._outstanding[shard]:
                    continue
                if self._fallback[shard]:
                    self._issue_fallback(shard, now)
                    progress = True
                    continue
                batch = self._open_batches[shard]
                if not batch:
                    continue
                if len(batch) >= self._quota(shard):
                    reason = "full"
                elif now >= self._close_cycle(shard):
                    reason = "deadline"
                elif drain and not self._fallback[shard]:
                    reason = "drain"
                else:
                    continue
                self._issue_batch(shard, now, reason)
                progress = True
            if not progress:
                break

    # ---------------------------------------------------------------- issuing
    def _issue_one(self, access: _Access, shard: int, now: int) -> None:
        result = self.bank.demand_access(access.addr, now, access.is_write)
        access.shard = shard
        access.completion_cycle = result.completion_cycle
        self.issued.append((access.addr, now, access.is_write))
        self.access_completions.append(result.completion_cycle)
        self._outstanding[shard] += 1
        if self.config.coalesce:
            access.inflight_key = self.bank.coalesce_key(access.addr)
            self._inflight_groups[access.inflight_key] = access
        wait_hist = self.registry.histogram("serve.queue_wait_cycles")
        for request in access.requests:
            wait_hist.record(now - request.arrival_cycle)
        heapq.heappush(
            self._comp_heap, (result.completion_cycle, self._event_seq, access)
        )
        self._event_seq += 1

    def _issue_fallback(self, shard: int, now: int) -> None:
        """Serial fallback lane: one rerouted request, one padded access."""
        request = self._fallback[shard].pop(0)
        access = _Access(request, None)
        self.registry.counter("serve.fallback_issues").inc()
        self._issue_one(access, shard, now)

    def _issue_batch(self, shard: int, now: int, reason: str) -> None:
        batch = self._open_batches[shard]
        self._open_batches[shard] = []
        for access in batch:
            if access.key is not None:
                self._open_groups.pop(access.key, None)
        # Super-block membership may have shifted (merges/breaks) since the
        # group formed; requests no longer riding the leader's super block
        # get their own access so nobody is "served" by a path that never
        # touched their block.
        final: List[_Access] = []
        stride = self.bank.num_shards
        scheme = self.bank.shards[shard].scheme
        for access in batch:
            final.append(access)
            if len(access.requests) <= 1:
                continue
            members = set(scheme.members_for(access.addr // stride))
            keep = [access.requests[0]]
            for request in access.requests[1:]:
                if request.addr // stride in members:
                    keep.append(request)
                else:
                    split = _Access(request, None)
                    final.append(split)
            if len(keep) != len(access.requests):
                access.requests = keep
                access.is_write = any(r.is_write for r in keep)
        self.registry.counter("serve.batches").inc()
        self.registry.counter(f"serve.{reason}_closes").inc()
        self.registry.histogram("serve.batch_occupancy").record(len(final))
        for access in final:
            self._issue_one(access, shard, now)

    # ------------------------------------------------------------- completion
    def _complete(self, access: _Access, source: LoadSource) -> None:
        shard = access.shard
        self._outstanding[shard] -= 1
        if (
            access.inflight_key is not None
            and self._inflight_groups.get(access.inflight_key) is access
        ):
            del self._inflight_groups[access.inflight_key]
        cycle = access.completion_cycle
        self._makespan = max(self._makespan, cycle)
        latency_hist = self.registry.histogram("serve.latency_cycles")
        for request in access.requests:
            request.status = SERVED
            request.completion_cycle = cycle
            latency = request.latency
            self._sum_latency += latency
            latency_hist.record(latency)
            self.registry.histogram(
                f"serve.tenant{request.tenant}.latency_cycles"
            ).record(latency)
            self._tenant_counts[request.tenant].served += 1
            self.registry.counter("serve.served").inc()
            if request.missed_deadline:
                self.registry.counter("serve.deadline_misses").inc()
            source.on_completion(request, cycle)

    # --------------------------------------------------------------- report
    def _finish(self, source: LoadSource) -> ServeReport:
        registry = self.registry
        bank = self.bank
        bank.finalize(self._makespan)
        for tenant in range(source.num_tenants):
            registry.gauge(f"serve.tenant{tenant}.queue_peak").set(
                self.queues.peak_depth[tenant]
            )
        latency_hist = registry.histogram("serve.latency_cycles")
        report = ServeReport(
            workload=self.workload,
            scheme=self.scheme,
            num_shards=bank.num_shards,
            makespan_cycles=self._makespan,
        )
        for counts in self._tenant_counts:
            hist = registry.histogram(
                f"serve.tenant{counts.tenant}.latency_cycles"
            )
            counts.p50_latency = hist.quantile(0.5)
            counts.p99_latency = hist.quantile(0.99)
            report.tenants.append(counts)
            report.offered += counts.offered
            report.admitted += counts.admitted
            report.shed += counts.shed
            report.served += counts.served
            report.coalesced += counts.coalesced
        report.rerouted = registry.counter("serve.rerouted").value
        report.batches = registry.counter("serve.batches").value
        report.full_closes = registry.counter("serve.full_closes").value
        report.deadline_closes = registry.counter("serve.deadline_closes").value
        report.drain_closes = registry.counter("serve.drain_closes").value
        report.deadline_misses = registry.counter("serve.deadline_misses").value
        if report.served:
            report.mean_latency = self._sum_latency / report.served
        report.p50_latency = latency_hist.quantile(0.5)
        report.p99_latency = latency_hist.quantile(0.99)
        # Deliberately no serve-specific keys in sim.extra: with the front
        # end bypassed this SimResult must compare equal, field for field,
        # to the no-front-end bank's (the pinned golden).
        report.sim = merge_shard_snapshots(
            bank.snapshot_shards(),
            self.access_completions,
            workload=self.workload,
            scheme=self.scheme,
        )
        return report
