"""Bounded per-tenant ingress queues with weighted-fair dequeue.

Admission control and fairness live here, decoupled from batch formation:
each tenant owns one bounded FIFO, and :meth:`TenantQueues.pop_where`
picks the next tenant by *smooth weighted round-robin* -- every pick, each
backlogged tenant's credit grows by its weight and the highest-credit
tenant (ties break on the lower index) is served and debited by the total
active weight.  The schedule is a pure function of the push/pop sequence,
so the front end stays seed-deterministic, and over any busy window tenant
``i`` receives service proportional to ``weight_i``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.serve.request import Request


class TenantQueues:
    """N bounded FIFOs behind one weighted-fair dequeue surface.

    Args:
        weights: per-tenant service weights (positive integers).
        capacity: per-tenant queue bound; :meth:`push` refuses (sheds)
            beyond it.
    """

    def __init__(self, weights: Sequence[int], capacity: int):
        if not weights:
            raise ValueError("need at least one tenant")
        if any(w < 1 for w in weights):
            raise ValueError("tenant weights must be positive")
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.weights: List[int] = list(weights)
        self.capacity = capacity
        self._queues: List[deque] = [deque() for _ in weights]
        self._credit: List[int] = [0] * len(self.weights)
        #: high-water mark per tenant (exported as queue-depth gauges)
        self.peak_depth: List[int] = [0] * len(self.weights)

    # ------------------------------------------------------------------ state
    @property
    def num_tenants(self) -> int:
        return len(self._queues)

    def depth(self, tenant: int) -> int:
        return len(self._queues[tenant])

    def total_depth(self) -> int:
        return sum(len(q) for q in self._queues)

    def __bool__(self) -> bool:
        return any(self._queues)

    # ------------------------------------------------------------------- push
    def push(self, request: Request) -> bool:
        """Enqueue unless the tenant's bound is hit; False means shed."""
        queue = self._queues[request.tenant]
        if len(queue) >= self.capacity:
            return False
        queue.append(request)
        if len(queue) > self.peak_depth[request.tenant]:
            self.peak_depth[request.tenant] = len(queue)
        return True

    # -------------------------------------------------------------------- pop
    def pop_where(
        self, eligible: Optional[Callable[[Request], bool]] = None
    ) -> Optional[Request]:
        """Weighted-fair pop of the next head request passing ``eligible``.

        Tenants whose head request fails the predicate (e.g. its target
        shard's batch is full) are skipped *without* accruing credit for
        the pick, so a blocked tenant neither starves the others nor banks
        unbounded priority while blocked.  Returns None when no eligible
        head exists.
        """
        candidates = [
            tenant
            for tenant, queue in enumerate(self._queues)
            if queue and (eligible is None or eligible(queue[0]))
        ]
        if not candidates:
            return None
        total = 0
        best = -1
        best_credit = 0
        for tenant in candidates:
            self._credit[tenant] += self.weights[tenant]
            total += self.weights[tenant]
            if best < 0 or self._credit[tenant] > best_credit:
                best = tenant
                best_credit = self._credit[tenant]
        self._credit[best] -= total
        return self._queues[best].popleft()
