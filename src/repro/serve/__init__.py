"""Deadline-aware request-serving front end over the sharded ORAM bank.

The production-shaped layer DESIGN.md section 12 describes: bounded
weighted-fair tenant queues, super-block request coalescing, deadline-aware
batch formation, and health-plane backpressure -- all cycle-clocked and
seed-deterministic, with a bypass mode bit-identical to driving the bank
directly.
"""

from repro.serve.frontend import ServingFrontEnd
from repro.serve.loadgen import (
    DEFAULT_DEADLINE,
    ClosedLoopSource,
    LoadSource,
    OpenLoopSource,
)
from repro.serve.queue import TenantQueues
from repro.serve.request import (
    PENDING,
    SERVED,
    SHED,
    Request,
    ServeReport,
    TenantReport,
)

__all__ = [
    "DEFAULT_DEADLINE",
    "PENDING",
    "SERVED",
    "SHED",
    "ClosedLoopSource",
    "LoadSource",
    "OpenLoopSource",
    "Request",
    "ServeReport",
    "ServingFrontEnd",
    "TenantQueues",
    "TenantReport",
]
