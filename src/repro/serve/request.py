"""Request and report types for the serving front end.

A :class:`Request` is one tenant-issued block operation against the
sharded ORAM: it arrives at a cycle, carries a completion-deadline budget,
and is either shed at admission or served at some later completion cycle.
Requests are deliberately small mutable objects -- the front end stamps
completion state onto them as the event loop advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.results import SimResult

#: request dispositions (mutually exclusive, stamped once)
PENDING = "pending"
SERVED = "served"
SHED = "shed"


@dataclass
class Request:
    """One block operation offered to the front end.

    Attributes:
        req_id: globally unique, monotonically increasing per source; ties
            in every deterministic ordering break on it.
        tenant: index of the issuing tenant (fair-queue lane).
        addr: global block address (the bank interleaves ``addr % N``).
        is_write: store vs. load.
        arrival_cycle: cycle the request reached the front end.
        deadline_cycles: admission->completion budget; batch formation
            closes a batch once the oldest member has spent half of it.
        client: closed-loop client index (``-1`` for open-loop sources).
        completion_cycle: stamped when the backing ORAM access completes.
        status: one of ``pending`` / ``served`` / ``shed``.
        coalesced: served by attaching to another request's ORAM access.
        rerouted: admitted via the quarantine fallback lane.
    """

    req_id: int
    tenant: int
    addr: int
    is_write: bool
    arrival_cycle: int
    deadline_cycles: int
    client: int = -1
    completion_cycle: int = -1
    status: str = PENDING
    coalesced: bool = False
    rerouted: bool = False

    @property
    def latency(self) -> int:
        """Admission->completion cycles (valid once served)."""
        return self.completion_cycle - self.arrival_cycle

    @property
    def missed_deadline(self) -> bool:
        return self.status == SERVED and self.latency > self.deadline_cycles


@dataclass
class TenantReport:
    """Per-tenant serving outcome."""

    tenant: int
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    served: int = 0
    coalesced: int = 0
    p50_latency: int = 0
    p99_latency: int = 0


@dataclass
class ServeReport:
    """Everything one front-end run produces.

    ``sim`` is the access-level :class:`SimResult` merged from the bank's
    per-shard snapshots -- with the front end bypassed it is bit-identical
    to replaying the same request stream straight through the bank, which
    is what the determinism tests pin.
    """

    workload: str
    scheme: str
    num_shards: int
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    served: int = 0
    coalesced: int = 0
    rerouted: int = 0
    batches: int = 0
    full_closes: int = 0
    deadline_closes: int = 0
    drain_closes: int = 0
    deadline_misses: int = 0
    makespan_cycles: int = 0
    mean_latency: float = 0.0
    p50_latency: int = 0
    p99_latency: int = 0
    tenants: List[TenantReport] = field(default_factory=list)
    sim: Optional[SimResult] = None

    @property
    def served_per_kilocycle(self) -> float:
        """Served throughput over the run's makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return 1000.0 * self.served / self.makespan_cycles

    def as_dict(self) -> Dict:
        """JSON-ready snapshot (benchmark artifacts)."""
        import dataclasses

        data = dataclasses.asdict(self)
        data["served_per_kilocycle"] = self.served_per_kilocycle
        return data

    def render(self) -> str:
        lines = [
            f"serve: {self.workload} on {self.scheme}, "
            f"{self.num_shards}-shard bank",
            f"  offered {self.offered}  admitted {self.admitted}  "
            f"shed {self.shed}  served {self.served}",
            f"  coalesced {self.coalesced}  rerouted {self.rerouted}  "
            f"batches {self.batches} "
            f"(full {self.full_closes} / deadline {self.deadline_closes} / "
            f"drain {self.drain_closes})",
            f"  makespan {self.makespan_cycles:,} cycles  "
            f"throughput {self.served_per_kilocycle:.2f} req/kcycle",
            f"  latency mean {self.mean_latency:,.0f}  "
            f"p50<={self.p50_latency:,}  p99<={self.p99_latency:,}  "
            f"deadline misses {self.deadline_misses}",
        ]
        for tenant in self.tenants:
            lines.append(
                f"    tenant{tenant.tenant}: offered {tenant.offered}  "
                f"shed {tenant.shed}  served {tenant.served}  "
                f"p50<={tenant.p50_latency:,}  p99<={tenant.p99_latency:,}"
            )
        return "\n".join(lines)
