"""Multi-core simulation: several in-order cores sharing the LLC and ORAM.

The paper's Graphite setup is a tiled multicore with one memory controller
(section 5.1); the single-tile simulator in :mod:`repro.sim.system` is its
steady-state equivalent.  This module adds the multi-core shape for
contention studies: each core replays its own trace through a private L1;
the LLC, the super block scheme, and the (serialized!) ORAM controller are
shared.  Cores interleave by simulated time -- at every step the core with
the smallest local clock executes its next reference -- so memory-bound
cores naturally queue behind each other at the ORAM.

Note the security angle: the ORAM serializes *everyone's* accesses into one
indistinguishable stream, so co-running programs cannot be told apart on
the memory bus either.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from repro.cache.set_associative import SetAssociativeCache
from repro.config import SystemConfig
from repro.memory.backend import MemoryBackend
from repro.sim.results import SimResult
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace


class MultiCoreSystem:
    """N cores, private L1s, one shared LLC, one shared memory backend."""

    def __init__(self, config: SystemConfig, backend: MemoryBackend, num_cores: int):
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.config = config
        self.backend = backend
        self.num_cores = num_cores
        self._now_global = 0
        self.llc = SetAssociativeCache(config.llc, name="llc")
        self.l1s = [SetAssociativeCache(config.l1, name=f"l1.{i}") for i in range(num_cores)]
        from repro.controller.sharded import ShardedORAMBank
        from repro.memory.oram_backend import ORAMBackend

        if isinstance(backend, (ORAMBackend, ShardedORAMBank)):
            backend.set_llc_probe(self.llc.contains)
        #: optional miss-stream tap: when a list is installed via
        #: :meth:`capture_requests_into`, every demand access the backend
        #: sees is appended as ``(addr, now, is_write)`` in issue order --
        #: exactly the request stream a
        #: :class:`~repro.parallel.runtime.ParallelShardRuntime` replays.
        self._request_capture: Optional[list] = None

    def capture_requests_into(self, buffer: list) -> list:
        """Record the LLC-miss request stream of the next run into *buffer*."""
        self._request_capture = buffer
        return buffer

    # ----------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        scheme: str,
        traces: Sequence[Trace],
        config: Optional[SystemConfig] = None,
        num_shards: int = 1,
    ) -> "MultiCoreSystem":
        """Assemble a shared backend sized for the union footprint.

        ``num_shards > 1`` channel-interleaves the ORAM over independent
        controller instances; misses from different cores to different
        shards overlap their path accesses.
        """
        from repro.analysis.experiments import experiment_config

        config = config or experiment_config()
        footprint = max(trace.footprint_blocks for trace in traces)
        donor = SecureSystem.build(
            scheme, footprint_blocks=footprint, config=config, num_shards=num_shards
        )
        return cls(config, donor.backend, num_cores=len(traces))

    # ------------------------------------------------------------------- run
    def run(self, traces: Sequence[Trace]) -> List[SimResult]:
        """Interleave the traces; returns one result per core."""
        if len(traces) != self.num_cores:
            raise ValueError("one trace per core required")
        clocks = [0] * self.num_cores
        positions = [0] * self.num_cores
        stats = [
            {"l1": 0, "llc": 0, "miss": 0}
            for _ in range(self.num_cores)
        ]
        # Min-heap over (next event time, core).
        heap = [
            (traces[core].entries[0][0], core)
            for core in range(self.num_cores)
            if traces[core].entries
        ]
        heapq.heapify(heap)
        while heap:
            _, core = heapq.heappop(heap)
            gap, addr, is_write = traces[core].entries[positions[core]]
            positions[core] += 1
            now = clocks[core] + gap
            now = self._access(core, addr, bool(is_write), now, stats[core])
            clocks[core] = now
            if positions[core] < len(traces[core].entries):
                next_gap = traces[core].entries[positions[core]][0]
                heapq.heappush(heap, (now + next_gap, core))
        self.backend.finalize(max(clocks))
        return [
            self._collect(traces[core], clocks[core], stats[core], core)
            for core in range(self.num_cores)
        ]

    # ---------------------------------------------------------------- access
    def _access(self, core: int, addr: int, is_write: bool, now: int, stat) -> int:
        l1 = self.l1s[core]
        if l1.lookup(addr, is_write):
            if is_write:
                self.llc.mark_dirty(addr)
            stat["l1"] += 1
            return now + self.config.l1.hit_latency
        if self.llc.lookup(addr, is_write):
            stat["llc"] += 1
            self._fill_l1(core, addr)
            self.backend.on_llc_hit(addr)
            return now + self.config.l1.hit_latency + self.config.llc.hit_latency
        stat["miss"] += 1
        self._now_global = max(self._now_global, now)
        if self._request_capture is not None:
            self._request_capture.append((addr, now, is_write))
        result = self.backend.demand_access(addr, now, is_write)
        for fill_addr, _prefetched in result.filled:
            self._fill_llc(fill_addr, dirty=is_write and fill_addr == addr)
        self._fill_l1(core, addr)
        return result.completion_cycle + self.config.l1.hit_latency

    def _fill_l1(self, core: int, addr: int) -> None:
        self.l1s[core].insert(addr)

    def _fill_llc(self, addr: int, dirty: bool) -> None:
        victim = self.llc.insert(addr, dirty=dirty)
        if victim is not None:
            # Inclusive: drop the line from every private L1.
            for l1 in self.l1s:
                l1.invalidate(victim.addr)
            self.backend.evict_line(victim.addr, victim.dirty, self._now_global)

    # --------------------------------------------------------------- results
    def _collect(self, trace: Trace, cycles: int, stat, core: int) -> SimResult:
        return SimResult(
            workload=f"{trace.name}@core{core}",
            scheme="shared",
            cycles=cycles,
            trace_entries=len(trace),
            l1_hits=stat["l1"],
            llc_hits=stat["llc"],
            llc_misses=stat["miss"],
            demand_requests=self.backend.stats.demand_requests,
            memory_accesses=self.backend.stats.memory_accesses,
            dummy_accesses=self.backend.stats.dummy_accesses,
        )


def capture_miss_stream(
    scheme: str,
    traces: Sequence[Trace],
    config: Optional[SystemConfig] = None,
    num_shards: int = 1,
) -> list:
    """Run a multicore sim and return its LLC-miss stream.

    The returned ``[(addr, now, is_write), ...]`` list is the demand
    request sequence the shared backend actually served, in issue order --
    a realistic address-tagged workload for replaying through a
    :class:`~repro.controller.sharded.ShardedORAMBank` or the
    process-parallel runtime (the parallel benchmarks feed their
    pointer-chase workloads through here).
    """
    system = MultiCoreSystem.build(scheme, traces, config=config, num_shards=num_shards)
    requests = system.capture_requests_into([])
    system.run(traces)
    return requests
