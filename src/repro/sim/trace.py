"""Memory-reference traces.

A trace entry is ``(gap, addr, is_write)``: the in-order core executes
``gap`` cycles of non-memory work, then issues one load/store to *block*
address ``addr``.  Traces work at cacheline granularity -- no experiment in
the paper depends on byte offsets -- and the same trace drives every scheme
so comparisons are exact.

Entries are plain tuples (not objects) because the simulator's inner loop
iterates millions of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

#: (compute-gap cycles, block address, is_write as 0/1)
TraceEntry = Tuple[int, int, int]


@dataclass
class Trace:
    """A named memory trace plus the metadata the harness needs.

    ``total_gap_cycles`` and ``write_fraction`` are maintained
    incrementally: the serving loop and CLI reporting read them per batch,
    and recomputing O(n) sums on every property read made those reads the
    dominant cost on long traces.  Code that appends raw tuples straight to
    :attr:`entries` (the generators' hot loops do) is still correct -- the
    sums lazily absorb the suffix added since the last read.
    """

    name: str
    footprint_blocks: int
    entries: List[TraceEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.footprint_blocks < 1:
            raise ValueError("footprint must be at least one block")
        self._gap_sum = 0
        self._write_sum = 0
        self._summed_len = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def append(self, gap: int, addr: int, is_write: bool = False) -> None:
        if not 0 <= addr < self.footprint_blocks:
            raise ValueError(
                f"address {addr} outside the declared footprint "
                f"[0, {self.footprint_blocks})"
            )
        write = 1 if is_write else 0
        if self._summed_len == len(self.entries):
            self._gap_sum += gap
            self._write_sum += write
            self._summed_len += 1
        self.entries.append((gap, addr, write))

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        """Append many entries atomically, validating each exactly once.

        The batch is staged and summed in a single pass; a bad entry
        raises before anything is appended, so a failed extend leaves the
        trace untouched.
        """
        footprint = self.footprint_blocks
        synced = self._summed_len == len(self.entries)
        gap_sum = 0
        write_sum = 0
        staged: List[TraceEntry] = []
        for gap, addr, is_write in entries:
            if not 0 <= addr < footprint:
                raise ValueError(
                    f"address {addr} outside the declared footprint "
                    f"[0, {footprint})"
                )
            write = 1 if is_write else 0
            staged.append((gap, addr, write))
            gap_sum += gap
            write_sum += write
        self.entries.extend(staged)
        if synced:
            self._gap_sum += gap_sum
            self._write_sum += write_sum
            self._summed_len += len(staged)

    def _sync_sums(self) -> None:
        """Absorb entries appended directly to :attr:`entries` (or a
        wholesale ``entries`` replacement) into the running sums."""
        n = len(self.entries)
        if self._summed_len > n:
            # entries were truncated or replaced: recompute from scratch
            self._gap_sum = 0
            self._write_sum = 0
            self._summed_len = 0
        if self._summed_len < n:
            gap_sum = 0
            write_sum = 0
            for entry in self.entries[self._summed_len:]:
                gap_sum += entry[0]
                write_sum += entry[2]
            self._gap_sum += gap_sum
            self._write_sum += write_sum
            self._summed_len = n

    # ------------------------------------------------------------ properties
    @property
    def total_gap_cycles(self) -> int:
        self._sync_sums()
        return self._gap_sum

    @property
    def write_fraction(self) -> float:
        if not self.entries:
            return 0.0
        self._sync_sums()
        return self._write_sum / len(self.entries)

    def distinct_blocks(self) -> int:
        return len({entry[1] for entry in self.entries})

    # ------------------------------------------------------------------- I/O
    def save(self, path: str) -> None:
        """Write a portable text representation."""
        with open(path, "w") as handle:
            handle.write(f"# trace {self.name}\n")
            handle.write(f"# footprint_blocks {self.footprint_blocks}\n")
            for gap, addr, is_write in self.entries:
                handle.write(f"{gap} {addr} {is_write}\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        name = "trace"
        footprint = None
        entries: List[TraceEntry] = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    parts = line[1:].split()
                    if parts[:1] == ["trace"] and len(parts) > 1:
                        name = parts[1]
                    elif parts[:1] == ["footprint_blocks"] and len(parts) > 1:
                        footprint = int(parts[1])
                    continue
                gap, addr, is_write = line.split()
                entries.append((int(gap), int(addr), int(is_write)))
        if footprint is None:
            footprint = max((entry[1] for entry in entries), default=0) + 1
        trace = cls(name=name, footprint_blocks=footprint)
        trace.entries = entries
        return trace
