"""The secure-processor system: in-order core + caches + memory backend.

This is the reproduction's stand-in for the paper's Graphite setup
(section 5.1, Table 1): a 1 GHz in-order core whose memory references come
from a trace, a 32 KB L1, a 512 KB shared LLC, and either an insecure DRAM
or a Path ORAM (baseline / static super block / PrORAM) behind it.  The
core blocks on every LLC miss until the backend's completion cycle -- the
paper's cores are in-order, so memory latency is fully exposed.

Construction is by factory: :meth:`SecureSystem.build` maps a scheme name
("dram", "oram", "stat", "dyn", and the prefetching/periodic variants used
by specific figures) onto the right backend assembly, so benchmarks read
exactly like the paper's legends.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.config import SystemConfig
from repro.controller.sharded import ShardedORAMBank
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import (
    AdaptiveThresholdPolicy,
    StaticThresholdPolicy,
    ThresholdPolicy,
)
from repro.memory.backend import MemoryBackend
from repro.memory.dram import DRAMBackend
from repro.memory.oram_backend import ORAMBackend
from repro.memory.periodic import PeriodicORAMBackend
from repro.oram.super_block import BaselineScheme, StaticSuperBlockScheme, SuperBlockScheme
from repro.prefetch.stream import StreamPrefetcher
from repro.sim.results import SimResult
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


class SecureSystem:
    """One tile: core + L1 + LLC + memory backend."""

    def __init__(
        self,
        config: SystemConfig,
        backend: MemoryBackend,
        label: str,
        prefetcher: Optional[StreamPrefetcher] = None,
    ):
        self.config = config
        self.backend = backend
        self.label = label
        self.prefetcher = prefetcher
        self.hierarchy = CacheHierarchy(
            config.l1, config.llc, victim_callback=self._on_llc_victim
        )
        if isinstance(backend, (ORAMBackend, ShardedORAMBank)):
            # hierarchy.contains is a pure delegation to llc.contains; hand
            # the backend the LLC's bound method directly (the merge
            # algorithm probes it on every miss).  The sharded bank wraps
            # the probe with each channel's address translation.
            backend.set_llc_probe(self.hierarchy.llc.contains)
        self._now = 0
        #: prefetched lines not yet usable: addr -> fill completion cycle
        self._pending_fills = {}
        #: optional :class:`repro.profiling.Profiler`; set by its attach().
        #: Costs one None check per run when absent.
        self.profiler = None

    # ----------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        scheme: str,
        footprint_blocks: int,
        config: Optional[SystemConfig] = None,
        *,
        policy: Optional[ThresholdPolicy] = None,
        static_sbsize: Optional[int] = None,
        observer=None,
        fault_injector=None,
        resilience=None,
        num_shards: int = 1,
        health_policy=None,
    ) -> "SecureSystem":
        """Assemble a system for one of the paper's configurations.

        Args:
            scheme: one of

                * ``dram`` -- insecure DRAM baseline;
                * ``dram_pre`` -- DRAM + traditional stream prefetcher;
                * ``oram`` -- baseline Path ORAM (unified recursion);
                * ``oram_pre`` -- baseline ORAM + traditional prefetcher;
                * ``stat`` -- static super block scheme;
                * ``dyn`` -- PrORAM (dynamic super blocks), plus the
                  Figure 6b variants ``dyn_{sm|am}_{nb|ab}``;
                * any base scheme suffixed ``_spre`` -- stride prefetcher
                  instead of the stream prefetcher (section 6.2);
                * any of the ORAM variants suffixed ``_intvl`` -- wrapped
                  in periodic accesses (Figure 15).
            footprint_blocks: workload footprint; the functional tree is
                scaled to hold it at the configured utilization.
            config: system configuration (Table 1 defaults when omitted).
            policy: threshold policy for ``dyn`` (default: adaptive, C=1).
            static_sbsize: super block size for ``stat`` (default: the
                configured max super block size).
            observer: optional adversary observer for ORAM variants.
            fault_injector: optional :class:`repro.faults.FaultInjector`
                attached to ORAM backends (storage fault modelling);
                rejected for ``dram``.
            resilience: optional :class:`repro.faults.ResilienceConfig`
                for the backend's retry/degradation ladder.
            num_shards: channel-interleave the ORAM over this many
                independent controller instances
                (:class:`~repro.controller.sharded.ShardedORAMBank`).
                The default ``1`` builds the plain single-controller
                backend -- bit-identical to the pre-sharding simulator.
            health_policy: optional :class:`repro.health.HealthPolicy`;
                attaches a per-shard circuit-breaker control plane to the
                sharded bank (requires ``num_shards > 1``).  ``None``
                (the default) leaves the access path untouched.
        """
        config = config or SystemConfig()
        rng = DeterministicRng(config.seed)
        periodic = scheme.endswith("_intvl")
        base_scheme = scheme[: -len("_intvl")] if periodic else scheme
        prefetcher = None
        if base_scheme.endswith("_pre"):
            base_scheme = base_scheme[: -len("_pre")]
            prefetcher = StreamPrefetcher(replace(config.prefetch, enabled=True))
        elif base_scheme.endswith("_spre"):
            # Stride-prefetcher variant (the section 6.2 extension).
            from repro.prefetch.stride import StridePrefetcher

            base_scheme = base_scheme[: -len("_spre")]
            prefetcher = StridePrefetcher(replace(config.prefetch, enabled=True))
        elif base_scheme.endswith("_mpre"):
            # Markov/correlation prefetcher variant.
            from repro.prefetch.markov import MarkovPrefetcher

            base_scheme = base_scheme[: -len("_mpre")]
            prefetcher = MarkovPrefetcher(replace(config.prefetch, enabled=True))

        if num_shards < 1:
            raise ValueError("need at least one shard")
        if health_policy is not None and num_shards == 1:
            raise ValueError(
                "the health control plane wraps sharded banks; use "
                "num_shards > 1 (a single controller has no quarantine "
                "fallback to route through)"
            )
        if base_scheme == "dram":
            if periodic:
                raise ValueError("periodic accesses only apply to ORAM backends")
            if fault_injector is not None or resilience is not None:
                raise ValueError("fault injection models ORAM storage, not DRAM")
            if num_shards != 1:
                raise ValueError("sharded banks model ORAM channels, not DRAM")
            backend: MemoryBackend = DRAMBackend(config.dram, config.oram.block_bytes)
            return cls(config, backend, label=scheme, prefetcher=prefetcher)

        if num_shards > 1:
            if periodic:
                raise ValueError(
                    "periodic accesses are not supported on sharded banks"
                )
            if policy is not None:
                raise ValueError(
                    "a threshold policy is stateful and cannot be shared "
                    "across shards; let each shard build its own default"
                )
            # Each channel gets its own controller: scheme instance, tree
            # scaled to its slice of the footprint, and a distinct RNG fork.
            shards = [
                build_shard_backend(
                    base_scheme,
                    footprint_blocks,
                    config,
                    index,
                    num_shards,
                    static_sbsize=static_sbsize,
                    observer=observer,
                    fault_injector=fault_injector,
                    resilience=resilience,
                )
                for index in range(num_shards)
            ]
            bank = ShardedORAMBank(shards)
            if health_policy is not None:
                from repro.health import HealthControlPlane

                bank.attach_health(
                    HealthControlPlane(num_shards, health_policy)
                )
            return cls(config, bank, label=scheme, prefetcher=prefetcher)

        sb_scheme = cls._make_scheme(base_scheme, config, policy, static_sbsize)
        oram_config = config.oram.scaled_to_footprint(footprint_blocks)
        if periodic:
            backend = PeriodicORAMBackend(
                oram_config,
                config.dram,
                sb_scheme,
                rng.fork(11),
                config.timing_protection
                if config.timing_protection.interval_cycles
                else replace(config.timing_protection, interval_cycles=100),
                observer=observer,
                fault_injector=fault_injector,
                resilience=resilience,
            )
        else:
            backend = ORAMBackend(
                oram_config,
                config.dram,
                sb_scheme,
                rng.fork(11),
                observer=observer,
                fault_injector=fault_injector,
                resilience=resilience,
            )
        return cls(config, backend, label=scheme, prefetcher=prefetcher)

    # ---------------------------------------------------------- observability
    def attach_recorder(self, recorder):
        """Enable structured tracing on the backend (``None`` disables).

        Only ORAM backends (single controller or sharded bank) emit spans;
        attaching to a DRAM baseline is a no-op.  Returns the recorder.
        """
        from repro.observability import attach_recorder

        return attach_recorder(self.backend, recorder)

    def metrics(self, registry=None):
        """Snapshot every component counter into a ``MetricsRegistry``."""
        from repro.observability.collect import collect_system

        return collect_system(self, registry)

    @staticmethod
    def _make_scheme(
        name: str,
        config: SystemConfig,
        policy: Optional[ThresholdPolicy],
        static_sbsize: Optional[int],
    ) -> SuperBlockScheme:
        if name == "oram":
            return BaselineScheme()
        if name == "stat":
            return StaticSuperBlockScheme(static_sbsize or config.oram.max_super_block_size)
        if name == "dyn_strided":
            # Future-work extension (section 6.2): strided pair merging.
            from repro.core.strided import StridedDynamicScheme

            return StridedDynamicScheme(policy=policy)
        if name == "dyn" or name.startswith("dyn_"):
            # Figure 6b variants: dyn_{sm|am}_{nb|ab} selects static/adaptive
            # merge thresholding and no/adaptive breaking; bare "dyn" is the
            # full PrORAM (adaptive merge + adaptive break).
            break_enabled = True
            if name in ("dyn", "dyn_am_ab"):
                chosen = policy or AdaptiveThresholdPolicy()
            elif name == "dyn_sm_nb":
                chosen = policy or StaticThresholdPolicy()
                break_enabled = False
            elif name == "dyn_am_nb":
                chosen = policy or AdaptiveThresholdPolicy()
                break_enabled = False
            elif name == "dyn_sm_ab":
                chosen = policy or StaticThresholdPolicy()
            else:
                raise ValueError(f"unknown dynamic-scheme variant '{name}'")
            return DynamicSuperBlockScheme(
                max_sbsize=config.oram.max_super_block_size,
                policy=chosen,
                break_enabled=break_enabled,
            )
        raise ValueError(f"unknown scheme '{name}'")

    # ------------------------------------------------------------------- run
    def run(self, trace: Trace, warmup_entries: int = 0) -> SimResult:
        """Replay a trace to completion and collect every statistic.

        Args:
            trace: the workload.
            warmup_entries: leading entries simulated but excluded from the
                reported counters and cycle count.  The paper's runs are
                long enough that cache/ORAM warmup (and PrORAM's merge
                training) is negligible; short traces approximate that by
                measuring only the steady-state window.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_run()
        hierarchy = self.hierarchy
        backend = self.backend
        prefetcher = self.prefetcher
        recorder = getattr(backend, "recorder", None)
        if recorder is not None:
            recorder.record_event(
                "run_start",
                workload=getattr(trace, "name", "trace"),
                scheme=self.label,
                entries=len(trace.entries),
                start_cycle=self._now,
            )
        # Bound-method locals: this loop body runs once per trace entry and
        # dominates the DRAM configurations' runtime.
        hierarchy_access = hierarchy.access
        fill_demand = hierarchy.fill_demand
        fill_prefetch = hierarchy.fill_prefetch
        demand_access = backend.demand_access
        on_llc_hit = backend.on_llc_hit
        pop_pending = self._pending_fills.pop
        l1_hit_latency = self.config.l1.hit_latency
        l1_hits = 0
        llc_hits = 0
        misses = 0
        now = self._now
        warmup_snapshot = None
        index = 0
        for gap, addr, is_write in trace.entries:
            if warmup_entries and index == warmup_entries:
                warmup_snapshot = self._collect(trace, now, l1_hits, llc_hits, misses, index)
            index += 1
            now += gap
            outcome = hierarchy_access(addr, bool(is_write))
            level = outcome.level
            if level != "miss":
                # A hit on a still-in-flight prefetched line waits for the
                # fill to actually arrive (MSHR-hit semantics): prefetched
                # data is not usable before its access completes.
                pending = pop_pending(addr, None)
                if pending is not None and pending > now:
                    now = pending
                now += outcome.latency
                if level == "l1":
                    l1_hits += 1
                else:
                    llc_hits += 1
                    on_llc_hit(addr)
                continue
            # ----- full miss: the in-order core stalls on the backend.
            misses += 1
            self._now = now  # visible to the victim callback
            result = demand_access(addr, now, bool(is_write))
            for fill_addr, prefetched in result.filled:
                if fill_addr == addr:
                    fill_demand(fill_addr, bool(is_write))
                else:
                    fill_prefetch(fill_addr)
            now = result.completion_cycle + l1_hit_latency
            self._now = now
            if prefetcher is not None:
                # Prefetches never stall the core; they only occupy the
                # backend (and their fills become usable at completion).
                self._issue_prefetches(addr, now)
        self._now = now
        backend.finalize(now)
        if recorder is not None:
            recorder.record_event(
                "run_end",
                cycles=now,
                llc_misses=misses,
                l1_hits=l1_hits,
                llc_hits=llc_hits,
            )
        final = self._collect(trace, now, l1_hits, llc_hits, misses, len(trace.entries))
        if warmup_snapshot is not None:
            final = SimResult.delta(final, warmup_snapshot)
        if profiler is not None:
            profiler.end_run(self, trace, final)
        return final

    def _issue_prefetches(self, miss_addr: int, now: int) -> None:
        """Feed the traditional prefetcher and issue its predictions."""
        assert self.prefetcher is not None
        for candidate in self.prefetcher.on_demand_miss(miss_addr):
            if candidate < 0 or candidate >= self._address_limit():
                continue
            if self.hierarchy.contains(candidate):
                continue
            result = self.backend.prefetch_access(candidate, now)
            if result is None:
                continue
            for fill_addr, _ in result.filled:
                self.hierarchy.fill_prefetch(fill_addr)
                self._pending_fills[fill_addr] = result.completion_cycle

    def _address_limit(self) -> int:
        if isinstance(self.backend, ORAMBackend):
            return self.backend.oram.position_map.num_blocks
        if isinstance(self.backend, ShardedORAMBank):
            return self.backend.num_blocks
        return 1 << 62

    # --------------------------------------------------------------- plumbing
    def _on_llc_victim(self, addr: int, dirty: bool) -> None:
        # A prefetched line evicted (or invalidated) before its fill
        # completes no longer has an in-flight fill to wait for: drop the
        # pending completion cycle so a later re-fetch of the same address
        # cannot stall on the stale cycle, and the dict stays bounded by
        # LLC capacity on long traces.
        self._pending_fills.pop(addr, None)
        self.backend.evict_line(addr, dirty, self._now)

    def _collect(
        self,
        trace: Trace,
        now: int,
        l1_hits: int,
        llc_hits: int,
        misses: int,
        entries_processed: int,
    ) -> SimResult:
        stats = self.backend.stats
        result = SimResult(
            workload=trace.name,
            scheme=self.label,
            cycles=now,
            trace_entries=entries_processed,
            l1_hits=l1_hits,
            llc_hits=llc_hits,
            llc_misses=misses,
            demand_requests=stats.demand_requests,
            prefetch_requests=stats.prefetch_requests,
            write_accesses=stats.write_accesses,
            memory_accesses=stats.memory_accesses,
            dummy_accesses=stats.dummy_accesses,
            posmap_accesses=stats.posmap_accesses,
            busy_cycles=stats.busy_cycles,
        )
        if isinstance(self.backend, ORAMBackend):
            backend = self.backend
            result.stash_max_occupancy = backend.oram.stash.max_occupancy
            result.posmap_cache_hit_rate = backend.posmap_hierarchy.hit_rate()
            scheme_stats = backend.scheme.stats
            result.merges = scheme_stats.merges
            result.breaks = scheme_stats.breaks
            result.prefetched_blocks = scheme_stats.prefetched_blocks
            result.prefetch_hits = scheme_stats.prefetch_hits
            result.prefetch_misses = scheme_stats.prefetch_misses
            # Robustness counters ride in ``extra`` so the pinned golden
            # result schema (and every fault-free consumer) is untouched.
            result.extra["stash_soft_overflows"] = backend.oram.stash_soft_overflows
            for name, cycles in backend.pipeline.breakdown().items():
                result.extra[f"phase_{name}_cycles"] = cycles
            if backend.injector is not None or backend.resilience is not None:
                result.extra["transient_faults"] = stats.transient_faults
                result.extra["fault_retries"] = stats.fault_retries
                result.extra["fault_delay_cycles"] = stats.fault_delay_cycles
                result.extra["forced_evictions"] = stats.forced_evictions
            if backend.injector is not None:
                for name, value in backend.injector.stats.as_dict().items():
                    result.extra[f"injected_{name}"] = value
            if backend.interconnect.model != "flat":
                for name, value in backend.interconnect.summary().items():
                    result.extra[f"interconnect_{name}"] = value
        elif isinstance(self.backend, ShardedORAMBank):
            bank = self.backend
            result.stash_max_occupancy = bank.stash_max_occupancy()
            result.posmap_cache_hit_rate = bank.aggregate_posmap_hit_rate()
            for shard in bank.shards:
                scheme_stats = shard.scheme.stats
                result.merges += scheme_stats.merges
                result.breaks += scheme_stats.breaks
                result.prefetched_blocks += scheme_stats.prefetched_blocks
                result.prefetch_hits += scheme_stats.prefetch_hits
                result.prefetch_misses += scheme_stats.prefetch_misses
            result.extra["num_shards"] = bank.num_shards
            result.extra["stash_soft_overflows"] = bank.stash_soft_overflows()
            for name, cycles in bank.phase_breakdown().items():
                result.extra[f"phase_{name}_cycles"] = cycles
            injected = bank.shards[0].injector
            if injected is not None or bank.shards[0].resilience is not None:
                result.extra["transient_faults"] = stats.transient_faults
                result.extra["fault_retries"] = stats.fault_retries
                result.extra["fault_delay_cycles"] = stats.fault_delay_cycles
                result.extra["forced_evictions"] = stats.forced_evictions
            if injected is not None:
                for name, value in injected.stats.as_dict().items():
                    result.extra[f"injected_{name}"] = value
            if bank.shards[0].interconnect.model != "flat":
                merged: Dict[str, int] = {}
                for shard in bank.shards:
                    for name, value in shard.interconnect.summary().items():
                        if name == "channels":
                            merged[name] = value
                        else:
                            merged[name] = merged.get(name, 0) + value
                for name, value in merged.items():
                    result.extra[f"interconnect_{name}"] = value
        return result


def build_shard_backend(
    base_scheme: str,
    footprint_blocks: int,
    config: SystemConfig,
    shard_index: int,
    num_shards: int,
    *,
    static_sbsize: Optional[int] = None,
    observer=None,
    fault_injector=None,
    resilience=None,
    rng_restart_salt: int = 0,
) -> ORAMBackend:
    """Build channel ``shard_index`` of an ``num_shards``-way ORAM bank.

    This is the single construction path for bank channels: the in-process
    :meth:`SecureSystem.build` loops over it, and a
    :mod:`repro.parallel` worker calls it for just its own index.  The RNG
    derivation is pure in ``(config.seed, shard_index)`` -- ``fork`` hashes
    an integer tuple, untouched by hash randomization -- so a worker
    process rebuilds shard ``i`` bit-identically to the serial bank
    without ever seeing the other shards.

    Args:
        base_scheme: scheme name with any prefetch/periodic suffix already
            stripped ("oram", "stat", "dyn", ...).
        footprint_blocks: the *global* workload footprint; each shard's
            tree is scaled to its ceil-divided slice.
        shard_index: which channel to build, in ``range(num_shards)``.
        rng_restart_salt: 0 for a first boot (bit-identical to the serial
            bank); a respawned worker passes its restart attempt number so
            the recovered shard draws a fresh, still-deterministic leaf
            stream instead of replaying the seed stream from the start.
    """
    if not 0 <= shard_index < num_shards:
        raise ValueError(f"shard index {shard_index} outside 0..{num_shards - 1}")
    per_shard_blocks = (footprint_blocks + num_shards - 1) // num_shards
    shard_config = config.oram.scaled_to_footprint(per_shard_blocks)
    rng = DeterministicRng(config.seed).fork(11 + 101 * shard_index)
    if rng_restart_salt:
        rng = rng.fork(0x5EC0 + rng_restart_salt)
    backend = ORAMBackend(
        shard_config,
        config.dram,
        SecureSystem._make_scheme(base_scheme, config, None, static_sbsize),
        rng,
        observer=observer,
        fault_injector=fault_injector,
        resilience=resilience,
    )
    backend.shard_index = shard_index
    backend.addr_stride = num_shards
    return backend
