"""Trace-driven secure-processor simulator (the Graphite stand-in, §5.1)."""

from repro.sim.results import SimResult
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace, TraceEntry

__all__ = ["SecureSystem", "SimResult", "Trace", "TraceEntry"]
