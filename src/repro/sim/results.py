"""Simulation results and the derived metrics the paper plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimResult:
    """Everything one simulation run produces.

    The paper's figures derive from three quantities: completion time
    (speedup is relative time saved), total memory accesses (the energy
    proxy), and prefetch hit/miss counts (Figure 9).
    """

    workload: str
    scheme: str
    cycles: int
    trace_entries: int
    # Cache behaviour
    l1_hits: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    # Backend behaviour
    demand_requests: int = 0
    prefetch_requests: int = 0
    write_accesses: int = 0
    memory_accesses: int = 0
    dummy_accesses: int = 0
    posmap_accesses: int = 0
    busy_cycles: int = 0
    # ORAM detail
    stash_max_occupancy: int = 0
    posmap_cache_hit_rate: float = 0.0
    # Super block scheme
    merges: int = 0
    breaks: int = 0
    prefetched_blocks: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ derived
    @property
    def total_memory_accesses(self) -> int:
        """Real + dummy accesses: proportional to memory-subsystem energy."""
        return self.memory_accesses + self.dummy_accesses

    @property
    def llc_miss_rate(self) -> float:
        total = self.llc_hits + self.llc_misses
        return self.llc_misses / total if total else 0.0

    @property
    def prefetch_miss_rate(self) -> float:
        """The Figure 9 metric: unused prefetches over resolved prefetches."""
        resolved = self.prefetch_hits + self.prefetch_misses
        return self.prefetch_misses / resolved if resolved else 0.0

    @property
    def background_eviction_rate(self) -> float:
        total = self.demand_requests + self.dummy_accesses
        return self.dummy_accesses / total if total else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """The paper's speedup: fraction of time saved relative to baseline.

        A value of 0.20 reads "20% performance gain"; negative values mean
        a slowdown (the figures' y-axes use exactly this scale).
        """
        if self.cycles == 0:
            raise ValueError("degenerate run with zero cycles")
        return baseline.cycles / self.cycles - 1.0

    def normalized_memory_accesses(self, baseline: "SimResult") -> float:
        """Figure 8's red markers: energy relative to the baseline ORAM."""
        if baseline.total_memory_accesses == 0:
            raise ValueError("baseline performed no memory accesses")
        return self.total_memory_accesses / baseline.total_memory_accesses

    def normalized_completion_time(self, baseline: "SimResult") -> float:
        """Figures 11-14's metric: completion time relative to a baseline."""
        if baseline.cycles == 0:
            raise ValueError("degenerate baseline with zero cycles")
        return self.cycles / baseline.cycles

    @staticmethod
    def delta(final: "SimResult", start: "SimResult") -> "SimResult":
        """Measurement-window result: ``final`` minus a warmup snapshot.

        Additive counters are differenced; watermark/rate fields keep the
        final values.  Used to discard cache/ORAM warmup so short traces
        measure steady-state behaviour like the paper's long runs.
        """
        additive = [
            "cycles",
            "trace_entries",
            "l1_hits",
            "llc_hits",
            "llc_misses",
            "demand_requests",
            "prefetch_requests",
            "write_accesses",
            "memory_accesses",
            "dummy_accesses",
            "posmap_accesses",
            "busy_cycles",
            "merges",
            "breaks",
            "prefetched_blocks",
            "prefetch_hits",
            "prefetch_misses",
        ]
        out = SimResult(
            workload=final.workload,
            scheme=final.scheme,
            cycles=0,
            trace_entries=0,
        )
        for name in additive:
            setattr(out, name, getattr(final, name) - getattr(start, name))
        out.stash_max_occupancy = final.stash_max_occupancy
        out.posmap_cache_hit_rate = final.posmap_cache_hit_rate
        out.extra = dict(final.extra)
        return out

    def summary(self) -> str:
        """One-line human-readable digest."""
        text = (
            f"{self.workload}/{self.scheme}: {self.cycles} cycles, "
            f"{self.llc_misses} LLC misses, "
            f"{self.total_memory_accesses} memory accesses "
            f"({self.dummy_accesses} dummy), "
            f"{self.merges} merges, {self.breaks} breaks"
        )
        soft = self.extra.get("stash_soft_overflows", 0)
        if soft:
            text += f", {int(soft)} stash soft overflows"
        return text
