"""The ``ORAMScheme`` protocol: what the controller requires of a scheme.

Every oblivious-memory construction in this repository -- Path ORAM, Ring
ORAM, the Shi et al. binary-tree ORAM, and the Goldreich-Ostrovsky
square-root ORAM -- implements this protocol, so the controller pipeline,
the sharded bank, the parity suite, and ``fsck`` can drive any of them
without knowing which one they hold.

The protocol splits one oblivious access into the two halves the paper's
pipeline needs (everything between them runs with the accessed blocks
on-chip, which is where merge/break remapping happens):

* :meth:`ORAMScheme.begin_access` -- fetch a (super) block: position
  lookup, path/slot read, remap of the members;
* :meth:`ORAMScheme.finish_access` -- commit: path write-back or
  scheme-specific maintenance (eviction counters, reshuffles).

plus the background machinery the controller schedules around demand
accesses: :meth:`dummy_access` (one background eviction / dummy probe),
:meth:`drain_stash` (bounded eviction loop), and
:meth:`check_invariants` (structural audit used by tests, ``fsck``, and
debug builds).

Schemes are *virtual* subclasses (``ORAMScheme.register``) rather than
real ones: the hot paths of :class:`~repro.oram.path_oram.PathORAM` are
pinned bit-identical by the golden test, and a registered subclass keeps
``isinstance`` working with zero MRO or metaclass overhead.  The
cross-scheme parity suite enforces that every registered scheme actually
provides the protocol surface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

#: Methods and properties every registered scheme must provide.  The
#: parity suite asserts this surface exists on each implementation.
PROTOCOL_SURFACE = (
    "begin_access",
    "finish_access",
    "access",
    "dummy_access",
    "drain_stash",
    "check_invariants",
    "num_blocks",
    "stash_occupancy",
)


class ORAMScheme(ABC):
    """Interface between an oblivious-memory construction and the controller.

    Addresses are logical block numbers in ``[0, num_blocks)``.  A scheme
    owns all of its server-side state; the controller only ever sees
    block handles returned by :meth:`begin_access`.
    """

    @abstractmethod
    def begin_access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Mapping[int, Any]:
        """Fetch the (super) block ``addrs`` and remap its members.

        Between this call and :meth:`finish_access` every member is
        on-chip, so callers may inspect or update the returned handles.
        ``new_leaf`` overrides the random remap target (tests only);
        schemes without positions ignore it.
        """

    @abstractmethod
    def finish_access(self) -> None:
        """Commit the in-flight access (write-back / maintenance)."""

    def access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Mapping[int, Any]:
        """One complete access: :meth:`begin_access` + :meth:`finish_access`."""
        fetched = self.begin_access(addrs, new_leaf)
        self.finish_access()
        return fetched

    @abstractmethod
    def dummy_access(self, kind: str = "dummy") -> None:
        """One background eviction (tree schemes) or dummy probe (sqrt)."""

    @abstractmethod
    def drain_stash(self) -> int:
        """Background-evict until the stash/overflow is within limit.

        Returns the number of dummy accesses issued (each is a charged
        path access for the controller's timing model).
        """

    @abstractmethod
    def check_invariants(self) -> None:
        """Audit structural invariants; raise ``AssertionError`` on damage."""

    def remap_group(self, addrs: Sequence[int], leaf: Optional[int] = None) -> int:
        """Re-point a group of on-chip members to one shared position.

        Only meaningful for position-mapped tree schemes (merge/break
        support); the default refuses.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support group remapping"
        )

    # Implementations provide these as attributes or properties:
    #   num_blocks: int        -- logical address space size
    #   stash_occupancy: int   -- blocks currently held on-chip


# --------------------------------------------------------------------- registry
def _make_path(levels: int, num_blocks: int, seed: int, observer=None):
    from repro.config import ORAMConfig
    from repro.oram.path_oram import PathORAM
    from repro.utils.rng import DeterministicRng

    capacity = ((1 << (levels + 1)) - 1) * 4
    if num_blocks > capacity:
        raise ValueError(f"{num_blocks} blocks exceed the Z=4 tree capacity {capacity}")
    config = ORAMConfig(
        levels=levels,
        bucket_size=4,
        stash_blocks=max(40, 8 * levels),
        utilization=(num_blocks + 0.5) / capacity,
    )
    assert config.num_blocks == num_blocks
    return PathORAM(config, DeterministicRng(seed), observer=observer)


def _make_ring(levels: int, num_blocks: int, seed: int, observer=None):
    from repro.oram.ring_oram import RingORAM
    from repro.utils.rng import DeterministicRng

    return RingORAM(
        levels=levels,
        num_blocks=num_blocks,
        rng=DeterministicRng(seed),
        observer=observer,
    )


def _make_tree(levels: int, num_blocks: int, seed: int, observer=None):
    from repro.oram.tree_oram import ShiTreeORAM
    from repro.utils.rng import DeterministicRng

    return ShiTreeORAM(
        levels=levels,
        num_blocks=num_blocks,
        rng=DeterministicRng(seed),
        observer=observer,
    )


def _make_sqrt(levels: int, num_blocks: int, seed: int, observer=None):
    from repro.oram.square_root import SquareRootORAM
    from repro.utils.rng import DeterministicRng

    return SquareRootORAM(num_blocks, rng=DeterministicRng(seed), observer=observer)


#: name -> factory(levels, num_blocks, seed, observer) for every scheme the
#: controller can build (the CLI ``parity`` command and the parity suite).
SCHEME_FACTORIES: Dict[str, Callable[..., "ORAMScheme"]] = {
    "path": _make_path,
    "ring": _make_ring,
    "tree": _make_tree,
    "sqrt": _make_sqrt,
}


def build_scheme(
    name: str, levels: int = 6, num_blocks: int = 96, seed: int = 7, observer=None
) -> "ORAMScheme":
    """Build any registered scheme by name at a comparable small geometry."""
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEME_FACTORIES))
        raise ValueError(f"unknown ORAM scheme '{name}' (known: {known})") from None
    return factory(levels, num_blocks, seed, observer)
