"""The explicit access-phase pipeline behind ``ORAMBackend``.

One LLC-side request used to run as a single inlined blob in
``ORAMBackend._perform_access``.  The pipeline names the four protocol
phases of the paper's access (posmap lookup -> path read -> remap ->
write-back) as first-class objects, threads one :class:`AccessContext`
through them, and meters each phase's cycles and faults separately --
the breakdown the profiler and the sharded bank both need.

Bit-identity contract: for the 1-shard Path ORAM configuration the
pipeline performs *exactly* the operations of the pre-refactor inlined
body, in the same order, with the same RNG draws -- the golden
determinism test pins this.  New accounting (per-phase cycles, fault
attribution) only ever lands in pipeline-owned counters and
``SimResult.extra``, never in the pinned result fields.

Phase responsibilities (section numbers refer to the paper):

* :class:`PosMapPhase` -- fault-model hook, stash drain + degradation
  relief (section 2.4: background evictions run before real requests),
  then the recursive position-map walk (section 2.3);
* :class:`PathReadPhase` -- super-block membership resolution and the
  path read + remap half of the scheme access;
* :class:`RemapPhase` -- the dynamic scheme's merge/break decision over
  the fetched members (Algorithms 1 and 2), run while every member is
  physically on-chip;
* :class:`WritebackPhase` -- the path write-back committing the remap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class AccessContext:
    """Mutable per-request state threaded through the pipeline phases."""

    __slots__ = (
        "addr",
        "start",
        "run_scheme",
        "evictions",
        "extra",
        "fault_delay",
        "members",
        "blocks",
        "outcome",
        "leaf",
        "streamed_cycles",
    )

    def __init__(self, addr: int, start: int, run_scheme: bool):
        self.addr = addr
        self.start = start
        self.run_scheme = run_scheme
        self.evictions = 0  # background evictions charged to this request
        self.extra = 0  # extra path accesses from the posmap walk
        self.fault_delay = 0  # injected-fault latency (cycles)
        self.members: Tuple[int, ...] = ()
        self.blocks: Any = None
        self.outcome: Any = None
        self.leaf = 0  # path the demand access read (streamed by the interconnect)
        self.streamed_cycles = 0  # interconnect completion - issue of the path read


class PosMapPhase:
    """Fault hook, stash drain/relief, and the PosMap hierarchy walk."""

    name = "posmap"

    def run(self, backend, ctx: AccessContext) -> None:
        if backend.injector is not None:
            ctx.fault_delay = backend._fault_delay()
        oram = backend.oram
        stats = backend.stats
        evictions = oram.drain_stash()
        if backend._stash_soft_limit is not None:
            evictions += backend._relieve_stash()
        ctx.evictions = evictions
        stats.dummy_accesses += evictions
        ctx.extra = backend.posmap_hierarchy.lookup(ctx.addr)
        stats.posmap_accesses += ctx.extra

    def cycles(self, backend, ctx: AccessContext) -> int:
        # Each posmap hierarchy miss is a full path access on the smaller
        # trees, modeled at the public per-path cost (section 2.3) -- the
        # walk's leaves are part of the recursion's access pattern, so it
        # is never streamed through the leaf-aware scheduler.
        return ctx.extra * backend.interconnect.path_cycles


class PathReadPhase:
    """Resolve super-block membership and read + remap the path."""

    name = "path_read"

    def run(self, backend, ctx: AccessContext) -> None:
        ctx.members = backend.scheme.members_for(ctx.addr)
        ctx.blocks = backend.oram.begin_access(ctx.members)
        # begin_access parked the read path's leaf for the write-back;
        # that same leaf is the bucket stream the interconnect times.
        ctx.leaf = backend.oram._pending_writeback

    def cycles(self, backend, ctx: AccessContext) -> int:
        # The demand path is the one access the interconnect streams
        # bucket-by-bucket: it issues after the serialized background
        # evictions and PosMap paths, and its read + write-back share one
        # full-path pass.  The flat model returns exactly path_cycles.
        interconnect = backend.interconnect
        issue = ctx.start + (ctx.evictions + ctx.extra) * interconnect.path_cycles
        ctx.streamed_cycles = interconnect.path_completion(ctx.leaf, issue) - issue
        return ctx.streamed_cycles


class RemapPhase:
    """Run the super-block scheme over the fetched members (on-chip)."""

    name = "remap"

    def run(self, backend, ctx: AccessContext) -> None:
        if not ctx.run_scheme:
            return
        # Members whose copies are already LLC-resident are not "coming
        # from ORAM" for the scheme's purposes (Algorithm 2).  The
        # singleton case (most accesses) skips the comprehension frame.
        members = ctx.members
        blocks = ctx.blocks
        llc_contains = backend._llc_contains
        if len(members) == 1:
            member = members[0]
            fetched = {} if llc_contains(member) else {member: blocks[member]}
        else:
            fetched = {
                member: blocks[member]
                for member in members
                if not llc_contains(member)
            }
        ctx.outcome = backend.scheme.process_fetch(ctx.addr, members, fetched)

    def cycles(self, backend, ctx: AccessContext) -> int:
        # Remap decisions happen on-chip within the path-read shadow; the
        # timing model charges them no memory cycles.
        return 0


class WritebackPhase:
    """Commit the access: path write-back plus charged background evictions."""

    name = "writeback"

    def run(self, backend, ctx: AccessContext) -> None:
        backend.oram.finish_access()

    def cycles(self, backend, ctx: AccessContext) -> int:
        # The demand path's write-back shares its path access with the
        # read (one full-path R/W); what this phase owns in the latency
        # formula is the background evictions drained up front -- each a
        # full dummy path access (section 2.4) charged at the public
        # per-path cost (their leaves are uniform draws, never streamed).
        return ctx.evictions * backend.interconnect.path_cycles


#: The canonical phase order of one oblivious access.
DEFAULT_PHASES = (PosMapPhase(), PathReadPhase(), RemapPhase(), WritebackPhase())


class AccessPipeline:
    """Drives the four phases for each request and meters the breakdown.

    The pipeline owns the per-phase counters (``phase_cycles``,
    ``fault_cycles``); aggregate stats keep flowing into the backend's
    :class:`~repro.memory.backend.BackendStats` exactly as before, so the
    pinned golden result is untouched.
    """

    def __init__(self, backend, phases=DEFAULT_PHASES):
        self.backend = backend
        self.phases = tuple(phases)
        #: phase name -> cycles attributed to that phase, plus injected
        #: fault latency under its own key (it belongs to no phase).
        self.phase_cycles: Dict[str, int] = {p.name: 0 for p in self.phases}
        self.phase_cycles["fault"] = 0
        self.requests = 0

    def execute(
        self, addr: int, start: int, run_scheme: bool, kind: str = "demand"
    ) -> tuple:
        """One full oblivious access; returns (completion_cycle, outcome).

        ``kind`` labels the request for tracing ("demand" / "prefetch" /
        "writeback"); it has no effect on the access itself.
        """
        backend = self.backend
        ctx = AccessContext(addr, start, run_scheme)
        phase_cycles = self.phase_cycles
        recorder = backend.recorder
        if recorder is None:
            # Disabled-tracing fast path: identical to the pre-tracing loop.
            for phase in self.phases:
                phase.run(backend, ctx)
                phase_cycles[phase.name] += phase.cycles(backend, ctx)
        else:
            scheme_stats = backend.scheme.stats
            merges_before = scheme_stats.merges
            breaks_before = scheme_stats.breaks
            retries_before = backend.stats.fault_retries
            span_phases: Dict[str, int] = {}
            for phase in self.phases:
                phase.run(backend, ctx)
                cycles = phase.cycles(backend, ctx)
                phase_cycles[phase.name] += cycles
                span_phases[phase.name] = cycles
        phase_cycles["fault"] += ctx.fault_delay
        self.requests += 1
        # ----------------------------------------------------------- timing
        stats = backend.stats
        interconnect = backend.interconnect
        serialized = ctx.evictions + ctx.extra
        if serialized:
            interconnect.note_untracked(serialized)
        # Serialized dummy/PosMap paths at the public per-path cost, then
        # the streamed demand path (PathReadPhase recorded its cycles);
        # under the flat model this is the pre-refactor constant multiply.
        latency = (
            serialized * interconnect.path_cycles
            + ctx.streamed_cycles
            + ctx.fault_delay
        )
        completion = start + latency
        backend.busy_until = completion
        stats.memory_accesses += ctx.extra + 1
        stats.busy_cycles += latency
        policy = backend._policy_listener
        if policy is not None:
            if ctx.evictions:
                policy.on_background_eviction(ctx.evictions)
            # A same-cycle burst (sharded batches) may land elapsed == 0;
            # the policy guards that boundary itself (Equation 1).
            policy.on_request(
                busy_cycles=latency,
                elapsed_cycles=completion - backend._last_request_cycle,
            )
        backend._last_request_cycle = completion
        if recorder is not None:
            recorder.record_span(
                {
                    "seq": recorder.next_seq(),
                    "kind": kind,
                    "addr": addr * backend.addr_stride + backend.shard_index,
                    "shard": backend.shard_index,
                    "start": start,
                    "end": completion,
                    "phases": span_phases,
                    "fault_delay": ctx.fault_delay,
                    "retries": backend.stats.fault_retries - retries_before,
                    "evictions": ctx.evictions,
                    "posmap_extra": ctx.extra,
                    "stash": len(backend.oram.stash),
                    "merges": scheme_stats.merges - merges_before,
                    "breaks": scheme_stats.breaks - breaks_before,
                }
            )
        return completion, ctx.outcome

    def breakdown(self) -> Dict[str, int]:
        """A copy of the per-phase cycle attribution (profiler export)."""
        return dict(self.phase_cycles)
