"""Channel-interleaved sharded ORAM banks.

A :class:`ShardedORAMBank` puts ``N`` independent ORAM controller
instances -- each a complete :class:`~repro.memory.oram_backend.ORAMBackend`
with its own tree, stash, position-map hierarchy, super-block scheme, and
access pipeline -- behind the single
:class:`~repro.memory.backend.MemoryBackend` interface the simulators
drive.  Think memory channels: block addresses are interleaved
``shard = addr % N``, ``local = addr // N``, so consecutive blocks land on
consecutive shards and a pointer-chasing core streams across all banks.

Why this wins: the paper serializes one ORAM ("a single ORAM access
saturates the available DRAM bandwidth", section 2.6), but with per-shard
channels each bank saturates only its own pins.  Every shard serializes on
its *own* ``busy_until``, so two cores missing to different shards overlap
their path accesses -- the inter-tree parallelism Palermo exploits --
while two misses to the same shard still queue, preserving the paper's
intra-channel model.

Security note: the interleaving function is public (as is standard for
multi-channel memory), each shard's access sequence is independently
oblivious, and the shard selector depends only on the (already leaked)
block address stream shape -- so the bank leaks nothing beyond N public
channel choices.

Determinism: shard construction order, the round-robin order of
:meth:`ShardedORAMBank.access_batch`, and each shard's forked RNG are all
fixed, so a run is bit-reproducible for any shard count; with ``N == 1``
builders bypass the bank entirely and the golden single-controller result
is trivially unchanged.

This module is intentionally *not* re-exported from
``repro.controller.__init__``: it imports :mod:`repro.memory`, which
imports the controller package, and the indirection keeps that cycle open.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.health.breaker import HealthState
from repro.memory.backend import BackendStats, DemandResult, MemoryBackend
from repro.memory.oram_backend import ORAMBackend


def snapshot_shard_stats(shard: ORAMBackend) -> dict:
    """Sample every merge-relevant counter of one bank channel.

    The returned dict is plain ints (picklable, JSON-able): the
    process-parallel runtime ships it over a queue from each worker, and
    the serial reference path samples the same function in-process, so the
    merged :class:`~repro.sim.results.SimResult` is built from identical
    material either way -- bit-identity of the aggregate is structural,
    not coincidental.
    """
    from repro.oram.checkpoint import _BACKEND_STAT_FIELDS, _SCHEME_STAT_FIELDS

    hierarchy = shard.posmap_hierarchy
    return {
        "stats": {name: getattr(shard.stats, name) for name in _BACKEND_STAT_FIELDS},
        "scheme_stats": {
            name: getattr(shard.scheme.stats, name) for name in _SCHEME_STAT_FIELDS
        },
        "stash_max_occupancy": shard.oram.stash.max_occupancy,
        "stash_soft_overflows": shard.oram.stash_soft_overflows,
        "posmap_lookups": hierarchy.lookups,
        "posmap_cache_hits": hierarchy.cache_hits,
        "phase_cycles": shard.pipeline.breakdown(),
        "busy_until": shard.busy_until,
    }


class ShardedORAMBank(MemoryBackend):
    """N address-interleaved ORAM controllers behind one backend interface.

    Args:
        shards: the per-channel backends, already built and sized; shard
            ``i`` owns every global address congruent to ``i`` mod ``N``.
    """

    def __init__(self, shards: Sequence[ORAMBackend]):
        # MemoryBackend.__init__ is skipped deliberately: ``stats`` and
        # ``busy_until`` are aggregate *views* over the shards (properties
        # below), not own state.
        if not shards:
            raise ValueError("need at least one shard")
        self.shards: List[ORAMBackend] = list(shards)
        self.num_shards = len(self.shards)
        for index, shard in enumerate(self.shards):
            # Spans emitted by a channel's pipeline carry the channel index
            # and the *global* address (local * stride + index).
            shard.shard_index = index
            shard.addr_stride = self.num_shards
        #: valid global addresses: every (shard, local) pair must exist in
        #: its shard, so the bank exposes the smallest shard rounded down.
        self.num_blocks = self.num_shards * min(
            shard.oram.position_map.num_blocks for shard in self.shards
        )
        self._llc_probe_installed = False
        #: optional :class:`~repro.health.HealthControlPlane`; ``None``
        #: keeps the access path bit-identical to the pre-health bank
        self.health = None
        self._pressure_limits: List[int] = []

    # ----------------------------------------------------------------- wiring
    def set_recorder(self, recorder) -> None:
        """Share one span recorder across every channel.

        A single recorder hands out the global ``seq`` numbers, so spans
        from interleaved channels land in one totally-ordered stream.
        """
        for shard in self.shards:
            shard.set_recorder(recorder)

    @property
    def recorder(self):
        return self.shards[0].recorder

    def set_llc_probe(self, probe: Callable[[int], bool]) -> None:
        """Install the (global-address) LLC tag probe on every shard.

        Each shard's scheme reasons in local addresses, so the probe is
        wrapped with that shard's address translation.
        """
        num_shards = self.num_shards
        for index, shard in enumerate(self.shards):
            shard.set_llc_probe(
                lambda local, _i=index: probe(local * num_shards + _i)
            )
        self._llc_probe_installed = True

    def attach_health(self, plane) -> None:
        """Install a :class:`~repro.health.HealthControlPlane`.

        The plane must be as wide as the bank.  Once attached, every
        demand access feeds its shard's breaker (fault outcome +
        latency), breaker state drives per-shard mitigation (degraded
        mode throttling, quarantine fallback with dummy padding,
        half-open probes), and stash occupancy above the policy's
        pressure watermark degrades the shard immediately.  Detach with
        ``None`` (mitigations are lifted).
        """
        if plane is not None and plane.num_shards != self.num_shards:
            raise ValueError(
                f"health plane is {plane.num_shards} wide, bank is "
                f"{self.num_shards}"
            )
        self.health = plane
        if plane is None:
            self._pressure_limits = []
            for shard in self.shards:
                shard.set_degraded(False)
            return
        fraction = plane.policy.stash_pressure_fraction
        self._pressure_limits = [
            max(1, int(shard.oram.stash.capacity * fraction))
            for shard in self.shards
        ]

    def quarantine_shard(self, index: int, reason: str = "operator") -> None:
        """Hard-quarantine one channel (chaos/fault hook; needs a plane)."""
        if self.health is None:
            raise ValueError("no health plane attached")
        self.health.record_hard_failure(index, reason)
        self.shards[index].set_degraded(True)

    def _split(self, addr: int) -> Tuple[ORAMBackend, int]:
        return self.shards[addr % self.num_shards], addr // self.num_shards

    def shard_of(self, addr: int) -> int:
        """Which channel owns a global address (the public interleave)."""
        return addr % self.num_shards

    def coalesce_key(self, addr: int) -> Tuple[int, int]:
        """Coalescing identity of an address: ``(shard, super-block leader)``.

        Two addresses share a key exactly when one ORAM path access serves
        both -- they live on the same shard and the shard's scheme currently
        maps them into the same (super) block, so the serving front end can
        dedupe concurrent requests for them onto a single access.  For the
        baseline scheme the key degenerates to ``(shard, local)``.
        """
        shard_index = addr % self.num_shards
        members = self.shards[shard_index].scheme.members_for(
            addr // self.num_shards
        )
        return (shard_index, min(members))

    def stash_fraction(self, shard_index: int) -> float:
        """A channel's current stash occupancy over its capacity."""
        stash = self.shards[shard_index].oram.stash
        return len(stash) / stash.capacity

    def _globalize(self, shard_index: int, result: DemandResult) -> DemandResult:
        """Translate a shard's local fill addresses back to global ones."""
        num_shards = self.num_shards
        result.filled = [
            (local * num_shards + shard_index, prefetched)
            for local, prefetched in result.filled
        ]
        return result

    # ----------------------------------------------------------------- access
    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        shard_index = addr % self.num_shards
        shard = self.shards[shard_index]
        if self.health is None:
            result = shard.demand_access(addr // self.num_shards, now, is_write)
            return self._globalize(shard_index, result)
        return self._health_access(
            shard_index, shard, addr // self.num_shards, now, is_write
        )

    def _health_access(
        self, shard_index: int, shard: ORAMBackend, local: int, now: int,
        is_write: bool,
    ) -> DemandResult:
        """One demand access routed through the health state machine.

        Quarantined channels serve their own addresses (the blocks live
        in their tree; there is nowhere else to read them) but do so on
        the *serial fallback path*: one access at a time, each padded
        with a dummy path access so every quarantined-channel request --
        fallback or half-open probe -- presents the same two-path shape
        to the storage adversary.  Both paths draw uniformly random
        leaves, so the access sequence stays indistinguishable from the
        healthy one (the chaos harness gates this with the
        :class:`~repro.observability.LeafUniformityMonitor`).
        """
        health = self.health
        state = health.state(shard_index)
        if state is HealthState.QUARANTINED and health.begin_probe_if_ready(
            shard_index
        ):
            state = HealthState.PROBING
        stats = shard.stats
        faults_before = stats.transient_faults
        start = max(now, shard.busy_until)
        result = shard.demand_access(local, now, is_write)
        ok = stats.transient_faults == faults_before
        if state is HealthState.QUARANTINED:
            result.completion_cycle = shard.dummy_path_access(
                result.completion_cycle
            )
            health.record_fallback(shard_index)
            if not ok:
                # A fault on the fallback path restarts the cooldown:
                # the shard is demonstrably still sick.
                health.record_hard_failure(shard_index, "fallback_fault")
        elif state is HealthState.PROBING:
            result.completion_cycle = shard.dummy_path_access(
                result.completion_cycle
            )
            health.record_probe(shard_index, ok)
        else:
            health.record_access(
                shard_index, ok, result.completion_cycle - start
            )
            if len(shard.oram.stash) > self._pressure_limits[shard_index]:
                health.record_pressure(shard_index)
        throttled = health.state(shard_index).throttled
        if throttled != shard._health_degraded:
            shard.set_degraded(throttled)
        return self._globalize(shard_index, result)

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        shard_index = addr % self.num_shards
        shard = self.shards[shard_index]
        result = shard.prefetch_access(addr // self.num_shards, now)
        if result is None:
            return None
        return self._globalize(shard_index, result)

    def access_batch(
        self, requests: Sequence[Tuple[int, int, bool]]
    ) -> List[DemandResult]:
        """Serve a batch of ``(addr, now, is_write)`` concurrently in-flight.

        Requests are partitioned by shard (preserving arrival order within
        a shard) and issued deterministically round-robin across shards --
        one request per shard per round, shard index ascending -- so a
        multicore trace fans out and each shard's queue drains
        independently.  Results come back in the input order.
        """
        per_shard: List[List[int]] = [[] for _ in range(self.num_shards)]
        for position, (addr, _now, _w) in enumerate(requests):
            per_shard[addr % self.num_shards].append(position)
        results: List[Optional[DemandResult]] = [None] * len(requests)
        round_index = 0
        remaining = len(requests)
        while remaining:
            for shard_index in range(self.num_shards):
                queue = per_shard[shard_index]
                if round_index >= len(queue):
                    continue
                position = queue[round_index]
                addr, now, is_write = requests[position]
                results[position] = self.demand_access(addr, now, is_write)
                remaining -= 1
            round_index += 1
        return results  # type: ignore[return-value]

    # ----------------------------------------------------------- cache events
    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        shard, local = self._split(addr)
        shard.evict_line(local, dirty, now)

    def on_llc_hit(self, addr: int) -> None:
        shard, local = self._split(addr)
        shard.on_llc_hit(local)

    def finalize(self, now: int) -> None:
        for shard in self.shards:
            shard.finalize(now)

    # ------------------------------------------------------------- aggregates
    @property
    def busy_until(self) -> int:  # type: ignore[override]
        """The bank is busy until its last-finishing channel is."""
        return max(shard.busy_until for shard in self.shards)

    @busy_until.setter
    def busy_until(self, value: int) -> None:
        raise AttributeError("per-shard busy_until is owned by the shards")

    @property
    def stats(self) -> BackendStats:  # type: ignore[override]
        """Aggregate counters summed over every shard (a fresh snapshot)."""
        total = BackendStats()
        for shard in self.shards:
            s = shard.stats
            total.demand_requests += s.demand_requests
            total.prefetch_requests += s.prefetch_requests
            total.write_accesses += s.write_accesses
            total.memory_accesses += s.memory_accesses
            total.dummy_accesses += s.dummy_accesses
            total.posmap_accesses += s.posmap_accesses
            total.busy_cycles += s.busy_cycles
            total.transient_faults += s.transient_faults
            total.fault_retries += s.fault_retries
            total.fault_delay_cycles += s.fault_delay_cycles
            total.forced_evictions += s.forced_evictions
        return total

    @stats.setter
    def stats(self, value: BackendStats) -> None:
        raise AttributeError("bank stats are an aggregate view over the shards")

    def stash_max_occupancy(self) -> int:
        """Worst stash watermark across the channels."""
        return max(shard.oram.stash.max_occupancy for shard in self.shards)

    def stash_soft_overflows(self) -> int:
        return sum(shard.oram.stash_soft_overflows for shard in self.shards)

    def aggregate_posmap_hit_rate(self) -> float:
        """Lookup-weighted PosMap cache hit rate over all shards.

        Guarded for the no-lookup case (e.g. a bank that never saw a
        miss): returns 0.0 instead of dividing by zero, matching
        :meth:`repro.oram.recursion.PosMapHierarchy.hit_rate`.
        """
        lookups = sum(shard.posmap_hierarchy.lookups for shard in self.shards)
        if lookups == 0:
            return 0.0
        hits = sum(shard.posmap_hierarchy.cache_hits for shard in self.shards)
        return hits / lookups

    def phase_breakdown(self) -> dict:
        """Per-phase cycle attribution summed over every shard's pipeline."""
        total: dict = {}
        for shard in self.shards:
            for name, cycles in shard.pipeline.breakdown().items():
                total[name] = total.get(name, 0) + cycles
        return total

    def snapshot_shards(self) -> List[dict]:
        """Per-channel counter snapshots (:func:`snapshot_shard_stats`)."""
        return [snapshot_shard_stats(shard) for shard in self.shards]

    def check_invariants(self) -> None:
        """Audit every channel's ORAM (tests / fsck)."""
        for shard in self.shards:
            shard.oram.check_invariants()

    @property
    def background_eviction_rate(self) -> float:
        stats = self.stats
        total = stats.demand_requests + stats.dummy_accesses
        return stats.dummy_accesses / total if total else 0.0
