"""The ORAM controller layer: one protocol, one pipeline, many schemes.

Historically every ORAM scheme in this repository re-implemented its own
access loop and ``ORAMBackend._perform_access`` was welded to
:class:`~repro.oram.path_oram.PathORAM` internals.  This package is the
seam that separates *what an ORAM scheme must provide* from *how the
memory controller drives it*:

* :mod:`repro.controller.scheme` -- the :class:`ORAMScheme` protocol
  (begin/finish access, background eviction, stash drain, invariant
  check) that Path ORAM, Ring ORAM, the Shi et al. tree ORAM, and the
  square-root ORAM all implement, plus a registry for building any of
  them by name;
* :mod:`repro.controller.mixins` -- the stash/eviction/placement logic
  that used to be duplicated across the scheme zoo, hoisted into shared
  mixins;
* :mod:`repro.controller.pipeline` -- the explicit access-phase pipeline
  (PosMap -> PathRead -> Remap -> Writeback) the memory backend executes
  per request, with per-phase cycle and fault accounting;
* :mod:`repro.controller.sharded` -- the channel-interleaved
  :class:`ShardedORAMBank` that fans requests out over N independent
  scheme instances behind the single :class:`MemoryBackend` interface
  (imported directly, not re-exported here, to keep the package import
  acyclic with :mod:`repro.memory`).
"""

from repro.controller.mixins import (
    BoundedDrainMixin,
    DeepestPlacementMixin,
    GreedyWritebackMixin,
    SharedLeafMixin,
)
from repro.controller.pipeline import (
    AccessPipeline,
    PathReadPhase,
    PosMapPhase,
    RemapPhase,
    WritebackPhase,
)
from repro.controller.scheme import ORAMScheme, SCHEME_FACTORIES, build_scheme

__all__ = [
    "AccessPipeline",
    "BoundedDrainMixin",
    "DeepestPlacementMixin",
    "GreedyWritebackMixin",
    "ORAMScheme",
    "PathReadPhase",
    "PosMapPhase",
    "RemapPhase",
    "SCHEME_FACTORIES",
    "SharedLeafMixin",
    "WritebackPhase",
    "build_scheme",
]
