"""Shared scheme machinery hoisted out of the ORAM zoo.

Before the controller layer existed, Path ORAM, Ring ORAM, and the Shi
et al. tree ORAM each carried private copies of the same four routines:
validating that super-block members share a leaf, placing a block as deep
as possible on its path at population time, writing the stash back onto a
path greedily (deepest level first), and draining the stash with bounded
background evictions.  These mixins are the single home of that logic.

The hot-path exception: :meth:`PathORAM._evict_path` keeps its
hand-inlined specialization of :meth:`GreedyWritebackMixin._greedy_writeback`
(byte-table depth lookup, reused scratch buckets) because it is the single
hottest loop of the simulator and is pinned bit-identical by the golden
determinism test.  The mixin documents the reference algorithm the
specialization must agree with; the cross-scheme parity suite checks that
agreement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

if TYPE_CHECKING:  # imported lazily: repro.oram modules import these mixins
    from repro.oram.block import Block


class SharedLeafMixin:
    """Validation of the super block invariant (all members on one leaf)."""

    def _validated_shared_leaf(
        self, addrs: Sequence[int], leaf_of: Callable[[int], int]
    ) -> int:
        """Return the common mapped leaf of ``addrs`` or raise ``ValueError``."""
        if not addrs:
            raise ValueError("access needs at least one address")
        leaf = leaf_of(addrs[0])
        for addr in addrs[1:]:
            if leaf_of(addr) != leaf:
                raise ValueError("super block members must share a leaf")
        return leaf


class DeepestPlacementMixin:
    """Initial placement: a block goes as deep on its path as room allows."""

    def _place_deepest(
        self,
        block: Block,
        levels: int,
        capacity: int,
        bucket_for: Callable[[int, int], List[Block]],
    ) -> bool:
        """Append ``block`` to the deepest non-full bucket on its path.

        ``bucket_for(level, leaf)`` must return the mutable block list of
        the bucket at ``level`` on the path to ``leaf``.  Returns False
        when every bucket on the path is full (the caller sends the block
        to its stash/overflow area).
        """
        for level in range(levels, -1, -1):
            bucket = bucket_for(level, block.leaf)
            if len(bucket) < capacity:
                bucket.append(block)
                return True
        return False


class GreedyWritebackMixin:
    """The greedy deepest-first path write-back every tree scheme shares.

    Blocks are scored by the deepest level they may occupy on the written
    path (the common-prefix length of their mapped leaf and the path
    leaf), buckets are filled deepest first, and ties preserve stash
    insertion order -- exactly the consumption order a stable descending
    sort produces, computed in one O(S) bucketing pass instead.
    """

    def _greedy_writeback(
        self,
        leaf: int,
        levels: int,
        capacity: int,
        stash: Dict[int, Block],
        write_bucket: Callable[[int, List[Block]], None],
    ) -> int:
        """Write ``stash`` back onto the path to ``leaf``; return blocks placed.

        ``write_bucket(level, blocks)`` installs the chosen blocks as the
        new content of the bucket at ``level`` on the path (and may charge
        whatever per-bucket cost the scheme meters).  Placed blocks are
        removed from ``stash``.
        """
        by_depth: List[List[Block]] = [[] for _ in range(levels + 1)]
        for block in stash.values():
            differing = block.leaf ^ leaf
            by_depth[
                levels if differing == 0 else levels - differing.bit_length()
            ].append(block)
        flat: List[Block] = []
        pos = 0
        for level in range(levels, -1, -1):
            flat.extend(by_depth[level])
            take = min(capacity, len(flat) - pos)
            write_bucket(level, flat[pos : pos + take])
            pos += take
        for block in flat[:pos]:
            del stash[block.addr]
        return pos


class BoundedDrainMixin:
    """Background-eviction drain loop with a liveness bound.

    The controller drains the stash before serving a real request
    (section 2.4); a pathologically overloaded tree can reach a state
    where random-path evictions make little progress, so rather than
    deadlocking the drain gives up for this request after
    ``MAX_EVICTIONS_PER_DRAIN`` attempts -- every attempt is still a
    charged dummy access, so the *cost* lands where the paper puts it.

    Implementors provide :meth:`_stash_over_limit` (when must the drain
    keep going) and ``dummy_access`` (one background eviction); they may
    override :meth:`_note_drain_overflow` to count give-ups.
    """

    MAX_EVICTIONS_PER_DRAIN = 64

    def _stash_over_limit(self) -> bool:
        raise NotImplementedError

    def _note_drain_overflow(self) -> None:
        """Hook: the drain hit its bound with the stash still over limit."""

    def drain_stash(self) -> int:
        """Issue background evictions until within limit; return the count."""
        evictions = 0
        while self._stash_over_limit():
            if evictions >= self.MAX_EVICTIONS_PER_DRAIN:
                self._note_drain_overflow()
                break
            self.dummy_access()
            evictions += 1
        return evictions
