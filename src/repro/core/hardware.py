"""Hardware-cost accounting for the dynamic super block scheme (section 4.5).

The paper argues PrORAM is cheap: four extra bits per 128-byte block
(merge, break, prefetch bits in the PosMap entry; hit bit with the data
block) -- under 0.4% storage -- plus a handful of LLC tag probes and small
arithmetic per ORAM access, all off the critical path.  This module
computes those overheads for arbitrary configurations so the claim can be
checked, and tallies the runtime operation counts the simulator observes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ORAMConfig


@dataclass(frozen=True)
class StorageOverhead:
    """Static storage costs of PrORAM for a given configuration."""

    bits_per_block: int
    block_bits: int
    posmap_entry_bits: int
    posmap_entry_extra_bits: int

    @property
    def fraction(self) -> float:
        """Extra storage relative to the data block itself."""
        return self.bits_per_block / self.block_bits


def storage_overhead(config: ORAMConfig) -> StorageOverhead:
    """Per-block storage cost of the dynamic super block scheme.

    Four bits per basic block: merge + break + prefetch bits in the PosMap
    entry, and the hit bit stored with the block in ORAM/LLC (4.5.1).
    """
    return StorageOverhead(
        bits_per_block=4,
        block_bits=config.block_bytes * 8,
        posmap_entry_bits=leaf_label_bits(config) + 3,
        posmap_entry_extra_bits=3,
    )


def leaf_label_bits(config: ORAMConfig) -> int:
    """Bits needed for one leaf label in the *nominal* tree.

    The paper's example packs 32 x (25-bit leaf + flag bits) per 128 B
    PosMap block; with the Table 1 geometry this returns 25.
    """
    return config.nominal_levels


def posmap_block_fits(config: ORAMConfig) -> bool:
    """Check the PosMap block packing constraint of section 4.1.

    ``entries x (leaf + merge + break + prefetch bits)`` must fit in one
    block; this bounds the maximum super block size, since all of a super
    block's entries must share a PosMap block.
    """
    bits = config.posmap_entries_per_block * (leaf_label_bits(config) + 3)
    return bits <= config.block_bytes * 8


def max_super_block_size_supported(config: ORAMConfig) -> int:
    """Largest super block the PosMap block layout supports.

    A super block's members (and its neighbor's) must reside in one PosMap
    block, so the limit is ``posmap_entries_per_block / 2`` (the factor of
    two leaves room for the neighbor group used by the merge counter).
    """
    return config.posmap_entries_per_block // 2


@dataclass
class OperationCounts:
    """Runtime operation tally (computation cost, section 4.5.2)."""

    llc_tag_probes: int = 0
    counter_updates: int = 0
    posmap_bit_writes: int = 0

    def record_merge_check(self, neighbor_size: int) -> None:
        """One Algorithm-1 evaluation probes the neighbor's tags and updates
        one counter."""
        self.llc_tag_probes += neighbor_size
        self.counter_updates += 1
        self.posmap_bit_writes += 2 * neighbor_size

    def record_break_check(self, sbsize: int) -> None:
        """One Algorithm-2 evaluation reads each member's bits and updates
        one counter."""
        self.counter_updates += 1
        self.posmap_bit_writes += sbsize
