"""The dynamic super block scheme -- PrORAM proper (paper section 4).

Life of an access:

1. The backend asks :meth:`DynamicSuperBlockScheme.members_for` which basic
   blocks travel together -- the super block inferred from leaf equality in
   the position map (nothing is merged at initialization; everything starts
   at ``sbsize = 1``).
2. The functional ORAM fetches the members and remaps them to one new leaf.
3. :meth:`DynamicSuperBlockScheme.process_fetch` then runs

   * **Algorithm 2 (break)**: reconstruct the break counter from the break
     bits, apply the prefetch/hit evidence of every block that came from
     the ORAM, and either break the super block in half (the half without
     the demand block returns to the stash under a fresh independent leaf)
     or mark the prefetched half's blocks pending (prefetch=1, hit=0);
   * **Algorithm 1 (merge)**: reconstruct the merge counter for (B, B'),
     probe the LLC tags for B's neighbor, and bump the counter -- merging
     B into (B, B') when the threshold is reached by pointing B's position
     map entries at B''s leaf.

Merging and breaking are pure position-map operations on blocks that are
on-chip, so they add no path accesses -- the property that makes the scheme
free of bandwidth overhead (section 4.5.2).

Interpretation note (documented in DESIGN.md): Algorithm 1 as printed
increments the merge counter when B loads with B' resident and decrements
when B loads with B' absent.  On a sequential scan over a footprint larger
than the LLC -- the very pattern super blocks exist for -- the two events
alternate exactly (the lower-address member always loads *before* its
neighbor arrives), so the counter nets zero per pass and nothing could ever
merge, contradicting the paper's own results (Figure 6a: dyn matches stat
at 100% locality).  The increment is kept exactly as written; the decrement
is taken causally at *LLC eviction* of a member whose neighbor group never
became co-resident during the residency (one co-residence bit per line, set
by the same tag probe the increment already performs).  This judges the
identical evidence -- "were B and B' in the cache at the same time?" --
once per residency instead of prejudging it at load time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import counters
from repro.core.thresholds import StaticThresholdPolicy, ThresholdPolicy
from repro.oram.block import Block
from repro.oram.super_block import FetchOutcome, SuperBlockScheme
from repro.utils.bitops import is_power_of_two


class DynamicSuperBlockScheme(SuperBlockScheme):
    """PrORAM's dynamic super block scheme (sections 4.1-4.4)."""

    name = "dyn"

    def __init__(
        self,
        max_sbsize: int = 2,
        policy: Optional[ThresholdPolicy] = None,
        break_enabled: bool = True,
        literal_merge_decrement: bool = False,
    ):
        """Args:
            max_sbsize: largest super block the scheme may build (Table 1: 2).
            policy: threshold policy; defaults to the static thresholds of
                section 4.4.1 (benchmarks typically pass the adaptive one).
            break_enabled: disable to get the paper's ``Nb`` (no breaking)
                variants of Figure 6b; super blocks then never dissolve.
            literal_merge_decrement: take Algorithm 1's decrement at load
                time exactly as printed instead of at eviction time.  Kept
                for the ablation benchmark: on streaming footprints beyond
                the LLC the literal rule nets zero per pass and (almost)
                nothing ever merges -- see the module docstring.
        """
        super().__init__()
        if not is_power_of_two(max_sbsize):
            raise ValueError("max super block size must be a power of two")
        self.max_sbsize = max_sbsize
        self.policy = policy if policy is not None else StaticThresholdPolicy()
        self.break_enabled = break_enabled
        self.literal_merge_decrement = literal_merge_decrement
        self._coresident = bytearray(0)

    def attach(self, oram, llc_contains) -> None:
        super().attach(oram, llc_contains)
        # One co-residence bit per basic block: "this LLC residency saw the
        # neighbor group resident at the same time" (see module docstring).
        self._coresident = bytearray(oram.position_map.num_blocks)
        # Direct handles for the width-2 counter fast paths below (none of
        # these arrays is ever reallocated by its owner).
        self._posmap = oram.position_map
        self._merge_bits = oram.position_map._merge_bits
        self._break_bits = oram.position_map._break_bits
        self._pf_bits = self._tracker._prefetch_bits
        self._hit_bits = self._tracker._hit_bits

    def threshold_listener(self):
        return self.policy

    # ------------------------------------------------------------ membership
    def members_for(self, addr: int) -> List[int]:
        base, size = self._posmap.super_block_of(addr, self.max_sbsize)
        if size == 1:
            return [base]
        return list(range(base, base + size))

    # ------------------------------------------------------------- main hook
    def process_fetch(
        self, demand: int, members: List[int], fetched: Dict[int, Block]
    ) -> FetchOutcome:
        outcome = FetchOutcome()
        base = members[0]
        size = len(members)
        coresident = self._coresident
        for addr in fetched:
            coresident[addr] = 0  # fresh LLC residency starts now
        if size > 1:
            broke = self._run_break(demand, base, size, fetched, outcome)
            if broke:
                # Hysteresis: a super block broken this access does not
                # immediately audition for re-merging.
                return outcome
        else:
            outcome.to_llc.append((demand, False))
            # A singleton arriving from the ORAM may carry a stale pending
            # prefetch bit (it was prefetched, evicted unused, and its super
            # block broke apart since).  Consume it so the bit does not
            # corrupt a future counter reconstruction (consume_bits inlined:
            # only its prefetch-bit clear has an effect here).
            self._pf_bits[demand] = 0
        # group_base(demand, size) inlined: sizes are validated powers of two.
        if not self._merge_throttled:
            self._run_merge(demand & ~(size - 1), size)
        return outcome

    # ------------------------------------------------------------- Algorithm 2
    def _run_break(
        self,
        demand: int,
        base: int,
        size: int,
        fetched: Dict[int, Block],
        outcome: FetchOutcome,
    ) -> bool:
        """Break algorithm; returns True if the super block was broken."""
        posmap = self._posmap
        # Reconstruct the break counter from the super block's break bits,
        # then update it with the prefetch/hit evidence of blocks coming
        # from ORAM.  Pairs (every call at the default max size) read the
        # two bits and consume the evidence with direct array indexing.
        if size == 2:
            bb = self._break_bits
            raw = (bb[base] << 1) | bb[base + 1]
            pf = self._pf_bits
            hits = self._hit_bits
            for addr in fetched:
                if pf[addr]:
                    pf[addr] = 0
                    raw += 1 if hits[addr] else -1
        else:
            raw = counters.bits_to_value(posmap.break_bits_raw(base, size))
            for addr in fetched:
                prefetch, hit = self.tracker.consume_bits(addr)
                if prefetch and not hit:
                    raw -= 1
                elif prefetch and hit:
                    raw += 1
        threshold = self.policy.break_threshold(size)
        half = size // 2
        demand_in_low = demand < base + half
        keep_base = base if demand_in_low else base + half
        drop_base = base + half if demand_in_low else base
        if self.break_enabled and raw < threshold:
            # ---- break B into B1 (with the demand block) and B2.
            keep = list(range(keep_base, keep_base + half))
            drop = list(range(drop_base, drop_base + half))
            # Fresh independent leaf for each half; every member is in the
            # stash right now (the access's write-back has not run yet), so
            # the physical positions follow the new mapping.
            self.oram.remap_group(keep)
            self.oram.remap_group(drop)
            self._reset_group_counters(base, size)
            for member in range(base, base + size):
                self._coresident[member] = 0
            if half >= 2:
                # The halves remain super blocks of size ``half``; give each
                # a freshly initialized break counter (section 4.4.1).
                initial_bits = counters.value_to_bits(
                    counters.initial_break_value(half), half
                )
                posmap.set_break_bits(keep_base, initial_bits)
                posmap.set_break_bits(drop_base, initial_bits)
            self.stats.breaks += 1
            # B1 goes to the LLC; its fetched non-demand blocks are still
            # prefetches relative to the demand block.
            for addr in keep:
                if addr in fetched:
                    if addr == demand:
                        outcome.to_llc.append((addr, False))
                    else:
                        self.tracker.mark_prefetched(addr)
                        outcome.to_llc.append((addr, True))
            # B2 is "written back to ORAM": its blocks simply stay in the
            # tree/stash under their fresh independent leaf -- no copies
            # enter the LLC.
            return True
        # ---- keep the super block: store the updated counter and mark the
        # prefetched half pending ("b.prefetch = true; b.hit = false").
        if size == 2:
            stored = 0 if raw < 0 else (3 if raw > 3 else raw)
            bb[base] = stored >> 1
            bb[base + 1] = stored & 1
        else:
            stored = counters.saturate(raw, size)
            posmap.set_break_bits(base, counters.value_to_bits(stored, size))
        for addr in range(base, base + size):
            if addr not in fetched:
                continue
            if addr == demand:
                outcome.to_llc.append((addr, False))
            else:
                self.tracker.mark_prefetched(addr)
                outcome.to_llc.append((addr, True))
        return False

    # ------------------------------------------------------------- Algorithm 1
    def _run_merge(self, base: int, size: int) -> None:
        """Merge algorithm for super block B = [base, base+size)."""
        result_size = size * 2
        if result_size > self.max_sbsize:
            return
        posmap = self._posmap
        if size == 1:
            # Singleton fast path (every merge audition at the default
            # max_sbsize of 2): the neighbor is one block, the counter is the
            # two merge bits of the aligned pair -- read and write them
            # directly instead of slicing/boxing through the codec.
            cb = base & ~1
            if cb + 2 > posmap.num_blocks:
                return
            neighbor = cb if cb != base else base + 1
            m = self._merge_bits
            value = (m[cb] << 1) | m[cb + 1]
            if self._llc_contains(neighbor):
                coresident = self._coresident
                coresident[cb] = 1
                coresident[cb + 1] = 1
                if value < 3:
                    value += 1
                if value >= self.policy.merge_threshold(2):
                    self._merge(base, neighbor, 1, cb, 2)
                    return
                m[cb] = value >> 1
                m[cb + 1] = value & 1
            elif self.literal_merge_decrement and value:
                value -= 1
                m[cb] = value >> 1
                m[cb + 1] = value & 1
            return
        combined_base = base & ~(result_size - 1)  # group_base inlined
        if combined_base + result_size > posmap.num_blocks:
            return  # neighbor group extends past the address space
        neighbor_base = combined_base if combined_base != base else base + size
        # The neighbor must currently be a group of the same granularity: it
        # must not already be merged into something larger (impossible here,
        # since that would have made B part of it) but it may be internally
        # unmerged -- merging then adopts one common leaf for all members.
        neighbor = range(neighbor_base, neighbor_base + size)
        if size > 1 and not posmap.group_is_super_block(neighbor_base, size):
            # The neighbor group is not itself a super block (its members
            # map to different leaves), so "changing the position map of B
            # to the position map of B'" is not well defined -- and would
            # strand B''s tree-resident blocks off their paths.  Wait until
            # the neighbor merges at its own granularity.
            return
        width = counters.merge_counter_width(size)
        value = counters.bits_to_value(
            posmap.merge_bits_raw(combined_base, result_size)
        )
        llc_contains = self._llc_contains
        coresident = True
        for addr in neighbor:
            if not llc_contains(addr):
                coresident = False
                break
        if coresident:
            # Locality observed: B and B' are co-resident.  Flag every
            # member of both groups so their evictions do not count against
            # the pair (module docstring).
            for addr in range(combined_base, combined_base + result_size):
                self._coresident[addr] = 1
            value = counters.saturate(value + 1, width)
            if value >= self.policy.merge_threshold(result_size):
                self._merge(base, neighbor_base, size, combined_base, result_size)
                return
            posmap.set_merge_bits(combined_base, counters.value_to_bits(value, width))
        elif self.literal_merge_decrement:
            # Ablation mode: decrement at load time as Algorithm 1 prints it.
            value = counters.saturate(value - 1, width)
            posmap.set_merge_bits(combined_base, counters.value_to_bits(value, width))
        # Otherwise the no-locality decrement is deferred to LLC eviction
        # time (:meth:`on_llc_evict`), where the co-residence verdict for
        # this residency is final.

    def on_llc_evict(self, addr: int) -> None:
        super().on_llc_evict(addr)  # prefetch-miss statistics
        if self.literal_merge_decrement:
            return  # ablation mode: no eviction-time decrement
        if self._coresident[addr]:
            # Residency observed its neighbor; no evidence against the pair.
            self._coresident[addr] = 0
            return
        posmap = self._posmap
        base, size = posmap.super_block_of(addr, self.max_sbsize)
        result_size = size * 2
        if result_size > self.max_sbsize:
            return  # already at the maximum size; no next-level counter
        combined_base = base & ~(result_size - 1)  # group_base inlined
        if combined_base + result_size > posmap.num_blocks:
            return
        if size == 1:
            # Mirror of the singleton fast path in :meth:`_run_merge`: the
            # pair counter is the two merge bits at the aligned base, and a
            # counter already at zero saturates in place.
            m = self._merge_bits
            value = (m[combined_base] << 1) | m[combined_base + 1]
            if value:
                value -= 1
                m[combined_base] = value >> 1
                m[combined_base + 1] = value & 1
            return
        neighbor_base = combined_base if combined_base != base else base + size
        if size > 1 and not posmap.group_is_super_block(neighbor_base, size):
            # Same guard as :meth:`_run_merge`: while the neighbor group is
            # not itself a super block, the pair (B, B') has no next-level
            # merge counter to judge -- the merge path skips such pairs, so
            # the eviction path must not decrement them either.
            return
        width = counters.merge_counter_width(size)
        value = counters.bits_to_value(
            posmap.merge_bits_raw(combined_base, result_size)
        )
        value = counters.saturate(value - 1, width)
        posmap.set_merge_bits(combined_base, counters.value_to_bits(value, width))

    def _merge(
        self, base: int, neighbor_base: int, size: int, combined_base: int, result_size: int
    ) -> None:
        """Merge B and B' by pointing B's mapping at B''s leaf (section 4.2).

        B's blocks are in the stash (mid-access, before the write-back), so
        re-pointing them is safe; B' already shares the target leaf, so its
        mapping is unchanged.  No extra path access is needed.
        """
        posmap = self.oram.position_map
        target_leaf = posmap.leaf(neighbor_base)
        self.oram.remap_group(
            range(combined_base, combined_base + result_size), target_leaf
        )
        self._reset_group_counters(combined_base, result_size)
        for addr in range(combined_base, combined_base + result_size):
            self._coresident[addr] = 0  # flags now judge the next level
        # Fresh super block: initialize its break counter (section 4.4.1).
        initial = counters.initial_break_value(result_size)
        posmap.set_break_bits(
            combined_base, counters.value_to_bits(initial, result_size)
        )
        self.stats.merges += 1

    # ---------------------------------------------------------------- helpers
    def _reset_group_counters(self, base: int, size: int) -> None:
        """Zero the merge/break bits of a group whose structure changed.

        "Once super blocks are merged or broken, the counters are
        reconstructed and the bits are reused for different super block
        sizes." -- resetting avoids stale bits leaking into the counters of
        the new granularity.
        """
        posmap = self.oram.position_map
        zeros = [0] * size
        posmap.set_merge_bits(base, zeros)
        posmap.set_break_bits(base, zeros)
