"""Merge/break threshold policies (paper section 4.4).

Two policies are provided:

* :class:`StaticThresholdPolicy` (4.4.1): merge two size-``n`` neighbors at
  counter value ``2n``; break at 0.
* :class:`AdaptiveThresholdPolicy` (4.4.2): Equation 1,

  .. math::

     threshold = C \\cdot \\frac{sbsize^2 \\cdot eviction\\_rate \\cdot
     access\\_rate}{prefetch\\_hit\\_rate}

  with rates collected over a sliding window (1000 ORAM requests in the
  paper) and hysteresis ``threshold_merge = threshold + sbsize``,
  ``threshold_break = threshold``.

The comparison conventions (shared with :mod:`repro.core.dynamic`):

* *merge* when the saturated merge counter is ``>= merge_threshold``;
* *break* when the **raw** (pre-saturation) break counter is
  ``< break_threshold`` -- with the static threshold of 0 this fires
  exactly when a decrement would push the counter below its minimum,
  which is the only way "smaller than the minimal value" can occur.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.counters import static_merge_threshold

#: Window length, in ORAM requests, for adaptive statistics (section 4.4.2).
DEFAULT_WINDOW_REQUESTS = 1000


class ThresholdPolicy(ABC):
    """Decides merge/break thresholds; may consume runtime statistics."""

    @abstractmethod
    def merge_threshold(self, result_size: int) -> float:
        """Threshold for merging two halves into a ``result_size`` super block."""

    @abstractmethod
    def break_threshold(self, sbsize: int) -> float:
        """Threshold for breaking a ``sbsize`` super block."""

    # ----- runtime statistics feed (no-ops for the static policy) -----
    def on_request(self, busy_cycles: int, elapsed_cycles: int) -> None:
        """One real ORAM request finished, having kept the ORAM busy for
        ``busy_cycles`` out of the ``elapsed_cycles`` since the previous
        request."""

    def on_background_eviction(self, count: int = 1) -> None:
        """Background evictions issued (dummy accesses)."""

    def on_prefetch_hit(self) -> None:
        """A prefetched block was used in the LLC."""

    def on_prefetch_miss(self) -> None:
        """A prefetched block left the LLC unused."""


class StaticThresholdPolicy(ThresholdPolicy):
    """Fixed thresholds (section 4.4.1)."""

    def merge_threshold(self, result_size: int) -> float:
        # result_size == 2n for halves of size n; the threshold is 2n.
        return float(static_merge_threshold(result_size // 2))

    def break_threshold(self, sbsize: int) -> float:
        return 0.0


@dataclass
class _WindowStats:
    requests: int = 0
    background_evictions: int = 0
    busy_cycles: int = 0
    elapsed_cycles: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0


class AdaptiveThresholdPolicy(ThresholdPolicy):
    """Equation 1 with windowed rate estimation (section 4.4.2).

    Args:
        c_merge: the merge coefficient ``Cmerge`` (Figure 10 sweeps it).
        c_break: the break coefficient ``Cbreak``.
        window_requests: requests per statistics window (paper: 1000).
    """

    def __init__(
        self,
        c_merge: float = 1.0,
        c_break: float = 1.0,
        window_requests: int = DEFAULT_WINDOW_REQUESTS,
    ):
        if window_requests < 1:
            raise ValueError("window must cover at least one request")
        self.c_merge = c_merge
        self.c_break = c_break
        self.window_requests = window_requests
        self._window = _WindowStats()
        # Rates from the last completed window.  Optimistic defaults: until
        # evidence arrives, merging is as easy as under static thresholds.
        self.eviction_rate = 0.0
        self.access_rate = 0.0
        self.prefetch_hit_rate = 1.0

    # ------------------------------------------------------------ statistics
    def on_request(self, busy_cycles: int, elapsed_cycles: int) -> None:
        w = self._window
        w.requests += 1
        w.busy_cycles += busy_cycles
        # Same-cycle bursts (e.g. two shards of a batch completing on one
        # cycle) legitimately report ``elapsed_cycles == 0``; they add busy
        # evidence but no wall-clock.  Clamp negatives too, so a caller
        # with a skewed clock cannot shrink the window's elapsed total.
        if elapsed_cycles > 0:
            w.elapsed_cycles += elapsed_cycles
        if w.requests >= self.window_requests:
            self._roll_window()

    def on_background_eviction(self, count: int = 1) -> None:
        self._window.background_evictions += count

    def on_prefetch_hit(self) -> None:
        self._window.prefetch_hits += 1

    def on_prefetch_miss(self) -> None:
        self._window.prefetch_misses += 1

    def _roll_window(self) -> None:
        w = self._window
        total_requests = w.requests + w.background_evictions
        self.eviction_rate = w.background_evictions / max(1, total_requests)
        # Equation 1's access rate is busy/elapsed over the window.  A
        # window whose every request landed on one cycle has zero elapsed
        # time: the ORAM was saturated, so the rate is 1 when any work ran
        # (division would raise; ``max(1, ...)`` would *under*-report an
        # all-zero-elapsed window as rate ~= busy instead of saturated).
        if w.elapsed_cycles > 0:
            self.access_rate = min(1.0, w.busy_cycles / w.elapsed_cycles)
        else:
            self.access_rate = 1.0 if w.busy_cycles > 0 else 0.0
        resolved = w.prefetch_hits + w.prefetch_misses
        if resolved > 0:
            self.prefetch_hit_rate = w.prefetch_hits / resolved
        # else: keep the previous estimate; no prefetches resolved means no
        # new evidence either way.
        self._window = _WindowStats()

    # ------------------------------------------------------------ thresholds
    def _base_threshold(self, sbsize: int, coefficient: float) -> float:
        hit_rate = max(self.prefetch_hit_rate, 1e-3)
        return coefficient * (sbsize**2) * self.eviction_rate * self.access_rate / hit_rate

    def merge_threshold(self, result_size: int) -> float:
        """``threshold + sbsize`` hysteresis term (section 4.4.2)."""
        return self._base_threshold(result_size, self.c_merge) + result_size

    def break_threshold(self, sbsize: int) -> float:
        return self._base_threshold(sbsize, self.c_break)
