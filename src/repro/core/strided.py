"""Strided super blocks -- the paper's future-work extension (section 6.2).

"Our paper makes the assumption that only the blocks consecutive in address
space can be merged into super blocks.  However, previous work in data
prefetch allows data striding in the address space to be prefetched.
Merging striding blocks is also possible for the dynamic super block
scheme.  Such exploration is left for future work."

This module explores it.  A *strided pair* is ``{a, a + s}`` for a stride
``s`` from a small candidate set; as in the unit-stride scheme, both
members adopt one leaf so a single path access fetches them together, and
the usual prefetch-hit/miss evidence breaks pairs that stop paying.

Differences from the aligned scheme (and the extra hardware they imply):

* Pairings are no longer derivable from leaf equality of an *aligned*
  group, so the controller keeps an explicit partner map -- in hardware, a
  per-entry stride field of ``log2(len(strides))+1`` bits in the PosMap
  block (all candidate strides stay within one PosMap block, preserving
  the "counters come for free" property of section 4.1).
* Merge evidence is tracked per (pair, stride) in small saturating
  counters, trained by the same LLC co-residence probe as Algorithm 1.

The scheme is deliberately limited to pair granularity: it is an
exploration of the paper's pointer, not a tuned product feature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.thresholds import StaticThresholdPolicy, ThresholdPolicy
from repro.oram.block import Block
from repro.oram.super_block import FetchOutcome, SuperBlockScheme

#: candidate strides, probed in order; all fit in one 32-entry PosMap block
DEFAULT_STRIDES: Tuple[int, ...] = (1, 2, 4, 8)

MERGE_THRESHOLD = 2
INITIAL_BREAK = 3
COUNTER_MAX = 3


class StridedDynamicScheme(SuperBlockScheme):
    """Dynamic pair merging across a set of candidate strides."""

    name = "dyn_strided"

    def __init__(
        self,
        strides: Sequence[int] = DEFAULT_STRIDES,
        policy: Optional[ThresholdPolicy] = None,
    ):
        super().__init__()
        if not strides or any(s < 1 for s in strides):
            raise ValueError("strides must be positive")
        self.strides = tuple(strides)
        self.policy = policy if policy is not None else StaticThresholdPolicy()
        #: addr -> partner addr for currently merged pairs (symmetric)
        self._partner: Dict[int, int] = {}
        #: (low addr, stride) -> merge evidence counter
        self._merge_counters: Dict[Tuple[int, int], int] = {}
        #: low addr of pair -> break counter
        self._break_counters: Dict[int, int] = {}
        self._coresident: Dict[int, bool] = {}

    def threshold_listener(self):
        return self.policy

    # ------------------------------------------------------------ membership
    def members_for(self, addr: int) -> List[int]:
        partner = self._partner.get(addr)
        if partner is None:
            return [addr]
        return sorted((addr, partner))

    # -------------------------------------------------------------- main hook
    def process_fetch(
        self, demand: int, members: List[int], fetched: Dict[int, Block]
    ) -> FetchOutcome:
        outcome = FetchOutcome()
        for addr in fetched:
            self._coresident[addr] = False
        if len(members) == 2:
            if not self._run_break(demand, members, fetched, outcome):
                self._mark_prefetches(demand, fetched, outcome)
        else:
            outcome.to_llc.append((demand, False))
            self.tracker.consume_bits(demand)
            self._run_merge(demand)
        return outcome

    def _mark_prefetches(self, demand, fetched, outcome):
        for addr in fetched:
            if addr == demand:
                outcome.to_llc.append((addr, False))
            else:
                self.tracker.mark_prefetched(addr)
                outcome.to_llc.append((addr, True))

    # -------------------------------------------------------------- breaking
    def _run_break(self, demand, members, fetched, outcome) -> bool:
        low = members[0]
        counter = self._break_counters.get(low, INITIAL_BREAK)
        for addr in fetched:
            prefetch, hit = self.tracker.consume_bits(addr)
            if prefetch and not hit:
                counter -= 1
            elif prefetch and hit:
                counter = min(COUNTER_MAX, counter + 1)
        if counter < 0:
            # Break: independent fresh leaves for both members (both are in
            # the stash mid-access, so the remap is physical).
            a, b = members
            self.oram.remap_group([a])
            self.oram.remap_group([b])
            self._partner.pop(a, None)
            self._partner.pop(b, None)
            self._break_counters.pop(low, None)
            self.stats.breaks += 1
            for addr in members:
                if addr in fetched:
                    if addr == demand:
                        outcome.to_llc.append((addr, False))
                    elif addr != demand:
                        # the non-demand half stays in the ORAM
                        pass
            if demand not in fetched:
                outcome.to_llc.append((demand, False))
            return True
        self._break_counters[low] = max(0, counter)
        return False

    # --------------------------------------------------------------- merging
    def _run_merge(self, addr: int) -> None:
        n = self.oram.position_map.num_blocks
        for stride in self.strides:
            for partner in (addr - stride, addr + stride):
                if not 0 <= partner < n:
                    continue
                if partner in self._partner or addr in self._partner:
                    continue
                if not self._llc_contains(partner):
                    continue
                low = min(addr, partner)
                key = (low, stride)
                value = min(COUNTER_MAX, self._merge_counters.get(key, 0) + 1)
                self._coresident[addr] = True
                self._coresident[partner] = True
                if value >= MERGE_THRESHOLD + self.policy.merge_threshold(2) - 2:
                    self._merge(addr, partner, key)
                    return
                self._merge_counters[key] = value
                return  # one piece of evidence per fetch

    def _merge(self, addr: int, partner: int, key) -> None:
        """Point both members at one leaf (both are on-chip: addr is in the
        stash mid-access, partner's copy is in the LLC)."""
        target = self.oram.position_map.leaf(partner)
        self.oram.remap_group([addr], leaf=target)
        self._partner[addr] = partner
        self._partner[partner] = addr
        self._merge_counters.pop(key, None)
        self._break_counters[min(addr, partner)] = INITIAL_BREAK
        self.stats.merges += 1

    # ---------------------------------------------------------------- events
    def on_llc_evict(self, addr: int) -> None:
        super().on_llc_evict(addr)
        if self._coresident.pop(addr, False):
            return
        # Decay merge evidence for this block's candidate pairs.
        for stride in self.strides:
            for partner in (addr - stride, addr + stride):
                key = (min(addr, partner), stride)
                if key in self._merge_counters:
                    value = self._merge_counters[key] - 1
                    if value <= 0:
                        self._merge_counters.pop(key)
                    else:
                        self._merge_counters[key] = value

    # -------------------------------------------------------------- overhead
    def extra_state_bits_per_block(self) -> int:
        """Hardware estimate: stride field + paired flag per PosMap entry."""
        import math

        return 1 + max(1, math.ceil(math.log2(len(self.strides))))
