"""Merge/break counters packed into PosMap entry bits (section 4.1, Figure 4).

PrORAM stores one merge bit and one break bit next to each position map
entry.  Counters are *reconstructed* from those bits whenever the relevant
PosMap block is on-chip:

* the **merge counter** of a pair of neighbor (super) blocks of size ``n``
  each is the concatenation of the ``2n`` merge bits of the basic blocks in
  the combined aligned group -- a ``2n``-bit saturating counter;
* the **break counter** of a super block of size ``m`` is the concatenation
  of its ``m`` break bits -- an ``m``-bit saturating counter.

"Once super blocks are merged or broken, the counters are reconstructed and
the bits are reused for different super block sizes.  This keeps the
hardware overhead small."  These helpers are that codec plus the initial
values and widths of section 4.4.1.

Bit order convention: the bit of the lowest basic-block address is the most
significant.  Any fixed convention works; tests pin this one.
"""

from __future__ import annotations

from typing import List


def bits_to_value(bits: List[int]) -> int:
    """Reconstruct a counter value from per-block bits (low address = MSB)."""
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def value_to_bits(value: int, width: int) -> List[int]:
    """Decompose a counter value back into per-block bits.

    Raises:
        ValueError: if the value does not fit in ``width`` bits (callers
        must saturate first).
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def counter_max(width: int) -> int:
    """Largest value a ``width``-bit counter can hold."""
    return (1 << width) - 1


def saturate(value: int, width: int) -> int:
    """Clamp a raw (possibly out-of-range) value into the counter's range.

    "Incrementing a counter that is already the maximum value does not
    change the counter.  Same for decrementing." (footnote to Algorithm 1)
    """
    return max(0, min(value, counter_max(width)))


def merge_counter_width(half_size: int) -> int:
    """Width of the merge counter for two neighbors of ``half_size`` each."""
    return 2 * half_size


def static_merge_threshold(half_size: int) -> int:
    """Static merge threshold (section 4.4.1): ``2n`` for size-``n`` halves.

    "Two neighbor blocks B1 and B2 of size n = 2**k are merged when the
    value of their merge counter is higher or equal to 2n" -- thresholds
    2, 4, 8 for half sizes 1, 2, 4.
    """
    return 2 * half_size


def initial_break_value(sbsize: int) -> int:
    """Initial break counter value for a freshly merged super block.

    Section 4.4.1 sets it to ``2n`` for a size-``n`` super block, saturated
    to the ``n``-bit counter's range (for ``sbsize == 2`` the 2-bit counter
    cannot hold 4, so it starts at its maximum, 3).
    """
    return saturate(2 * sbsize, sbsize)
