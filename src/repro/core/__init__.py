"""PrORAM: the paper's primary contribution (section 4).

* :mod:`repro.core.counters` -- merge/break counters reconstructed from the
  per-entry bits in PosMap blocks (section 4.1, Figure 4);
* :mod:`repro.core.thresholds` -- static (4.4.1) and adaptive (4.4.2,
  Equation 1) thresholding policies;
* :mod:`repro.core.dynamic` -- the dynamic super block scheme: the merge
  algorithm (Algorithm 1) and the break algorithm (Algorithm 2);
* :mod:`repro.core.hardware` -- storage/computation overhead accounting
  (section 4.5).
"""

from repro.core.counters import (
    bits_to_value,
    initial_break_value,
    merge_counter_width,
    saturate,
    value_to_bits,
)
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import (
    AdaptiveThresholdPolicy,
    StaticThresholdPolicy,
    ThresholdPolicy,
)

__all__ = [
    "AdaptiveThresholdPolicy",
    "DynamicSuperBlockScheme",
    "StaticThresholdPolicy",
    "ThresholdPolicy",
    "bits_to_value",
    "initial_break_value",
    "merge_counter_width",
    "saturate",
    "value_to_bits",
]
