"""Deterministic random number generation.

Every stochastic component of the simulator (leaf remapping, workload
generation, the toy cipher) draws from a :class:`DeterministicRng` so that
experiments are exactly reproducible from a seed.  The class is a thin,
explicit wrapper around :class:`random.Random`; we avoid the module-level
``random`` state entirely.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """Seeded random source with the handful of draws the simulator needs."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._random = random.Random(seed)
        #: Bound ``Random._randbelow`` -- ``randbelow(n)`` draws exactly the
        #: same value (and consumes exactly the same generator state) as
        #: ``random_leaf(n)``, minus two wrapper frames and ``randrange``'s
        #: argument checks.  Hot paths that draw a leaf per access use this.
        self.randbelow = self._random._randbelow

    @property
    def seed(self) -> int:
        """Seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent child generator.

        Components that should not perturb each other's random streams
        (e.g. the workload generator vs. the ORAM's leaf remapper) each get
        a fork with a distinct salt.
        """
        return DeterministicRng(hash((self._seed, salt)) & 0x7FFFFFFFFFFFFFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random_leaf(self, num_leaves: int) -> int:
        """Uniform leaf label in [0, num_leaves)."""
        return self._random.randrange(num_leaves)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def geometric(self, mean: float) -> int:
        """Geometric draw with the given mean (support {1, 2, ...}).

        Used for sequential-run lengths in the workload generators.  A mean
        of 1.0 (or smaller) always returns 1.
        """
        if mean <= 1.0:
            return 1
        # P(success) per trial so that E[X] = mean for X in {1, 2, ...}.
        p = 1.0 / mean
        u = self._random.random()
        # Inverse CDF of the geometric distribution.
        import math

        return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))

    def expovariate_int(self, mean: float) -> int:
        """Exponential draw rounded to an int >= 0 (compute-gap cycles)."""
        if mean <= 0.0:
            return 0
        return int(self._random.expovariate(1.0 / mean))

    def zipf(self, n: int, theta: float, *, _cache={}) -> int:
        """Zipfian draw over [0, n) with skew ``theta`` (YCSB-style).

        theta = 0 is uniform; YCSB's default is 0.99.  Uses the standard
        inverse-CDF construction over precomputed harmonic weights (cached
        per (n, theta) since the DBMS generators draw millions of times).
        """
        key = (n, theta)
        cdf = _cache.get(key)
        if cdf is None:
            weights = [1.0 / (i + 1) ** theta for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            _cache[key] = cdf
        import bisect

        return bisect.bisect_left(cdf, self._random.random())

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with the given number of random bits."""
        return self._random.getrandbits(bits)

    def sample(self, population: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self._random.sample(population, k)

    def permutation(self, n: int) -> list:
        """Random permutation of range(n)."""
        values = list(range(n))
        self._random.shuffle(values)
        return values

    def state_snapshot(self) -> object:
        """Opaque snapshot of internal state (for checkpoint/restore tests)."""
        return self._random.getstate()

    def state_restore(self, snapshot: object) -> None:
        """Restore a snapshot taken with :meth:`state_snapshot`."""
        self._random.setstate(snapshot)  # type: ignore[arg-type]


def make_rng(seed: Optional[int]) -> DeterministicRng:
    """Create a generator from an optional seed (None means seed 0)."""
    return DeterministicRng(0 if seed is None else seed)
