"""Shared low-level helpers: bit manipulation, deterministic RNG, validation."""

from repro.utils.bitops import (
    align_down,
    common_prefix_length,
    group_base,
    is_power_of_two,
    log2_exact,
    neighbor_group_base,
)
from repro.utils.rng import DeterministicRng

__all__ = [
    "DeterministicRng",
    "align_down",
    "common_prefix_length",
    "group_base",
    "is_power_of_two",
    "log2_exact",
    "neighbor_group_base",
]
