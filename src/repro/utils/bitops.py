"""Bit-level helpers used throughout the ORAM and super block code.

The super block scheme (paper section 3.2) only merges blocks whose program
addresses differ in the last ``k`` bits, i.e. blocks belonging to the same
*aligned* group of size ``2**k``.  These helpers centralize that alignment
arithmetic, as well as the common-prefix computation used when evicting
stash blocks onto a path of the binary tree.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``k`` such that ``2**k == value``.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def group_base(addr: int, size: int) -> int:
    """Base address of the aligned group of ``size`` blocks containing ``addr``.

    A super block of size ``size = 2**k`` always occupies the address range
    ``[group_base(addr, size), group_base(addr, size) + size)``.
    """
    return align_down(addr, size)


def neighbor_group_base(addr: int, size: int) -> int:
    """Base address of the *neighbor* group of the size-``size`` group of ``addr``.

    Two groups of size ``n`` are neighbors (paper section 4.1) when together
    they form an aligned group of size ``2n``.  E.g. with ``size == 2``,
    group (0x04, 0x05) has neighbor (0x06, 0x07), never (0x02, 0x03).
    """
    base = group_base(addr, size)
    return base ^ size


def common_prefix_length(leaf_a: int, leaf_b: int, depth: int) -> int:
    """Number of tree levels shared by the paths to ``leaf_a`` and ``leaf_b``.

    Leaves are labelled ``0 .. 2**depth - 1``.  The paths from the root to
    two leaves share ``common_prefix_length + 1`` buckets counting the root,
    i.e. the return value is the deepest *level* (root = level 0) at which a
    block mapped to ``leaf_a`` may be stored when writing back path
    ``leaf_b``.
    """
    if depth == 0:
        return 0
    differing = leaf_a ^ leaf_b
    if differing == 0:
        return depth
    # The most significant differing bit (within `depth` bits) determines the
    # first level at which the two paths diverge.
    return depth - differing.bit_length()
