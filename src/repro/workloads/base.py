"""The shared trace-generation engine.

:class:`WorkloadProfile` captures what the paper's evaluation actually
exercises in a benchmark:

* **memory intensity** -- the mean compute gap between memory references
  (small gap + footprint beyond the LLC = memory bound, the red-background
  benchmarks of Figure 8);
* **spatial locality** -- the fraction of references that belong to
  sequential runs, and the run length (what super blocks exploit);
* **footprint** -- how much of the access stream misses the 512 KB LLC;
* **write fraction** and **skew** (Zipfian reuse for the random part).

:class:`MixtureWorkload` renders a profile into a concrete trace: a cyclic
scan pointer produces the sequential runs (so merged super blocks are
revisited on later passes, as in real array code), and the random part
draws uniform or Zipfian addresses over the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class WorkloadProfile:
    """Calibrated stand-in for one benchmark (see module docstring)."""

    name: str
    suite: str
    footprint_blocks: int
    gap_mean: float
    seq_fraction: float
    run_len_mean: float = 8.0
    write_fraction: float = 0.25
    zipf_theta: float = 0.0
    #: default trace length in memory references
    accesses: int = 60_000
    #: the paper's Figure 8 classification (ORAM/DRAM overhead >= 2x)
    memory_intensive: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.seq_fraction <= 1.0:
            raise ValueError("seq_fraction must be within [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.footprint_blocks < 2:
            raise ValueError("footprint must be at least 2 blocks")

    def scaled(self, accesses: int) -> "WorkloadProfile":
        """Copy with a different trace length (fast-mode benchmarking)."""
        return replace(self, accesses=accesses)


class MixtureWorkload:
    """Sequential-scan / random-access mixture generator for a profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 42):
        self.profile = profile
        self._rng = DeterministicRng(seed).fork(hash(profile.name) & 0xFFFF)

    def generate(self, accesses: Optional[int] = None) -> Trace:
        """Render ``accesses`` memory references (profile default if None)."""
        profile = self.profile
        rng = self._rng
        n = accesses if accesses is not None else profile.accesses
        trace = Trace(name=profile.name, footprint_blocks=profile.footprint_blocks)
        entries = trace.entries
        footprint = profile.footprint_blocks
        scan_pointer = 0
        run_remaining = 0
        for _ in range(n):
            gap = rng.expovariate_int(profile.gap_mean)
            if run_remaining > 0:
                addr = scan_pointer
                scan_pointer = (scan_pointer + 1) % footprint
                run_remaining -= 1
            elif rng.random() < profile.seq_fraction:
                # Start (or resume) a sequential run at the scan pointer.
                run_remaining = max(0, rng.geometric(profile.run_len_mean) - 1)
                addr = scan_pointer
                scan_pointer = (scan_pointer + 1) % footprint
            else:
                if profile.zipf_theta > 0.0:
                    addr = rng.zipf(footprint, profile.zipf_theta)
                else:
                    addr = rng.randint(0, footprint - 1)
            is_write = 1 if rng.random() < profile.write_fraction else 0
            entries.append((gap, addr, is_write))
        return trace


def trace_for(profile: WorkloadProfile, accesses: Optional[int] = None, seed: int = 42) -> Trace:
    """Convenience wrapper: render one profile into a trace."""
    return MixtureWorkload(profile, seed=seed).generate(accesses)
