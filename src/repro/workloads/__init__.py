"""Workload/trace generation.

Because the paper's Graphite + Splash2/SPEC06/DBMS stack cannot run here,
each benchmark is modelled as a calibrated synthetic trace (DESIGN.md
section 1.3 substitution 2): a mixture of cyclic sequential scans and
(optionally Zipfian) random accesses, parameterized by memory intensity,
footprint, spatial locality, and write fraction -- the properties the
paper's results actually depend on.
"""

from repro.workloads.base import MixtureWorkload, WorkloadProfile
from repro.workloads.capture import (
    TraceRecorder,
    record_bfs,
    record_binary_search,
    record_matmul,
    record_pointer_chase,
)
from repro.workloads.dbms import DBMS_PROFILES, tpcc_trace, ycsb_trace
from repro.workloads.spec06 import SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_PROFILES
from repro.workloads.synthetic import (
    locality_mix_trace,
    phase_change_trace,
    sequential_trace,
    uniform_random_trace,
)

__all__ = [
    "DBMS_PROFILES",
    "MixtureWorkload",
    "SPEC06_PROFILES",
    "SPLASH2_PROFILES",
    "TraceRecorder",
    "WorkloadProfile",
    "locality_mix_trace",
    "phase_change_trace",
    "record_bfs",
    "record_binary_search",
    "record_matmul",
    "record_pointer_chase",
    "sequential_trace",
    "tpcc_trace",
    "uniform_random_trace",
    "ycsb_trace",
]
