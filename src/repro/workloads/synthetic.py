"""The synthetic benchmarks of paper section 5.3.

"The synthetic benchmark accesses an array with two patterns, sequential or
random.  For the sequential pattern, the part of the array is scanned
sequentially, leading to good spatial locality.  For the random pattern,
the data is randomly accessed with no spatial locality."

* :func:`locality_mix_trace` -- the Figure 6a sweep: X% of the data is
  scanned sequentially, the rest is accessed randomly.
* :func:`phase_change_trace` -- Figure 6b: which half of the data exhibits
  locality alternates between phases.
* :func:`sequential_trace` / :func:`uniform_random_trace` -- the two pure
  endpoints (Figure 7 uses the 100%-locality case).
"""

from __future__ import annotations

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

DEFAULT_FOOTPRINT = 16_384  # blocks; 2 MB at 128 B -- well past the 512 KB LLC
DEFAULT_ACCESSES = 50_000
DEFAULT_GAP = 4.0


def locality_mix_trace(
    locality: float,
    footprint_blocks: int = DEFAULT_FOOTPRINT,
    accesses: int = DEFAULT_ACCESSES,
    gap_mean: float = DEFAULT_GAP,
    seed: int = 11,
) -> Trace:
    """X% of the data scanned sequentially, the rest random (Figure 6a).

    The first ``locality`` fraction of the address space is the sequential
    region, cyclically scanned; the remainder is accessed uniformly at
    random.  The access stream draws from the two regions in proportion to
    their sizes, so "X% locality" means X% of both data and accesses.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be within [0, 1]")
    rng = DeterministicRng(seed)
    # "X% locality" must mean X% of both data and accesses even on tiny
    # footprints: int() truncation used to round small sequential regions
    # down to zero blocks, silently degenerating e.g. 5%-locality-over-10-
    # blocks to pure random.  Any nonzero locality keeps >= 1 sequential
    # block so the access-proportion draw below stays meaningful.
    seq_blocks = int(footprint_blocks * locality)
    if locality > 0.0 and seq_blocks == 0:
        seq_blocks = 1
    trace = Trace(
        name=f"locality_{int(round(locality * 100))}",
        footprint_blocks=footprint_blocks,
    )
    pointer = 0
    for _ in range(accesses):
        gap = rng.expovariate_int(gap_mean)
        if seq_blocks > 0 and rng.random() < locality:
            addr = pointer
            pointer = (pointer + 1) % seq_blocks
        else:
            if seq_blocks >= footprint_blocks:
                addr = rng.randint(0, footprint_blocks - 1)
            else:
                addr = rng.randint(seq_blocks, footprint_blocks - 1)
        trace.entries.append((gap, addr, 0))
    assert len(trace) == accesses
    return trace


def phase_change_trace(
    num_phases: int = 8,
    footprint_blocks: int = DEFAULT_FOOTPRINT,
    accesses: int = DEFAULT_ACCESSES,
    gap_mean: float = DEFAULT_GAP,
    seed: int = 12,
) -> Trace:
    """Alternating-locality phases (Figure 6b).

    "In the first phase, half of the data are accessed sequentially and the
    other half randomly.  In the second phase, the first (second) half is
    randomly (sequentially) accessed.  The pattern keeps switching."
    """
    if num_phases < 1:
        raise ValueError("need at least one phase")
    rng = DeterministicRng(seed)
    half = footprint_blocks // 2
    # accesses // num_phases alone drops the remainder, silently returning
    # a shorter trace whenever accesses % num_phases != 0; spread the
    # remainder one access at a time over the leading phases instead.
    per_phase, leftover = divmod(accesses, num_phases)
    trace = Trace(name="phase_change", footprint_blocks=footprint_blocks)
    pointer = 0
    for phase in range(num_phases):
        seq_base = 0 if phase % 2 == 0 else half
        rand_base = half if phase % 2 == 0 else 0
        phase_accesses = per_phase + (1 if phase < leftover else 0)
        for _ in range(phase_accesses):
            gap = rng.expovariate_int(gap_mean)
            if rng.random() < 0.5:
                addr = seq_base + pointer
                pointer = (pointer + 1) % half
            else:
                addr = rand_base + rng.randint(0, half - 1)
            trace.entries.append((gap, addr, 0))
    assert len(trace) == accesses
    return trace


def sequential_trace(
    footprint_blocks: int = DEFAULT_FOOTPRINT,
    accesses: int = DEFAULT_ACCESSES,
    gap_mean: float = DEFAULT_GAP,
    seed: int = 13,
) -> Trace:
    """Pure cyclic sequential scan: 100% spatial locality (Figure 7)."""
    rng = DeterministicRng(seed)
    trace = Trace(name="sequential", footprint_blocks=footprint_blocks)
    for i in range(accesses):
        gap = rng.expovariate_int(gap_mean)
        trace.entries.append((gap, i % footprint_blocks, 0))
    assert len(trace) == accesses
    return trace


def uniform_random_trace(
    footprint_blocks: int = DEFAULT_FOOTPRINT,
    accesses: int = DEFAULT_ACCESSES,
    gap_mean: float = DEFAULT_GAP,
    seed: int = 14,
) -> Trace:
    """Pure uniform random access: zero spatial locality."""
    rng = DeterministicRng(seed)
    trace = Trace(name="random", footprint_blocks=footprint_blocks)
    for _ in range(accesses):
        gap = rng.expovariate_int(gap_mean)
        trace.entries.append((gap, rng.randint(0, footprint_blocks - 1), 0))
    assert len(trace) == accesses
    return trace
