"""DBMS workload stand-ins: YCSB and TPC-C (Figure 8c).

The paper runs two OLTP benchmarks on the DBx1000-style DBMS (Yu et al.,
VLDB'14):

* **YCSB** -- key-value operations over one table; record selection is
  Zipfian (theta 0.6 in DBx1000's default), and each operation reads or
  updates a whole ~1 KB row, i.e. a run of consecutive 128 B blocks.  The
  row-sequential pattern gives super blocks a lot to harvest -- the paper
  reports 23.6% gain.
* **TPC-C** -- order-processing transactions touching many small rows
  across several tables (warehouse, district, customer, stock, ...), with
  heavy writes and little sequential structure -- the static scheme *loses*
  and the dynamic scheme gains only ~5%.

Both are generated as transaction streams, not raw mixtures, so the block
structure (row alignment, table interleaving) is faithful.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng
from repro.workloads.base import WorkloadProfile

#: 1 KB rows = 8 x 128 B blocks, aligned (YCSB's default row size).
YCSB_ROW_BLOCKS = 8


def ycsb_trace(
    num_records: int = 4096,
    operations: int = 8_000,
    read_fraction: float = 0.9,
    zipf_theta: float = 0.6,
    gap_mean: float = 60.0,
    row_blocks: int = YCSB_ROW_BLOCKS,
    index_touches: int = 1,
    seed: int = 21,
) -> Trace:
    """YCSB-style key-value operations: index lookup + whole-row scan.

    Each operation walks ``index_touches`` B-tree index blocks (the upper
    levels are hot and cache; the leaf level is effectively random -- no
    pair locality, which is what hurts the *static* scheme here) and then
    streams the Zipf-selected ~1 KB row's consecutive blocks (the locality
    PrORAM harvests).
    """
    rng = DeterministicRng(seed)
    data_blocks = num_records * row_blocks
    index_blocks = max(2, num_records * 2)
    footprint = data_blocks + index_blocks
    trace = Trace(name="YCSB", footprint_blocks=footprint)
    for _ in range(operations):
        record = rng.zipf(num_records, zipf_theta)
        is_write = 0 if rng.random() < read_fraction else 1
        # Index walk: leaf-level blocks are scattered across the index.
        for _level in range(index_touches):
            index_block = data_blocks + rng.randint(0, index_blocks - 1)
            trace.entries.append((rng.expovariate_int(gap_mean), index_block, 0))
        # Row scan: the first touch pays the lookup, the rest stream.
        base = record * row_blocks
        trace.entries.append((rng.expovariate_int(gap_mean * 3), base, is_write))
        for offset in range(1, row_blocks):
            trace.entries.append((rng.expovariate_int(gap_mean), base + offset, is_write))
    return trace


#: TPC-C table shapes (blocks per row, rows), loosely after DBx1000 scale 1.
#: Row sizes are deliberately odd (real heap files do not align rows to
#: power-of-two block groups), so the static scheme's aligned pairs straddle
#: row boundaries and prefetch mostly-unrelated data -- the reason the paper
#: reports static super blocks *losing* on TPC-C.
_TPCC_TABLES = {
    "warehouse": (3, 64),
    "district": (3, 640),
    "customer": (3, 6_144),
    "stock": (3, 6_400),
    "item": (1, 2_048),
    "order": (1, 4_096),
    "orderline": (1, 8_192),
}


def tpcc_trace(
    transactions: int = 2_500,
    gap_mean: float = 300.0,
    seed: int = 22,
) -> Trace:
    """TPC-C-style transactions: many small, scattered row touches.

    A NewOrder-like transaction reads warehouse/district/customer rows,
    then touches ~10 random items and stock rows and appends order lines; a
    Payment-like transaction updates warehouse/district/customer.  Rows are
    small (1-6 blocks) and spread across tables, so consecutive blocks
    rarely belong together -- the anti-YCSB.
    """
    rng = DeterministicRng(seed)
    # Lay the tables out consecutively, rows aligned to their block counts.
    base: Dict[str, int] = {}
    cursor = 0
    for table, (blocks, rows) in _TPCC_TABLES.items():
        base[table] = cursor
        cursor += blocks * rows
    footprint = cursor
    trace = Trace(name="TPCC", footprint_blocks=footprint)

    def touch(table: str, row: int, write: bool, first_blocks: int = 0) -> None:
        blocks, rows = _TPCC_TABLES[table]
        start = base[table] + (row % rows) * blocks
        count = first_blocks if first_blocks else blocks
        for offset in range(min(count, blocks)):
            trace.entries.append(
                (rng.expovariate_int(gap_mean), start + offset, 1 if write else 0)
            )

    for _ in range(transactions):
        if rng.random() < 0.5:
            # NewOrder: read the hierarchy, touch items/stock, insert lines.
            touch("warehouse", rng.randint(0, 63), write=False)
            touch("district", rng.randint(0, 639), write=True)
            touch("customer", rng.zipf(6_144, 0.4), write=False)
            for _item in range(10):
                touch("item", rng.randint(0, 2_047), write=False)
                touch("stock", rng.randint(0, 6_399), write=True)
                touch("orderline", rng.randint(0, 8_191), write=True)
            touch("order", rng.randint(0, 4_095), write=True)
        else:
            # Payment: update the hierarchy, read the customer.
            touch("warehouse", rng.randint(0, 63), write=True)
            touch("district", rng.randint(0, 639), write=True)
            touch("customer", rng.zipf(6_144, 0.4), write=True)
    return trace


#: Profile-style descriptors so the harness can treat DBMS uniformly.
DBMS_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="YCSB",
        suite="dbms",
        footprint_blocks=4096 * YCSB_ROW_BLOCKS + 8192,
        gap_mean=6.0,
        seq_fraction=0.85,
        run_len_mean=float(YCSB_ROW_BLOCKS),
        write_fraction=0.1,
        zipf_theta=0.6,
        memory_intensive=True,
    ),
    WorkloadProfile(
        name="TPCC",
        suite="dbms",
        footprint_blocks=54_080,
        gap_mean=8.0,
        seq_fraction=0.25,
        run_len_mean=2.0,
        write_fraction=0.55,
        zipf_theta=0.4,
        memory_intensive=False,
    ),
]


def dbms_trace(name: str, accesses: int = 0, seed: int = 23) -> Trace:
    """Generate the named DBMS trace ('YCSB' or 'TPCC').

    ``accesses`` approximately bounds the trace length (0 = default size).
    """
    if name == "YCSB":
        operations = max(1, accesses // YCSB_ROW_BLOCKS) if accesses else 8_000
        return ycsb_trace(operations=operations, seed=seed)
    if name == "TPCC":
        # A transaction averages ~25 block touches.
        transactions = max(1, accesses // 25) if accesses else 2_500
        return tpcc_trace(transactions=transactions, seed=seed)
    raise ValueError(f"unknown DBMS workload '{name}'")
