"""Splash2 benchmark stand-ins (Figure 8a's fourteen workloads).

Profiles are calibrated from the paper's own characterization:

* Figure 8a orders the benchmarks by ORAM-over-DRAM overhead and paints
  water_nsquared ... fmm as computation intensive (< 2x overhead) and
  cholesky ... ocean_non_contiguous as memory intensive;
* the static super block scheme *loses* on volrend and radix (bad spatial
  locality) and wins big on ocean_contiguous (42% gain for dyn);
* compute-bound water_* "do not access ORAM frequently" (excluded from the
  Figure 9 miss-rate plot).

The knobs: ``gap_mean``/``footprint`` set memory intensity against the
512 KB (4096-line) LLC; ``seq_fraction``/``run_len_mean`` set how much a
pair-granularity prefetcher can harvest.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadProfile


def _p(
    name: str,
    footprint: int,
    gap: float,
    seq: float,
    run: float,
    mem: bool,
    write: float = 0.25,
    theta: float = 0.0,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite="splash2",
        footprint_blocks=footprint,
        gap_mean=gap,
        seq_fraction=seq,
        run_len_mean=run,
        write_fraction=write,
        zipf_theta=theta,
        memory_intensive=mem,
    )


#: Figure 8a order: ascending baseline-ORAM overhead.  Gaps are calibrated
#: so the ORAM-over-DRAM overhead ladder matches the paper's (compute
#: intensive < 2x in water_ns..fmm, memory intensive beyond).
SPLASH2_PROFILES: List[WorkloadProfile] = [
    _p("water_ns", footprint=1024, gap=220.0, seq=0.50, run=6.0, mem=False),
    _p("water_s", footprint=1536, gap=200.0, seq=0.50, run=6.0, mem=False),
    _p("radiosity", footprint=4608, gap=2000.0, seq=0.12, run=3.0, mem=False, theta=0.7),
    _p("lu_c", footprint=4608, gap=1800.0, seq=0.25, run=8.0, mem=False),
    _p("volrend", footprint=12288, gap=1500.0, seq=0.08, run=2.0, mem=False, theta=0.4),
    _p("barnes", footprint=5120, gap=1400.0, seq=0.18, run=3.0, mem=False, theta=0.65),
    _p("fmm", footprint=5120, gap=1300.0, seq=0.20, run=3.0, mem=False, theta=0.6),
    _p("cholesky", footprint=10240, gap=850.0, seq=0.50, run=6.0, mem=True),
    _p("lu_nc", footprint=10240, gap=620.0, seq=0.55, run=4.0, mem=True),
    _p("raytrace", footprint=12288, gap=480.0, seq=0.50, run=5.0, mem=True, theta=0.3),
    _p("radix", footprint=16384, gap=400.0, seq=0.15, run=2.0, mem=True),
    _p("fft", footprint=12288, gap=220.0, seq=0.75, run=10.0, mem=True),
    _p("ocean_c", footprint=12288, gap=170.0, seq=0.85, run=16.0, mem=True),
    _p("ocean_nc", footprint=12288, gap=140.0, seq=0.70, run=8.0, mem=True),
]

SPLASH2_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in SPLASH2_PROFILES}

#: The benchmarks Figure 9 plots (water_* excluded: too compute bound).
SPLASH2_MISS_RATE_SET = [p.name for p in SPLASH2_PROFILES if not p.name.startswith("water")]
