"""Capture memory traces from real (Python) programs.

The paper's traces come from instrumented benchmark binaries.  This module
provides the equivalent for the reproduction: an instrumented heap whose
arrays record every element access as a block-granularity trace entry, so
*actual algorithms* -- matrix multiply, binary search, list traversal --
can be run through the secure-processor simulator and PrORAM.

Example::

    recorder = TraceRecorder("matmul")
    a = recorder.array(n * n)          # element-addressed, 8 B elements
    b = recorder.array(n * n)
    c = recorder.array(n * n)
    ... ordinary index arithmetic on a/b/c ...
    trace = recorder.trace()           # feed to SecureSystem / run_schemes

Arrays behave like real storage (reads return what was written), so the
captured program is functionally checked while its access pattern is
recorded.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim.trace import Trace

DEFAULT_BLOCK_BYTES = 128


class InstrumentedArray:
    """A fixed-size array whose element accesses are recorded.

    Supports ``a[i]`` / ``a[i] = v`` and ``len``; slices are intentionally
    unsupported (each element access must be visible to the recorder).
    """

    def __init__(self, recorder: "TraceRecorder", base_block: int, length: int,
                 element_bytes: int, name: str):
        self._recorder = recorder
        self._base_block = base_block
        self._element_bytes = element_bytes
        self._values: List[Any] = [0] * length
        self.name = name

    def __len__(self) -> int:
        return len(self._values)

    def _block_of(self, index: int) -> int:
        if not 0 <= index < len(self._values):
            raise IndexError(f"{self.name}[{index}] out of range")
        return self._base_block + (index * self._element_bytes) // self._recorder.block_bytes

    def __getitem__(self, index: int) -> Any:
        self._recorder._record(self._block_of(index), is_write=False)
        return self._values[index]

    def __setitem__(self, index: int, value: Any) -> None:
        self._recorder._record(self._block_of(index), is_write=True)
        self._values[index] = value

    @property
    def blocks(self) -> int:
        """Number of cacheline blocks this array spans."""
        total_bytes = len(self._values) * self._element_bytes
        return (total_bytes + self._recorder.block_bytes - 1) // self._recorder.block_bytes


class TraceRecorder:
    """An instrumented heap: allocates arrays and records their accesses.

    Args:
        name: trace name.
        block_bytes: cacheline size (must match the simulated system's).
        gap_cycles: compute cycles charged between consecutive memory
            touches (the simple surrogate for the instructions in between;
            use :meth:`compute` for explicit extra work).
    """

    def __init__(self, name: str, block_bytes: int = DEFAULT_BLOCK_BYTES, gap_cycles: int = 4):
        self.name = name
        self.block_bytes = block_bytes
        self.gap_cycles = gap_cycles
        self._entries: List[tuple] = []
        self._next_block = 0
        self._pending_gap = 0
        self._arrays: List[InstrumentedArray] = []

    # ------------------------------------------------------------ allocation
    def array(self, length: int, element_bytes: int = 8, name: Optional[str] = None) -> InstrumentedArray:
        """Allocate a block-aligned array of ``length`` elements."""
        if length < 1:
            raise ValueError("arrays need at least one element")
        if element_bytes < 1 or element_bytes > self.block_bytes:
            raise ValueError("element size must be within one block")
        label = name or f"array{len(self._arrays)}"
        array = InstrumentedArray(self, self._next_block, length, element_bytes, label)
        self._next_block += array.blocks
        self._arrays.append(array)
        return array

    # ------------------------------------------------------------- recording
    def _record(self, block: int, is_write: bool) -> None:
        gap = self.gap_cycles + self._pending_gap
        self._pending_gap = 0
        self._entries.append((gap, block, 1 if is_write else 0))

    def compute(self, cycles: int) -> None:
        """Charge explicit compute work before the next memory touch."""
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        self._pending_gap += cycles

    # ------------------------------------------------------------------ out
    @property
    def footprint_blocks(self) -> int:
        return max(1, self._next_block)

    def trace(self) -> Trace:
        """The captured trace (a snapshot; recording may continue)."""
        out = Trace(name=self.name, footprint_blocks=self.footprint_blocks)
        out.entries = list(self._entries)
        return out

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------- programs
def record_matmul(n: int = 48, gap_cycles: int = 4) -> Trace:
    """Record a naive n x n matrix multiply (row-major, 8 B elements).

    Rows of A and the result stream sequentially -- prime PrORAM food;
    B is walked column-wise (strided).
    """
    recorder = TraceRecorder(f"matmul_{n}", gap_cycles=gap_cycles)
    a = recorder.array(n * n, name="A")
    b = recorder.array(n * n, name="B")
    c = recorder.array(n * n, name="C")
    for i in range(n * n):
        a[i] = i % 7
        b[i] = i % 5
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i * n + k] * b[k * n + j]
                recorder.compute(2)
            c[i * n + j] = acc
    # Functional spot-check: the captured program really multiplied.
    assert c[0] == sum(a._values[k] * b._values[k * n] for k in range(n))
    return recorder.trace()


def record_pointer_chase(nodes: int = 4096, hops: int = 20_000, seed: int = 9,
                         gap_cycles: int = 8) -> Trace:
    """Record a random linked-list traversal: zero spatial locality."""
    from repro.utils.rng import DeterministicRng

    rng = DeterministicRng(seed)
    recorder = TraceRecorder(f"chase_{nodes}", gap_cycles=gap_cycles)
    # One node per block so every hop is a distinct line.
    next_field = recorder.array(nodes, element_bytes=recorder.block_bytes, name="nodes")
    order = rng.permutation(nodes)
    for position, node in enumerate(order):
        next_field[node] = order[(position + 1) % nodes]
    current = order[0]
    for _ in range(hops):
        current = next_field[current]
    return recorder.trace()


def record_bfs(nodes: int = 2048, avg_degree: int = 4, seed: int = 11,
               gap_cycles: int = 6) -> Trace:
    """Record a breadth-first search over a random adjacency-list graph.

    The frontier queue and the visited bitmap stream sequentially (PrORAM
    harvestable); the adjacency lists are reached through random node
    offsets (not harvestable) -- BFS is the classic mixed-locality case.
    """
    from repro.utils.rng import DeterministicRng

    rng = DeterministicRng(seed)
    recorder = TraceRecorder(f"bfs_{nodes}", gap_cycles=gap_cycles)
    # Compressed adjacency: offsets[node] -> start index into edges.
    offsets = recorder.array(nodes + 1, name="offsets")
    edge_targets: List[int] = []
    for node in range(nodes):
        offsets._values[node] = len(edge_targets)
        for _ in range(1 + rng.randint(0, 2 * avg_degree - 2)):
            edge_targets.append(rng.randint(0, nodes - 1))
    offsets._values[nodes] = len(edge_targets)
    edges = recorder.array(max(1, len(edge_targets)), name="edges")
    edges._values[: len(edge_targets)] = edge_targets
    visited = recorder.array(nodes, element_bytes=1, name="visited")
    queue = recorder.array(nodes, name="queue")

    head = tail = 0
    queue[tail] = 0
    tail += 1
    visited[0] = 1
    reached = 1
    while head < tail:
        node = queue[head]
        head += 1
        start = offsets[node]
        end = offsets[node + 1]
        for index in range(start, end):
            neighbor = edges[index]
            recorder.compute(2)
            if not visited[neighbor]:
                visited[neighbor] = 1
                reached += 1
                if tail < nodes:
                    queue[tail] = neighbor
                    tail += 1
    assert reached >= 1
    return recorder.trace()


def record_binary_search(elements: int = 1 << 15, lookups: int = 4_000, seed: int = 10,
                         gap_cycles: int = 6) -> Trace:
    """Record repeated binary searches over a sorted array."""
    from repro.utils.rng import DeterministicRng

    rng = DeterministicRng(seed)
    recorder = TraceRecorder(f"bsearch_{elements}", gap_cycles=gap_cycles)
    data = recorder.array(elements, name="sorted")
    for i in range(elements):
        data._values[i] = 2 * i  # bulk init without recording
    found = 0
    for _ in range(lookups):
        needle = rng.randint(0, 2 * elements)
        lo, hi = 0, elements - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            value = data[mid]
            recorder.compute(3)
            if value == needle:
                found += 1
                break
            if value < needle:
                lo = mid + 1
            else:
                hi = mid - 1
    return recorder.trace()
