"""SPEC CPU2006 benchmark stand-ins (Figure 8b's ten workloads).

Calibration anchors from the paper:

* Figure 8b orders h264 ... mcf by ascending baseline-ORAM overhead, with
  omnet and mcf memory intensive;
* the static scheme loses on sjeng, astar, omnet and mcf (poor spatial
  locality -- pointer chasing and graph traversal);
* the overall dynamic-scheme gain is modest (5.5%) because most of the
  suite is compute bound relative to Splash2's kernels.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadProfile


def _p(
    name: str,
    footprint: int,
    gap: float,
    seq: float,
    run: float,
    mem: bool,
    write: float = 0.3,
    theta: float = 0.0,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite="spec06",
        footprint_blocks=footprint,
        gap_mean=gap,
        seq_fraction=seq,
        run_len_mean=run,
        write_fraction=write,
        zipf_theta=theta,
        memory_intensive=mem,
    )


#: Figure 8b order: ascending baseline-ORAM overhead.
SPEC06_PROFILES: List[WorkloadProfile] = [
    _p("h264", footprint=3584, gap=900.0, seq=0.60, run=8.0, mem=False),
    _p("hmmer", footprint=3584, gap=800.0, seq=0.55, run=6.0, mem=False),
    _p("sjeng", footprint=6144, gap=1300.0, seq=0.08, run=2.0, mem=False, theta=0.5),
    _p("perl", footprint=5120, gap=2000.0, seq=0.15, run=3.0, mem=False, theta=0.55),
    _p("astar", footprint=8192, gap=1500.0, seq=0.10, run=2.0, mem=False, theta=0.4),
    _p("gobmk", footprint=6144, gap=1100.0, seq=0.15, run=3.0, mem=False, theta=0.5),
    _p("gcc", footprint=8192, gap=1200.0, seq=0.30, run=4.0, mem=False),
    _p("bzip2", footprint=10240, gap=550.0, seq=0.65, run=8.0, mem=False),
    _p("omnet", footprint=16384, gap=350.0, seq=0.10, run=2.0, mem=True, theta=0.3),
    _p("mcf", footprint=16384, gap=180.0, seq=0.25, run=2.0, mem=True, theta=0.3),
]

SPEC06_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in SPEC06_PROFILES}
