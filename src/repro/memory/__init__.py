"""Memory subsystem: DRAM model, ORAM timing/backend, timing protection."""

from repro.memory.backend import BackendStats, DemandResult, MemoryBackend
from repro.memory.dram import DRAMBackend
from repro.memory.interconnect import (
    ChannelInterconnect,
    FlatInterconnect,
    MemoryInterconnect,
    build_interconnect,
)
from repro.memory.oram_backend import ORAMBackend
from repro.memory.periodic import PeriodicORAMBackend
from repro.memory.timing import ORAMTimingModel

__all__ = [
    "BackendStats",
    "ChannelInterconnect",
    "DRAMBackend",
    "DemandResult",
    "FlatInterconnect",
    "MemoryBackend",
    "MemoryInterconnect",
    "ORAMBackend",
    "ORAMTimingModel",
    "PeriodicORAMBackend",
    "build_interconnect",
]
