"""Timing-channel protection via periodic ORAM accesses (sections 2.5, 5.6).

"In practice, periodic ORAM accesses are needed to protect the timing
channel.  [...] ORAM timing behavior is completely determined by Oint.  If
there is no pending memory request when an ORAM access needs to happen due
to periodicity, a dummy access will be issued."

``Oint`` is the public idle interval between consecutive ORAM accesses: an
access may begin ``Oint`` cycles after the previous one finished, and one
*must* begin then (real if a request is pending, dummy otherwise).  The
paper evaluates ``Oint = 100`` cycles, which keeps ORAM bandwidth almost
maximized (Figure 15).

Functional note: idle-period dummies are performed functionally only while
the stash holds enough blocks for them to matter (they are background
evictions); beyond that they are identical no-op path reads/writes, so they
are charged and counted but not executed block-by-block.  This keeps
compute-bound workloads simulable without changing any observable metric.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DRAMConfig, ORAMConfig, TimingProtectionConfig
from repro.memory.backend import DemandResult
from repro.memory.oram_backend import ORAMBackend
from repro.oram.super_block import SuperBlockScheme
from repro.utils.rng import DeterministicRng


class PeriodicORAMBackend(ORAMBackend):
    """ORAM backend whose access schedule is fixed by ``Oint``."""

    #: functional dummies per idle gap are capped; the rest are counted only
    MAX_FUNCTIONAL_DUMMIES_PER_GAP = 16

    def __init__(
        self,
        oram_config: ORAMConfig,
        dram_config: DRAMConfig,
        scheme: SuperBlockScheme,
        rng: DeterministicRng,
        timing_protection: TimingProtectionConfig,
        observer=None,
        fault_injector=None,
        resilience=None,
    ):
        super().__init__(
            oram_config,
            dram_config,
            scheme,
            rng,
            observer=observer,
            fault_injector=fault_injector,
            resilience=resilience,
        )
        if timing_protection.interval_cycles < 0:
            raise ValueError("Oint must be non-negative")
        self.interval = timing_protection.interval_cycles
        #: cycle at which the next scheduled access slot begins
        self._next_slot = 0

    def _advance_to(self, now: int) -> None:
        """Fire the dummy accesses for every slot that elapsed unused."""
        path = self.timing.path_cycles
        functional_budget = self.MAX_FUNCTIONAL_DUMMIES_PER_GAP
        while self._next_slot + path <= now:
            # A slot came and went with no pending request: dummy access.
            if functional_budget > 0 and len(self.oram.stash) > 0:
                self.oram.dummy_access(kind="periodic")
                functional_budget -= 1
            else:
                # Identical no-op path read/write; charge and count only.
                self.oram.dummy_accesses += 1
            self.stats.dummy_accesses += 1
            self._next_slot += path + self.interval

    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        self._advance_to(now)
        # The request starts at the first slot at or after its arrival.
        slot = max(self._next_slot, now)
        result = super().demand_access(addr, slot, is_write)
        # super() serialized on busy_until >= slot already; the next slot
        # opens Oint after this access train finishes.
        self._next_slot = result.completion_cycle + self.interval
        return result

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        self._advance_to(now)
        slot = max(self._next_slot, now)
        result = super().prefetch_access(addr, slot)
        if result is not None:
            self._next_slot = result.completion_cycle + self.interval
        return result

    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        """Dirty write-backs also ride the periodic schedule."""
        self.scheme.on_llc_evict(addr)
        if not dirty:
            return
        self._check_addr(addr)
        self._advance_to(now)
        self.stats.write_accesses += 1
        slot = max(self._next_slot, now)
        completion, _ = self._perform_access(addr, slot, run_scheme=False)
        self._next_slot = completion + self.interval

    def finalize(self, now: int) -> None:
        """Account the dummy slots up to the end of the run."""
        self._advance_to(now)
