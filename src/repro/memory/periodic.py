"""Timing-channel protection via periodic ORAM accesses (sections 2.5, 5.6).

"In practice, periodic ORAM accesses are needed to protect the timing
channel.  [...] ORAM timing behavior is completely determined by Oint.  If
there is no pending memory request when an ORAM access needs to happen due
to periodicity, a dummy access will be issued."

``Oint`` is the public idle interval between consecutive ORAM accesses: an
access may begin ``Oint`` cycles after the previous one finished, and one
*must* begin then (real if a request is pending, dummy otherwise).  The
paper evaluates ``Oint = 100`` cycles, which keeps ORAM bandwidth almost
maximized (Figure 15).

Functional note: idle-period dummies are performed functionally only while
the stash holds enough blocks for them to matter (they are background
evictions); beyond that they are identical no-op path reads/writes, so they
are charged and counted but not executed block-by-block.  This keeps
compute-bound workloads simulable without changing any observable metric.

Scheduling invariant: every access -- real or dummy -- issues exactly on
the periodic grid, i.e. at a cycle congruent to 0 modulo
``path_cycles + Oint``.  An earlier version reset the schedule from each
access's *completion* cycle (``_next_slot = completion + Oint``), which
silently drifted the public cadence off the grid whenever an access train
ran long (PosMap misses, background evictions, fault retries) or a request
arrived mid-slot after a backlogged burst -- precisely the data-dependent
jitter the timing channel is supposed to hide.  The schedule now only ever
advances in whole periods, and a request arriving after a slot opened
waits for the next grid point (the open slot fires as the dummy it would
have been in hardware).
"""

from __future__ import annotations

from typing import Optional

from repro.config import DRAMConfig, ORAMConfig, TimingProtectionConfig
from repro.memory.backend import DemandResult
from repro.memory.oram_backend import ORAMBackend
from repro.oram.super_block import SuperBlockScheme
from repro.utils.rng import DeterministicRng


class PeriodicORAMBackend(ORAMBackend):
    """ORAM backend whose access schedule is fixed by ``Oint``."""

    #: functional dummies per idle gap are capped; the rest are counted only
    MAX_FUNCTIONAL_DUMMIES_PER_GAP = 16

    def __init__(
        self,
        oram_config: ORAMConfig,
        dram_config: DRAMConfig,
        scheme: SuperBlockScheme,
        rng: DeterministicRng,
        timing_protection: TimingProtectionConfig,
        observer=None,
        fault_injector=None,
        resilience=None,
    ):
        super().__init__(
            oram_config,
            dram_config,
            scheme,
            rng,
            observer=observer,
            fault_injector=fault_injector,
            resilience=resilience,
        )
        if timing_protection.interval_cycles < 0:
            raise ValueError("Oint must be non-negative")
        self.interval = timing_protection.interval_cycles
        #: the public schedule period: one path access plus the idle gap.
        #: Derived from the interconnect's *public* per-path cost -- a
        #: config constant in both models -- so the grid itself leaks
        #: nothing; streamed completions that run long simply skip to a
        #: later grid point (whole-period quantization hides the
        #: sub-period, leaf-dependent variation of the channel model).
        self._period = self.interconnect.path_cycles + self.interval
        #: cycle at which the next scheduled access slot begins; only ever
        #: advanced by whole periods, so every slot is on the grid
        self._next_slot = 0

    def _fire_slot_dummy(self, functional: bool) -> None:
        """Consume the slot at ``_next_slot`` with a dummy access."""
        if functional:
            self.oram.dummy_access(kind="periodic")
        else:
            # Identical no-op path read/write; charge and count only.
            self.oram.dummy_accesses += 1
        self.stats.dummy_accesses += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.record_event(
                "periodic_dummy",
                slot=self._next_slot,
                shard=self.shard_index,
                functional=functional,
            )
        self._next_slot += self._period

    def _advance_to(self, now: int) -> None:
        """Fire the dummy accesses for every slot that elapsed unused."""
        path = self.interconnect.path_cycles
        functional_budget = self.MAX_FUNCTIONAL_DUMMIES_PER_GAP
        while self._next_slot + path <= now:
            # A slot came and went with no pending request: dummy access.
            functional = functional_budget > 0 and len(self.oram.stash) > 0
            if functional:
                functional_budget -= 1
            self._fire_slot_dummy(functional)

    def _claim_slot(self, now: int) -> int:
        """Return the grid slot this request issues at (firing missed dummies).

        A request arriving strictly after a slot opened cannot use it: in
        hardware that slot's access already began as a dummy.  Fire it and
        wait for the next grid point.
        """
        self._advance_to(now)
        if now > self._next_slot:
            self._fire_slot_dummy(len(self.oram.stash) > 0)
        return self._next_slot

    def _schedule_after(self, slot: int, completion: int) -> None:
        """Advance the schedule past an access train, staying on the grid.

        The next slot is the first grid point at least ``Oint`` after the
        train completes.  ``completion >= slot + path_cycles`` always, so
        at least one whole period elapses.
        """
        period = self._period
        gaps = -(-(completion + self.interval - slot) // period)
        self._next_slot = slot + gaps * period

    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        slot = self._claim_slot(now)
        result = super().demand_access(addr, slot, is_write)
        # super() serialized on busy_until <= slot; the issue time is the
        # grid slot exactly, and the schedule resumes on the grid.
        self._schedule_after(slot, result.completion_cycle)
        return result

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        slot = self._claim_slot(now)
        result = super().prefetch_access(addr, slot)
        if result is not None:
            self._schedule_after(slot, result.completion_cycle)
        return result

    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        """Dirty write-backs also ride the periodic schedule."""
        self.scheme.on_llc_evict(addr)
        if not dirty:
            return
        self._check_addr(addr)
        self.stats.write_accesses += 1
        slot = self._claim_slot(now)
        completion, _ = self._perform_access(
            addr, slot, run_scheme=False, kind="writeback"
        )
        self._schedule_after(slot, completion)

    def finalize(self, now: int) -> None:
        """Account the dummy slots up to the end of the run, then let the
        base backend drain the treetop write-back queue."""
        self._advance_to(now)
        super().finalize(now)
