"""The memory-backend interface the secure-processor simulator drives.

A backend owns all timing below the LLC.  The in-order core calls
:meth:`MemoryBackend.demand_access` on every LLC miss and stalls until the
returned completion cycle; the cache hierarchy reports LLC victims through
:meth:`MemoryBackend.evict_line`; the optional traditional prefetcher asks
for :meth:`MemoryBackend.prefetch_access`.

Implementations: :class:`repro.memory.dram.DRAMBackend` (insecure
baseline), :class:`repro.memory.oram_backend.ORAMBackend` (Path ORAM with a
pluggable super block scheme), and
:class:`repro.memory.periodic.PeriodicORAMBackend` (timing-channel
protected wrapper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(slots=True)
class DemandResult:
    """Outcome of a demand miss.

    Attributes:
        completion_cycle: when the demand block is available to the core.
        filled: (addr, prefetched) lines to install in the LLC -- the
            demand line plus any super block members fetched with it.
    """

    completion_cycle: int
    filled: List[Tuple[int, bool]] = field(default_factory=list)


@dataclass
class BackendStats:
    """Counters common to all backends (energy = total accesses, section 5.1)."""

    demand_requests: int = 0
    prefetch_requests: int = 0
    #: dirty-writeback accesses (full ORAM write accesses / DRAM transfers)
    write_accesses: int = 0
    #: path accesses for ORAM backends / line transfers for DRAM
    memory_accesses: int = 0
    dummy_accesses: int = 0
    posmap_accesses: int = 0
    busy_cycles: int = 0
    # --- fault-injection counters (zero unless a FaultInjector is wired) ---
    #: transient storage failures observed (each one was retried)
    transient_faults: int = 0
    #: retries issued to heal transient failures
    fault_retries: int = 0
    #: extra latency charged for delayed responses + retry backoff
    fault_delay_cycles: int = 0
    #: background evictions forced by the degradation path (stash pressure)
    forced_evictions: int = 0

    @property
    def total_accesses(self) -> int:
        """The paper's energy proxy: every access the memory performs."""
        return self.memory_accesses + self.dummy_accesses


class MemoryBackend(ABC):
    """Timing + functional model of everything behind the LLC."""

    def __init__(self) -> None:
        self.stats = BackendStats()
        self.busy_until = 0

    @abstractmethod
    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        """Serve an LLC demand miss issued at cycle ``now``."""

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        """Serve a prefetch request; None when the backend declines.

        Default: backends do not support traditional prefetching.
        """
        return None

    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        """An LLC victim left the cache hierarchy (default: ignored)."""

    def on_llc_hit(self, addr: int) -> None:
        """The processor hit ``addr`` in the LLC (prefetch-bit bookkeeping)."""

    def finalize(self, now: int) -> None:
        """Simulation ended at cycle ``now`` (flush window statistics)."""
