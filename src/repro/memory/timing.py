"""ORAM latency model derived from the nominal geometry (sections 2.6, 5.1).

The paper's DRAM is "simply modeled by a flat latency", with 16 GB/s of pin
bandwidth on a 1 GHz chip (16 bytes/cycle), and "a single ORAM access
saturates the available DRAM bandwidth", so ORAM accesses are serialized
and their latency is dominated by moving the path:

    path bytes = (L + 1) * Z * block_bytes * 2      (read + write)
    path cycles = path bytes / bytes_per_cycle + DRAM latency

With Table 1's parameters (8 GB ORAM -> 26-level nominal tree, Z=3, 128 B
blocks, 16 B/cycle) one path access costs ~1348 cycles; a request that
misses the PosMap block cache pays one extra path access per uncached
recursion level, which lands the *average* access latency in the
neighbourhood of the paper's quoted 2364 cycles (the exact figure depends
on PosMap locality; bench_table1 prints both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import DRAMConfig, ORAMConfig


def transfer_cycles(dram: DRAMConfig, nbytes: int) -> int:
    """Cycles to move ``nbytes`` over one channel's pins (at least one).

    Every timing consumer (the flat path model, the insecure DRAM
    backend, the channel interconnect) derives its bus occupancy from
    this one ceil so the arithmetic cannot drift between models.
    """
    return max(1, int(math.ceil(nbytes / dram.bytes_per_cycle)))


@dataclass(frozen=True)
class ORAMTimingModel:
    """Charges cycle costs for path accesses of the nominal ORAM.

    ``path_cycles`` is the full-path cost; :meth:`path_cycles_for` prices
    a *truncated* path -- the treetop cache pins the top ``k`` levels
    on-chip, so every access streams only ``nominal_levels + 1 - k``
    buckets over the pins (DESIGN.md section 13).
    """

    path_cycles: int
    bytes_per_path: int
    #: bytes one bucket moves per path access (Z blocks, read + write-back)
    bucket_bytes: int = 0
    latency_cycles: int = 0
    bytes_per_cycle: float = 0.0

    @classmethod
    def from_config(cls, oram: ORAMConfig, dram: DRAMConfig) -> "ORAMTimingModel":
        levels = oram.nominal_levels
        bucket_bytes = oram.bucket_size * oram.block_bytes * 2
        bytes_per_path = (levels + 1) * bucket_bytes
        return cls(
            path_cycles=transfer_cycles(dram, bytes_per_path) + dram.latency_cycles,
            bytes_per_path=bytes_per_path,
            bucket_bytes=bucket_bytes,
            latency_cycles=dram.latency_cycles,
            bytes_per_cycle=dram.bytes_per_cycle,
        )

    def path_cycles_for(self, levels: int) -> int:
        """Public cost of a path access streaming ``levels`` bucket-levels.

        ``path_cycles_for(nominal_levels + 1)`` reproduces ``path_cycles``
        exactly (same ceil, same latency), so a zero-level treetop is
        bit-identical to the untruncated model.
        """
        if levels < 1:
            raise ValueError("a path access must stream at least one level")
        return self.latency_cycles + max(
            1, int(math.ceil(levels * self.bucket_bytes / self.bytes_per_cycle))
        )

    def access_cycles(self, path_accesses: int = 1) -> int:
        """Latency of a request needing ``path_accesses`` serialized paths.

        A request costs one path access for the data (super) block plus one
        per PosMap block fetched by the recursion walk; background
        evictions and periodic dummies cost one each.
        """
        return path_accesses * self.path_cycles


def dram_access_cycles(dram: DRAMConfig, block_bytes: int) -> int:
    """Latency of one DRAM line fill: flat latency + line transfer time."""
    return dram.latency_cycles + transfer_cycles(dram, block_bytes)
