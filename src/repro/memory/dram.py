"""Insecure DRAM baseline (section 5.1).

"The DRAM in Graphite is simply modeled by a flat latency", 16 GB/s of pin
bandwidth, and bank-level parallelism: "the insecure DRAM model can exploit
bank-level parallelism and issue multiple memory requests at the same
time".  We model each access as flat latency at its bank, with the shared
pin bus metering aggregate bandwidth (one line's transfer time per access).

Prefetch requests are accepted at low priority: a prefetch only occupies
the bus slack between demand requests, which is exactly why traditional
prefetching works on DRAM and not on ORAM (section 3.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DRAMConfig
from repro.memory.backend import DemandResult, MemoryBackend
from repro.memory.timing import transfer_cycles


class DRAMBackend(MemoryBackend):
    """Flat-latency, banked DRAM with pin-bandwidth metering."""

    def __init__(self, config: DRAMConfig, block_bytes: int):
        super().__init__()
        self.config = config
        self.block_bytes = block_bytes
        self.transfer_cycles = transfer_cycles(config, block_bytes)
        self._bank_free: List[int] = [0] * config.num_banks
        self._bus_free = 0

    def _bank_for(self, addr: int) -> int:
        return addr % self.config.num_banks

    def _schedule(self, addr: int, now: int) -> int:
        """Common timing for any line transfer; returns completion cycle."""
        bank = self._bank_for(addr)
        start = max(now, self._bank_free[bank])
        # The line crosses the pins after the array access; pin slots are
        # granted in arrival order.
        transfer_start = max(start + self.config.latency_cycles, self._bus_free)
        completion = transfer_start + self.transfer_cycles
        self._bank_free[bank] = start + self.config.latency_cycles
        self._bus_free = completion
        self.busy_until = max(self.busy_until, completion)
        self.stats.memory_accesses += 1
        self.stats.busy_cycles += self.transfer_cycles
        return completion

    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        self.stats.demand_requests += 1
        completion = self._schedule(addr, now)
        return DemandResult(completion_cycle=completion, filled=[(addr, False)])

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        """Prefetches ride the bus slack; declined when the bus is backlogged."""
        if self._bus_free > now + self.config.latency_cycles:
            return None
        self.stats.prefetch_requests += 1
        completion = self._schedule(addr, now)
        return DemandResult(completion_cycle=completion, filled=[(addr, True)])

    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        """Dirty write-backs consume bandwidth but never stall the core.

        The write-back goes through the same bank/bus scheduler as demand
        and prefetch traffic -- it occupies the victim line's bank for an
        array access and the pins for one line transfer.  (It used to bump
        only ``_bus_free``, so bank-occupancy accounting disagreed with
        the demand path's.)
        """
        if dirty:
            self.stats.write_accesses += 1
            self._schedule(addr, now)
