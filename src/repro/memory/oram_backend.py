"""The ORAM memory controller backend.

Glues together the functional Path ORAM, a super block scheme, the
recursion/PosMap-cache model, and the latency model, behind the standard
DRAM-replacement interface of the secure-processor literature:

* an LLC **miss** is an ORAM read access: background evictions drain an
  over-full stash first ("the ORAM controller stops serving real requests
  and issues background evictions when the stash is full", section 2.4),
  then the PosMap hierarchy walk (section 2.3) and the path access run;
  the super block scheme decides which members' copies fill the LLC and
  runs its merge/break logic;
* a **dirty LLC eviction** is an ORAM write access: a full path access that
  occupies the controller but does not stall the core;
* a **clean eviction** just drops the copy.

Timing is strictly serialized -- "a single ORAM access saturates the
available DRAM bandwidth [so] it brings no benefits to serve multiple ORAM
requests in parallel" (section 2.6).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import DRAMConfig, ORAMConfig
from repro.controller.pipeline import AccessPipeline
from repro.faults.injector import TransientReadError
from repro.memory.backend import DemandResult, MemoryBackend
from repro.memory.interconnect import build_interconnect
from repro.memory.timing import ORAMTimingModel
from repro.oram.path_oram import PathORAM
from repro.oram.recursion import PosMapHierarchy
from repro.oram.super_block import SuperBlockScheme
from repro.utils.rng import DeterministicRng


class ORAMBackend(MemoryBackend):
    """Path ORAM behind the LLC, with a pluggable super block scheme.

    Tracing contract: ``recorder`` is ``None`` by default and the access
    pipeline checks exactly that before building a span, so a backend with
    tracing disabled performs the identical operations (and RNG draws) as
    one built before tracing existed -- the golden ``SimResult`` pins this.
    ``shard_index`` labels spans when the backend serves as a channel of a
    :class:`~repro.controller.sharded.ShardedORAMBank`.

    Args:
        oram_config: functional + nominal ORAM parameters (already scaled
            to the workload footprint by the caller).
        dram_config: the physical channel the tree lives on (bandwidth and
            flat latency feed the path-access cost).
        scheme: super block strategy (baseline / static / dynamic).
        rng: deterministic randomness.
        observer: optional adversary observer forwarded to the ORAM.
        fault_injector: optional :class:`repro.faults.FaultInjector`; its
            ``on_memory_access`` hook runs once per ORAM access and may
            raise transient failures or add response delay.  ``None`` (the
            default) keeps the access path bit-identical to the fault-free
            build.
        resilience: :class:`repro.faults.ResilienceConfig` tuning the
            retry backoff and the stash-pressure degradation watermark;
            defaults apply when a ``fault_injector`` is given without one.
    """

    def __init__(
        self,
        oram_config: ORAMConfig,
        dram_config: DRAMConfig,
        scheme: SuperBlockScheme,
        rng: DeterministicRng,
        observer=None,
        fault_injector=None,
        resilience=None,
    ):
        super().__init__()
        self.config = oram_config
        self.scheme = scheme
        self.timing = ORAMTimingModel.from_config(oram_config, dram_config)
        #: pluggable memory interconnect: the flat default reproduces
        #: ``self.timing`` exactly; the channel model streams each path's
        #: buckets across DRAM channels (DESIGN.md section 11)
        self.interconnect = build_interconnect(oram_config, dram_config)
        self.oram = PathORAM(oram_config, rng, observer=observer, populate=False)
        self.posmap_hierarchy = PosMapHierarchy(
            num_hierarchies=oram_config.num_hierarchies,
            entries_per_block=oram_config.posmap_entries_per_block,
            cache_entries=oram_config.posmap_cache_entries,
        )
        self._llc_contains: Callable[[int], bool] = lambda addr: False
        #: optional span sink (:mod:`repro.observability`); ``None`` is the
        #: zero-cost disabled state the pipeline fast-paths on
        self.recorder = None
        #: channel index when owned by a ShardedORAMBank (spans carry it)
        self.shard_index = 0
        #: address interleave stride (num_shards when owned by a bank);
        #: spans report the global address ``local * stride + shard_index``
        self.addr_stride = 1
        scheme.attach(self.oram, self._probe_llc)
        # attach() just re-bound the scheme's on_llc_hit to the tracker;
        # re-export it so the system's hit loop calls the tracker directly.
        self.on_llc_hit = scheme.on_llc_hit
        scheme.initialize()
        self.oram.populate()
        self._last_request_cycle = 0
        # The threshold listener never changes after construction; caching
        # it avoids a per-access virtual call in the pipeline.
        self._policy_listener = scheme.threshold_listener()
        #: the explicit phase pipeline executing every access (PosMap ->
        #: PathRead -> Remap -> Writeback) with per-phase accounting
        self.pipeline = AccessPipeline(self)
        #: optional callback(occupancy) sampled after every demand access
        #: (the stash-occupancy study hooks in here)
        self.stash_sampler: Optional[Callable[[int], None]] = None
        #: health-plane degraded mode: merges throttled, prefetches shed
        self._health_degraded = False
        #: when degraded, prefetch_access sheds requests before they queue
        self.prefetch_throttled = False
        # ----------------------------------------------- fault resilience
        self.injector = fault_injector
        self.resilience = resilience
        self._stash_soft_limit: Optional[int] = None
        if fault_injector is not None or resilience is not None:
            from repro.faults.resilient import ResilienceConfig

            self.resilience = resilience or ResilienceConfig()
            self._stash_soft_limit = max(
                1,
                int(self.oram.stash.capacity * self.resilience.stash_soft_fraction),
            )
            self._backoff_rng = rng.fork(0xBACF)

    # ----------------------------------------------------------------- wiring
    def set_recorder(self, recorder) -> None:
        """Install (or remove, with ``None``) a span recorder.

        Disabled recorders (``enabled`` false, e.g. ``NullRecorder``) are
        normalized to ``None`` so the pipeline keeps its single
        ``is None`` fast-path check.
        """
        if recorder is not None and not getattr(recorder, "enabled", True):
            recorder = None
        self.recorder = recorder

    def set_llc_probe(self, probe: Callable[[int], bool]) -> None:
        """Install the LLC tag-probe callback (the system wires this after
        building the cache hierarchy)."""
        self._llc_contains = probe
        # Flatten the probe chain for the scheme too: it was attached with
        # the _probe_llc indirection only because the hierarchy did not
        # exist yet.
        self.scheme.set_llc_probe(probe)

    def _probe_llc(self, addr: int) -> bool:
        return self._llc_contains(addr)

    # ----------------------------------------------------------- health plane
    def set_degraded(self, degraded: bool) -> None:
        """Enter/leave health-plane degraded mode.

        Degradation trades throughput for stability *before* load is
        shed: super-block merges are suspended (they amplify stash
        pressure) and traditional prefetches are dropped at the door
        (they occupy the controller demand traffic needs).  Idempotent;
        the stash-relief rung below re-asserts the merge throttle so the
        two mechanisms compose instead of fighting.
        """
        self._health_degraded = degraded
        self.prefetch_throttled = degraded
        self.scheme.set_merge_throttled(degraded)

    def dummy_path_access(self, now: int) -> int:
        """One timed dummy path access (health-plane padding).

        A quarantined channel pads every fallback/probe access with one
        of these so real and probe traffic present a single fixed shape
        (two uniformly-drawn paths per request) -- the padding invariant
        of DESIGN.md section 10.  Charged like any background eviction:
        a full path access that occupies the channel.  Returns the
        completion cycle.
        """
        start = max(now, self.busy_until)
        self.oram.dummy_access(kind="padding")
        self.stats.dummy_accesses += 1
        self.stats.memory_accesses += 1
        # Padding must look identical to every other dummy: charged at
        # the public per-path cost, never streamed through the leaf-aware
        # scheduler (its leaf is secret by construction).
        path_cycles = self.interconnect.path_cycles
        self.interconnect.note_untracked(1)
        completion = start + path_cycles
        self.busy_until = completion
        self.stats.busy_cycles += path_cycles
        return completion

    # ------------------------------------------------------- fault resilience
    def _fault_delay(self) -> int:
        """Model the untrusted channel misbehaving on this access.

        Transient read failures are retried in place -- the timing backend
        carries no payloads, so a retry is purely a latency event: each
        attempt charges exponential backoff (capped exponent, deterministic
        jitter) until the storage responds.  Delayed responses simply add
        their cycles.  Returns the total extra latency.
        """
        injector = self.injector
        stats = self.stats
        resilience = self.resilience
        base = resilience.backoff_base_cycles
        delay = 0
        attempt = 0
        while True:
            try:
                delay += injector.on_memory_access()
                break
            except TransientReadError:
                stats.transient_faults += 1
                stats.fault_retries += 1
                shift = min(attempt, resilience.max_retries)
                delay += (base << shift) + self._backoff_rng.randbelow(max(1, base))
                attempt += 1
        stats.fault_delay_cycles += delay
        return delay

    def _relieve_stash(self) -> int:
        """Degradation rung: merge throttling + forced background evictions.

        Called after the regular ``drain_stash`` pass.  While occupancy
        sits above the soft watermark, super-block merges are suspended
        (they amplify stash pressure) and up to ``max_forced_evictions``
        extra background evictions run; both are counted, and the forced
        evictions are charged as ordinary path accesses by the caller.
        """
        oram = self.oram
        limit = self._stash_soft_limit
        throttled = len(oram.stash) > limit
        self.scheme.set_merge_throttled(throttled or self._health_degraded)
        if not throttled:
            return 0
        forced = 0
        while len(oram.stash) > limit and forced < self.resilience.max_forced_evictions:
            oram.dummy_access(kind="forced")
            forced += 1
        self.stats.forced_evictions += forced
        if len(oram.stash) <= limit:
            self.scheme.set_merge_throttled(self._health_degraded)
        return forced

    # -------------------------------------------------------------- internals
    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.oram.position_map.num_blocks:
            raise ValueError(
                f"address {addr} outside the ORAM's "
                f"{self.oram.position_map.num_blocks} blocks"
            )

    def _perform_access(
        self, addr: int, start: int, run_scheme: bool, kind: str = "demand"
    ) -> tuple:
        """Shared functional + timing core of read/write/prefetch accesses.

        Delegates to the explicit phase pipeline (PosMap -> PathRead ->
        Remap -> Writeback); the scheme hook (Algorithms 1 and 2) runs in
        the remap phase, between the path read and the path write-back,
        while every member of the super block is physically in the stash.
        ``kind`` only labels the span when tracing is enabled.

        Returns (completion_cycle, FetchOutcome-or-None).
        """
        return self.pipeline.execute(addr, start, run_scheme, kind)

    # ----------------------------------------------------------------- access
    def demand_access(self, addr: int, now: int, is_write: bool) -> DemandResult:
        # _check_addr inlined (one call per LLC miss).
        if not 0 <= addr < self.oram.position_map.num_blocks:
            raise ValueError(
                f"address {addr} outside the ORAM's "
                f"{self.oram.position_map.num_blocks} blocks"
            )
        self.stats.demand_requests += 1
        start = max(now, self.busy_until)
        completion, outcome = self._perform_access(addr, start, run_scheme=True)
        if self.stash_sampler is not None:
            self.stash_sampler(len(self.oram.stash))
        return DemandResult(completion, outcome.to_llc)

    def prefetch_access(self, addr: int, now: int) -> Optional[DemandResult]:
        """Traditional prefetching on ORAM (the section 5.2 experiment).

        A prefetch is a full, blocking path access.  The controller enqueues
        one as long as its backlog is under one path access deep -- and any
        demand arriving afterwards waits behind it, which is exactly why
        this loses on memory-bound programs ("ORAM requests line up in the
        ORAM controller and there is no idle time for prefetching",
        section 3.1).
        """
        if self.prefetch_throttled:
            # Health-plane degraded mode: shed prefetches before they
            # occupy the controller (demand traffic keeps its slot).
            return None
        if self.busy_until > now + self.interconnect.path_cycles:
            return None
        if not 0 <= addr < self.oram.position_map.num_blocks:
            return None
        self.stats.prefetch_requests += 1
        start = max(now, self.busy_until)
        completion, outcome = self._perform_access(
            addr, start, run_scheme=True, kind="prefetch"
        )
        # Every line a prefetch brings in is a prefetched line, including
        # the nominal "demand" member.
        for member_addr, _ in outcome.to_llc:
            self.scheme.tracker.mark_prefetched(member_addr)
        filled = [(member_addr, True) for member_addr, _ in outcome.to_llc]
        return DemandResult(completion, filled)

    # ----------------------------------------------------------- cache events
    def evict_line(self, addr: int, dirty: bool, now: int) -> None:
        """An LLC victim left the cache.

        Clean copies are dropped for free; dirty lines are written back
        with a full ORAM write access that occupies the controller (queued
        behind whatever it is doing) without stalling the core.
        """
        self.scheme.on_llc_evict(addr)
        if not dirty:
            return
        self._check_addr(addr)
        self.stats.write_accesses += 1
        start = max(now, self.busy_until)
        self._perform_access(addr, start, run_scheme=False, kind="writeback")

    def on_llc_hit(self, addr: int) -> None:
        self.scheme.on_llc_hit(addr)

    def finalize(self, now: int) -> None:
        """End-of-run housekeeping: drain the treetop write-back queue.

        Dirty treetop buckets are written back to the DRAM image here
        (and opportunistically whenever the tree flushes between runs).
        The write-back is charged off the critical path -- it drains in
        idle bus cycles the serialized-access model already leaves free
        (DESIGN.md section 13) -- so no cycles are added to ``now``.
        Windowed statistics roll on request boundaries as before.
        """
        flush = getattr(self.oram.tree, "flush_treetop", None)
        if flush is not None:
            flush()

    # ------------------------------------------------------------------ stats
    @property
    def background_eviction_rate(self) -> float:
        total = self.stats.demand_requests + self.stats.dummy_accesses
        return self.stats.dummy_accesses / total if total else 0.0
