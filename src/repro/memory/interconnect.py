"""Pluggable memory interconnect: how a path access turns into cycles.

The paper times ORAM with a flat analytic model -- "a single ORAM access
saturates the available DRAM bandwidth", so every path access costs the
same ``path_cycles`` scalar (section 5.1).  That scalar used to be
multiplied directly inside the access pipeline, which made it impossible
to model intra-path memory parallelism.  This module turns the scalar
into a subsystem:

* :class:`FlatInterconnect` is the paper's model, bit-for-bit: every
  path access completes ``path_cycles`` after it issues, regardless of
  which leaf it touches.  It is the default and keeps the golden
  ``SimResult`` identical.
* :class:`ChannelInterconnect` streams a path's buckets over
  ``num_channels`` independent DRAM channels using the subtree-to-channel
  :class:`~repro.oram.tree.PhysicalLayout`.  Each channel runs a small
  bank/row scheduler (a generalization of ``DRAMBackend._schedule``):
  array accesses serialize per bank, open rows discount repeat hits, and
  each channel's data bus carries that channel's share of the path.  The
  path completes when the slowest channel finishes, so aggregate
  bandwidth -- and therefore path latency -- scales with channel count.

Obliviousness note: the *public* per-path cost (``path_cycles``, used for
the periodic grid, PosMap walk charges, background evictions, and
prefetch backpressure) stays data-independent in both models.  Only the
streamed completion of the channel model varies with the accessed leaf,
and the periodic backend's whole-period slot quantization keeps that
variation off the public timing grid (DESIGN.md section 11).

Degenerate equivalence (property-tested): one channel, more banks than
subtrees, and a closed page policy make :class:`ChannelInterconnect`
reproduce :class:`FlatInterconnect` exactly -- every array access pays
the full latency, bucket bursts coalesce into one bus reservation of
``ceil(path_bytes / bytes_per_cycle)`` cycles, and the single channel
serializes just like the flat model's saturated pin interface.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.config import DRAMConfig, ORAMConfig
from repro.memory.timing import ORAMTimingModel, transfer_cycles
from repro.observability.metrics import MetricsRegistry
from repro.oram.tree import PhysicalLayout


class MemoryInterconnect:
    """Protocol between the ORAM controller and the physical memory.

    Attributes:
        model: the config string selecting this implementation.
        path_cycles: the **public** cost of one path access -- the value
            used wherever timing must stay data-independent (periodic
            slot grid, PosMap recursion charges, background evictions,
            dummy accesses, prefetch backpressure).
        bytes_per_path: total bytes moved by one path access (read +
            write-back of every bucket).
    """

    model = "abstract"

    path_cycles: int
    bytes_per_path: int

    def path_cycles_for(self, levels: int) -> int:
        """Public cost of a path access streaming ``levels`` bucket-levels.

        ``path_cycles == path_cycles_for(offchip_levels)`` where
        ``offchip_levels = nominal_levels + 1 - treetop_levels`` -- the
        treetop cache truncates every path to its off-chip suffix.
        """
        raise NotImplementedError

    def path_completion(self, leaf: int, start: int) -> int:
        """Completion cycle of a path access to ``leaf`` issued at ``start``."""
        raise NotImplementedError

    def note_untracked(self, count: int) -> None:
        """Record ``count`` path accesses charged at the public nominal cost
        without streaming (PosMap walk, evictions, dummies)."""
        raise NotImplementedError

    def summary(self) -> Dict[str, int]:
        """Scalar counters for ``SimResult.extra``."""
        raise NotImplementedError

    def to_registry(
        self, registry: MetricsRegistry, prefix: str = "interconnect"
    ) -> None:
        """Export occupancy gauges / counters under ``{prefix}.*``."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable scheduler state for checkpointing."""
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore scheduler state captured by :meth:`state_dict`."""


class FlatInterconnect(MemoryInterconnect):
    """The paper's flat model: every path access costs ``path_cycles``.

    With a treetop cache (``oram.treetop_levels > 0``) the scalar is the
    *truncated* path cost: the top ``k`` levels are served from on-chip
    SRAM, so only ``nominal_levels + 1 - k`` buckets cross the pins.  At
    ``k = 0`` this is bit-identical to the untruncated model.
    """

    model = "flat"

    def __init__(self, oram: ORAMConfig, dram: DRAMConfig):
        self._timing = timing = ORAMTimingModel.from_config(oram, dram)
        self.treetop_levels = oram.treetop_levels
        self.offchip_levels = oram.nominal_levels + 1 - oram.treetop_levels
        self.path_cycles = timing.path_cycles_for(self.offchip_levels)
        self.bytes_per_path = self.offchip_levels * timing.bucket_bytes
        self.streamed_paths = 0
        self.untracked_paths = 0
        self.treetop_hits = 0
        self.treetop_bytes_saved = 0

    def path_cycles_for(self, levels: int) -> int:
        return self._timing.path_cycles_for(levels)

    def path_completion(self, leaf: int, start: int) -> int:
        self.streamed_paths += 1
        self.treetop_hits += self.treetop_levels
        self.treetop_bytes_saved += self.treetop_levels * self._timing.bucket_bytes
        return start + self.path_cycles

    def note_untracked(self, count: int) -> None:
        self.untracked_paths += count
        self.treetop_hits += self.treetop_levels * count
        self.treetop_bytes_saved += (
            self.treetop_levels * self._timing.bucket_bytes * count
        )

    def summary(self) -> Dict[str, int]:
        return {
            "channels": 1,
            "streamed_paths": self.streamed_paths,
            "untracked_paths": self.untracked_paths,
            "treetop_hits": self.treetop_hits,
            "treetop_bytes_saved": self.treetop_bytes_saved,
        }

    def to_registry(
        self, registry: MetricsRegistry, prefix: str = "interconnect"
    ) -> None:
        registry.gauge(f"{prefix}.path_cycles").set(self.path_cycles)
        registry.counter(f"{prefix}.streamed_paths").set(self.streamed_paths)
        registry.counter(f"{prefix}.untracked_paths").set(self.untracked_paths)
        registry.counter(f"{prefix}.treetop_hits").set(self.treetop_hits)
        registry.counter(f"{prefix}.treetop_bytes_saved").set(
            self.treetop_bytes_saved
        )


class ChannelState:
    """One DRAM channel: per-bank timing, open-row tracking, a data bus.

    The scheduling rules generalize ``DRAMBackend._schedule``:

    * an array access to a bank must wait for that bank's previous access
      (``bank_free``), then occupies the bank for the access latency --
      the full ``latency_cycles`` on a row miss (or under a closed page
      policy), the discounted ``row_hit_cycles`` when the open-page
      policy finds the row already open;
    * the channel's data bus is a single shared resource: each burst
      waits for the bus to drain (``bus_free``) and then occupies it for
      the transfer time.

    Bank state is kept in dicts keyed by bank index, so "more banks than
    subtrees" configurations (the degenerate-equivalence tests) cost
    nothing.
    """

    __slots__ = (
        "latency_cycles",
        "row_hit_cycles",
        "open_page",
        "bank_free",
        "open_row",
        "bus_free",
        "requests",
        "row_hits",
        "row_misses",
        "bytes_moved",
        "busy_cycles",
        "bank_wait_cycles",
    )

    def __init__(self, dram: DRAMConfig):
        self.latency_cycles = dram.latency_cycles
        self.row_hit_cycles = dram.row_hit_cycles
        self.open_page = dram.page_policy == "open"
        self.bank_free: Dict[int, int] = {}
        self.open_row: Dict[int, int] = {}
        self.bus_free = 0
        self.requests = 0
        self.row_hits = 0
        self.row_misses = 0
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.bank_wait_cycles = 0

    def array_access(self, bank: int, row: int, now: int) -> int:
        """Issue one array access; returns when its data is ready."""
        ready = self.bank_free.get(bank, 0)
        start = ready if ready > now else now
        self.bank_wait_cycles += start - now
        if self.open_page and self.open_row.get(bank) == row:
            latency = self.row_hit_cycles
            self.row_hits += 1
        else:
            latency = self.latency_cycles
            self.row_misses += 1
        done = start + latency
        self.bank_free[bank] = done
        if self.open_page:
            self.open_row[bank] = row
        self.requests += 1
        return done

    def reserve_bus(self, ready: int, cycles: int, nbytes: int) -> int:
        """Stream ``nbytes`` over the data bus once data is ``ready``."""
        start = self.bus_free if self.bus_free > ready else ready
        self.bus_free = start + cycles
        self.busy_cycles += cycles
        self.bytes_moved += nbytes
        return self.bus_free

    def state_dict(self) -> Dict[str, object]:
        return {
            "bus_free": self.bus_free,
            "bank_free": {str(k): v for k, v in self.bank_free.items()},
            "open_row": {str(k): v for k, v in self.open_row.items()},
            "requests": self.requests,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "bytes_moved": self.bytes_moved,
            "busy_cycles": self.busy_cycles,
            "bank_wait_cycles": self.bank_wait_cycles,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.bus_free = int(state["bus_free"])
        self.bank_free = {int(k): int(v) for k, v in state["bank_free"].items()}
        self.open_row = {int(k): int(v) for k, v in state["open_row"].items()}
        self.requests = int(state["requests"])
        self.row_hits = int(state["row_hits"])
        self.row_misses = int(state["row_misses"])
        self.bytes_moved = int(state["bytes_moved"])
        self.busy_cycles = int(state["busy_cycles"])
        self.bank_wait_cycles = int(state["bank_wait_cycles"])


class ChannelInterconnect(MemoryInterconnect):
    """Bucket-level path streaming over channel/bank-aware DRAM.

    A path access to functional leaf ``s`` is embedded into the nominal
    tree (``nominal_leaf = s << (nominal_levels - levels)``), its buckets
    mapped through the :class:`PhysicalLayout`, consecutive buckets in
    the same subtree tile coalesced into one array access, and the
    resulting per-channel request streams issued concurrently at
    ``start``.  The access completes when every channel has delivered
    its share (each bucket is both read and written back, so a bucket
    contributes ``2 * Z * block_bytes`` to its channel's burst).

    ``bandwidth_gbps`` is per-channel pin bandwidth: the aggregate bus
    capacity grows with ``num_channels``, which is where the path-latency
    reduction comes from.  ``path_cycles`` (the public cost) is the
    idle-memory completion of a perfectly balanced path:
    ``latency + ceil(path_bytes / (C * bytes_per_cycle))`` -- at one
    channel this equals the flat model's scalar exactly.
    """

    model = "channel"

    def __init__(self, oram: ORAMConfig, dram: DRAMConfig):
        self.dram = dram
        levels = oram.nominal_levels
        self.layout = PhysicalLayout(
            levels=levels,
            num_channels=dram.num_channels,
            num_banks=dram.num_banks,
            subtree_levels=dram.subtree_levels,
        )
        self._leaf_shift = max(0, levels - oram.levels)
        #: bytes moved per bucket: Z blocks, read + write-back
        self.bucket_bytes = oram.bucket_size * oram.block_bytes * 2
        #: pinned nominal levels (the treetop cache); the plan streams only
        #: levels >= treetop_levels, so DRAM tiers fully inside the treetop
        #: never issue a bank request.
        self.treetop_levels = oram.treetop_levels
        self.offchip_levels = levels + 1 - oram.treetop_levels
        self.bytes_per_path = self.offchip_levels * self.bucket_bytes
        self.num_channels = dram.num_channels
        self.path_cycles = self.path_cycles_for(self.offchip_levels)
        self.channels = [ChannelState(dram) for _ in range(dram.num_channels)]
        self.streamed_paths = 0
        self.untracked_paths = 0
        self.streamed_cycles_total = 0
        self.last_completion = 0
        self.treetop_hits = 0
        self.treetop_bytes_saved = 0
        # leaf -> ((channel, ((bank, row), ...), transfer_cycles, bytes), ...)
        self._plans: Dict[
            int, Tuple[Tuple[int, Tuple[Tuple[int, int], ...], int, int], ...]
        ] = {}

    def path_cycles_for(self, levels: int) -> int:
        """Idle-memory completion of a balanced path of ``levels`` buckets."""
        if levels < 1:
            raise ValueError("a path access must stream at least one level")
        dram = self.dram
        return dram.latency_cycles + max(
            1,
            int(
                math.ceil(
                    levels
                    * self.bucket_bytes
                    / (dram.num_channels * dram.bytes_per_cycle)
                )
            ),
        )

    def _plan(
        self, leaf: int
    ) -> Tuple[Tuple[int, Tuple[Tuple[int, int], ...], int, int], ...]:
        """Per-channel request streams for the path to a functional leaf.

        Only the off-chip suffix of the path (nominal levels
        ``>= treetop_levels``) is planned: subtree tiles that lie entirely
        inside the treetop contribute no bank request at all, and a tile
        straddling the boundary is activated once for its off-chip part.
        """
        plan = self._plans.get(leaf)
        if plan is not None:
            return plan
        nominal_leaf = leaf << self._leaf_shift
        accesses: Dict[int, List[Tuple[int, int]]] = {}
        path_bytes: Dict[int, int] = {}
        addresses = self.layout.path_addresses(nominal_leaf)[self.treetop_levels:]
        for address in addresses:
            requests = accesses.setdefault(address.channel, [])
            # Buckets in the same subtree tile share a (bank, row): one
            # row activation streams the whole tile segment.
            if not requests or requests[-1] != (address.bank, address.row):
                requests.append((address.bank, address.row))
            path_bytes[address.channel] = (
                path_bytes.get(address.channel, 0) + self.bucket_bytes
            )
        plan = tuple(
            (
                channel,
                tuple(requests),
                transfer_cycles(self.dram, path_bytes[channel]),
                path_bytes[channel],
            )
            for channel, requests in sorted(accesses.items())
        )
        self._plans[leaf] = plan
        return plan

    def path_completion(self, leaf: int, start: int) -> int:
        completion = start
        for channel_index, requests, cycles, nbytes in self._plan(leaf):
            state = self.channels[channel_index]
            first_ready = 0
            last_ready = 0
            for bank, row in requests:
                done = state.array_access(bank, row, start)
                if not first_ready:
                    first_ready = done
                if done > last_ready:
                    last_ready = done
            # The burst streams behind the first activation's data but
            # cannot finish before the last bank has delivered.
            bus_done = state.reserve_bus(first_ready, cycles, nbytes)
            channel_done = bus_done if bus_done > last_ready else last_ready
            if channel_done > completion:
                completion = channel_done
        self.streamed_paths += 1
        self.streamed_cycles_total += completion - start
        self.treetop_hits += self.treetop_levels
        self.treetop_bytes_saved += self.treetop_levels * self.bucket_bytes
        if completion > self.last_completion:
            self.last_completion = completion
        return completion

    def note_untracked(self, count: int) -> None:
        self.untracked_paths += count
        self.treetop_hits += self.treetop_levels * count
        self.treetop_bytes_saved += self.treetop_levels * self.bucket_bytes * count

    def summary(self) -> Dict[str, int]:
        return {
            "channels": self.num_channels,
            "streamed_paths": self.streamed_paths,
            "untracked_paths": self.untracked_paths,
            "streamed_cycles": self.streamed_cycles_total,
            "row_hits": sum(c.row_hits for c in self.channels),
            "row_misses": sum(c.row_misses for c in self.channels),
            "bank_wait_cycles": sum(c.bank_wait_cycles for c in self.channels),
            "treetop_hits": self.treetop_hits,
            "treetop_bytes_saved": self.treetop_bytes_saved,
        }

    def to_registry(
        self, registry: MetricsRegistry, prefix: str = "interconnect"
    ) -> None:
        registry.gauge(f"{prefix}.path_cycles").set(self.path_cycles)
        registry.gauge(f"{prefix}.num_channels").set(self.num_channels)
        registry.counter(f"{prefix}.streamed_paths").set(self.streamed_paths)
        registry.counter(f"{prefix}.untracked_paths").set(self.untracked_paths)
        registry.counter(f"{prefix}.treetop_hits").set(self.treetop_hits)
        registry.counter(f"{prefix}.treetop_bytes_saved").set(
            self.treetop_bytes_saved
        )
        if self.streamed_paths:
            registry.histogram(f"{prefix}.path_stream_cycles").record(
                self.streamed_cycles_total // self.streamed_paths
            )
        horizon = self.last_completion
        for index, channel in enumerate(self.channels):
            name = f"{prefix}.channel{index}"
            registry.counter(f"{name}.requests").set(channel.requests)
            registry.counter(f"{name}.row_hits").set(channel.row_hits)
            registry.counter(f"{name}.row_misses").set(channel.row_misses)
            registry.counter(f"{name}.bytes_moved").set(channel.bytes_moved)
            registry.counter(f"{name}.busy_cycles").set(channel.busy_cycles)
            registry.counter(f"{name}.bank_wait_cycles").set(
                channel.bank_wait_cycles
            )
            occupancy = channel.busy_cycles / horizon if horizon else 0.0
            registry.gauge(f"{name}.bus_occupancy_pct").set(
                round(100.0 * occupancy, 3)
            )

    def state_dict(self) -> Dict[str, object]:
        return {
            "streamed_paths": self.streamed_paths,
            "untracked_paths": self.untracked_paths,
            "streamed_cycles_total": self.streamed_cycles_total,
            "last_completion": self.last_completion,
            "treetop_hits": self.treetop_hits,
            "treetop_bytes_saved": self.treetop_bytes_saved,
            "channels": [channel.state_dict() for channel in self.channels],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        saved = state.get("channels", [])
        if len(saved) != len(self.channels):
            raise ValueError(
                f"checkpoint has {len(saved)} channels, config has "
                f"{len(self.channels)}"
            )
        self.streamed_paths = int(state["streamed_paths"])
        self.untracked_paths = int(state["untracked_paths"])
        self.streamed_cycles_total = int(state["streamed_cycles_total"])
        self.last_completion = int(state["last_completion"])
        # Pre-treetop checkpoints lack the counters; they restart at zero.
        self.treetop_hits = int(state.get("treetop_hits", 0))
        self.treetop_bytes_saved = int(state.get("treetop_bytes_saved", 0))
        for channel, channel_state in zip(self.channels, saved):
            channel.load_state_dict(channel_state)


def build_interconnect(
    oram: ORAMConfig, dram: DRAMConfig, model: Optional[str] = None
) -> MemoryInterconnect:
    """Instantiate the interconnect selected by ``dram.model``.

    ``model`` overrides the config string (the CLI passes the parsed
    ``--dram-model`` through here).
    """
    selected = model if model is not None else dram.model
    if selected == "flat":
        return FlatInterconnect(oram, dram)
    if selected == "channel":
        return ChannelInterconnect(oram, dram)
    raise ValueError(f"unknown DRAM model {selected!r}")
