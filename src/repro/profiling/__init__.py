"""Throughput profiling for the simulator itself.

Unlike :mod:`repro.sim.results` (which reports *simulated* cycles), this
package measures how fast the simulator runs on the host: wall-clock time
per component phase, per-component event counters, and end-to-end trace
accesses per second.  It exists to keep the hot-path optimizations honest
-- ``benchmarks/bench_throughput.py`` and ``repro run --profile`` both
build on it.
"""

from repro.profiling.profiler import PhaseTimer, Profiler, RunProfile

__all__ = ["PhaseTimer", "Profiler", "RunProfile"]
