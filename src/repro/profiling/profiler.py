"""Phase timers and run profiles for simulator throughput measurement.

The profiler attaches to a built :class:`~repro.sim.system.SecureSystem`
*before* ``run`` is called.  It wraps the backend's entry points (demand
access, write-back eviction, prefetch) and the cache hierarchy's access
method with thin timing shims, so each component's wall-clock share and
call count accumulate while the trace replays.  The simulation itself is
untouched: the shims call straight through, and a system with no profiler
attached pays only one ``None`` check per ``run``.

Note the observer effect: the shims add roughly a microsecond per wrapped
call, so profiled runs report slightly lower accesses/sec than bare runs.
Throughput comparisons (``benchmarks/bench_throughput.py``) therefore time
bare runs and use the profiler only for the phase breakdown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional


class PhaseTimer:
    """Accumulated wall time and call count for one named phase."""

    __slots__ = ("name", "calls", "seconds", "_start")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self._start = 0.0

    def wrap(self, fn: Callable) -> Callable:
        """Return ``fn`` shimmed to accumulate into this timer."""

        def timed(*args, **kwargs):
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.seconds += perf_counter() - start
                self.calls += 1

        return timed

    def __enter__(self) -> "PhaseTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += perf_counter() - self._start
        self.calls += 1


@dataclass
class RunProfile:
    """Host-side performance picture of one completed ``run``.

    Attributes:
        label: the system's scheme label.
        workload: trace name.
        entries: trace references replayed.
        wall_seconds: end-to-end ``run`` wall time.
        accesses_per_sec: ``entries / wall_seconds`` -- the headline
            simulator-throughput metric.
        phases: per-phase ``{"calls": int, "seconds": float}`` breakdowns.
        counters: per-component event counts sampled after the run.
    """

    label: str
    workload: str
    entries: int
    wall_seconds: float
    accesses_per_sec: float
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable dict (used by the benchmark artifacts)."""
        return {
            "label": self.label,
            "workload": self.workload,
            "entries": self.entries,
            "wall_seconds": self.wall_seconds,
            "accesses_per_sec": self.accesses_per_sec,
            "phases": self.phases,
            "counters": self.counters,
        }

    def report(self) -> str:
        """Human-readable multi-line summary."""
        lines: List[str] = [
            f"profile: {self.label} on {self.workload}",
            f"  {self.entries} accesses in {self.wall_seconds:.3f} s "
            f"({self.accesses_per_sec:,.0f} accesses/sec)",
        ]
        if self.phases:
            lines.append("  phases (wall time inside the run):")
            for name, data in sorted(
                self.phases.items(), key=lambda kv: -kv[1]["seconds"]
            ):
                share = (
                    data["seconds"] / self.wall_seconds if self.wall_seconds else 0.0
                )
                lines.append(
                    f"    {name:<18} {data['seconds']:8.3f} s "
                    f"({share:5.1%})  {int(data['calls']):>9} calls"
                )
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<26} {self.counters[name]:>12,}")
        return "\n".join(lines)


class Profiler:
    """Wall-clock profiler for one :class:`SecureSystem` run.

    Usage::

        profiler = Profiler()
        profiler.attach(system)       # before system.run(...)
        result = system.run(trace)
        print(profiler.profile.report())

    ``attach`` installs the phase shims and registers the profiler on the
    system; :meth:`~repro.sim.system.SecureSystem.run` then brackets the
    replay with :meth:`begin_run` / :meth:`end_run` automatically.  One
    profiler profiles one run at a time; re-running the same system simply
    overwrites :attr:`profile`.
    """

    #: (phase name, attribute holder, attribute name) wrapped by attach().
    _PHASES = (
        ("cache_hierarchy", "hierarchy", "access"),
        ("backend_demand", "backend", "demand_access"),
        ("backend_writeback", "backend", "evict_line"),
        ("backend_prefetch", "backend", "prefetch_access"),
    )

    def __init__(self) -> None:
        self.timers: Dict[str, PhaseTimer] = {}
        self.profile: Optional[RunProfile] = None
        self._run_start = 0.0

    # ----------------------------------------------------------------- wiring
    def attach(self, system) -> "Profiler":
        """Install timing shims on ``system`` and register for its runs."""
        for name, holder_name, attr in self._PHASES:
            holder = getattr(system, holder_name)
            fn = getattr(holder, attr, None)
            if fn is None:
                continue
            timer = PhaseTimer(name)
            self.timers[name] = timer
            # Instance-attribute shim: run() re-binds these entry points at
            # call time, so wrapping here covers the whole replay.
            setattr(holder, attr, timer.wrap(fn))
        system.profiler = self
        return self

    # ------------------------------------------------------------- run hooks
    def begin_run(self) -> None:
        self._run_start = perf_counter()

    def end_run(self, system, trace, result) -> None:
        wall = perf_counter() - self._run_start
        entries = len(trace.entries)
        self.profile = RunProfile(
            label=system.label,
            workload=getattr(trace, "name", "trace"),
            entries=entries,
            wall_seconds=wall,
            accesses_per_sec=entries / wall if wall > 0 else 0.0,
            phases={
                name: {"calls": timer.calls, "seconds": timer.seconds}
                for name, timer in self.timers.items()
                if timer.calls
            },
            counters=self._collect_counters(system),
        )

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _collect_counters(system) -> Dict[str, int]:
        """Sample per-component event counters from a finished system.

        Delegates to the metrics subsystem's collector
        (:func:`repro.observability.collect.system_counters`): one walk of
        the component graph owns every counter name, and this profile keeps
        the flat legacy key schema the benchmark artifacts pin.
        """
        from repro.observability.collect import system_counters

        return system_counters(system)


def dump_profiles(profiles: List[RunProfile], path: str) -> None:
    """Write a list of profiles as a JSON artifact."""
    with open(path, "w") as fh:
        json.dump([p.to_json() for p in profiles], fh, indent=2)
        fh.write("\n")
