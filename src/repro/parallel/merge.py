"""Merging per-shard results into the aggregate the serial bank reports.

The contract that makes the parallel runtime testable: running a request
stream through ``N`` worker processes and merging must produce the *same*
:class:`~repro.sim.results.SimResult` -- bit-identical, field for field --
as replaying the stream through an in-process
:class:`~repro.controller.sharded.ShardedORAMBank` of the same width.
Both sides funnel through this module: the snapshots come from
:func:`repro.controller.sharded.snapshot_shard_stats` either way, and
:func:`merge_shard_snapshots` is the only place aggregate semantics live
(sum the counters, max the watermarks, lookup-weight the hit rate), so
identity is structural rather than a property to chase.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.sim.results import SimResult

#: merged-counter fields summed straight off each shard's ``stats`` dict
_SUMMED_STAT_FIELDS = (
    "demand_requests",
    "prefetch_requests",
    "write_accesses",
    "memory_accesses",
    "dummy_accesses",
    "posmap_accesses",
    "busy_cycles",
)


def requests_from_trace(trace) -> List[Tuple[int, int, bool]]:
    """Flatten a :class:`~repro.sim.trace.Trace` into a request stream.

    Every reference becomes a demand request with the trace's inter-access
    gaps accumulated into arrival cycles -- a cache-less stand-in for a
    miss stream when a pre-captured one (see
    :func:`repro.sim.multicore.capture_miss_stream`) is not available.
    """
    requests: List[Tuple[int, int, bool]] = []
    now = 0
    for gap, addr, is_write in trace.entries:
        now += gap
        requests.append((addr, now, bool(is_write)))
    return requests


def merge_shard_snapshots(
    snapshots: Sequence[dict],
    completions: Sequence[int],
    *,
    workload: str,
    scheme: str,
) -> SimResult:
    """Fold per-shard counter snapshots into one bank-level result.

    Args:
        snapshots: one :func:`snapshot_shard_stats` dict per shard, in
            shard order.
        completions: completion cycle of every request, in input order;
            the run's cycle count is the last finishing one.
        workload: label for the result's workload field.
        scheme: label for the result's scheme field.
    """
    result = SimResult(
        workload=workload,
        scheme=scheme,
        cycles=max(completions, default=0),
        trace_entries=len(completions),
        llc_misses=len(completions),
    )
    for name in _SUMMED_STAT_FIELDS:
        setattr(result, name, sum(snap["stats"][name] for snap in snapshots))
    result.stash_max_occupancy = max(
        snap["stash_max_occupancy"] for snap in snapshots
    )
    lookups = sum(snap["posmap_lookups"] for snap in snapshots)
    hits = sum(snap["posmap_cache_hits"] for snap in snapshots)
    result.posmap_cache_hit_rate = hits / lookups if lookups else 0.0
    for snap in snapshots:
        scheme_stats = snap["scheme_stats"]
        result.merges += scheme_stats["merges"]
        result.breaks += scheme_stats["breaks"]
        result.prefetched_blocks += scheme_stats["prefetched_blocks"]
        result.prefetch_hits += scheme_stats["prefetch_hits"]
        result.prefetch_misses += scheme_stats["prefetch_misses"]
    result.extra["num_shards"] = len(snapshots)
    result.extra["stash_soft_overflows"] = sum(
        snap["stash_soft_overflows"] for snap in snapshots
    )
    phase_totals: dict = {}
    for snap in snapshots:
        for name, cycles in snap["phase_cycles"].items():
            phase_totals[name] = phase_totals.get(name, 0) + cycles
    for name, cycles in phase_totals.items():
        result.extra[f"phase_{name}_cycles"] = cycles
    return result


def run_serial_reference(
    scheme: str,
    footprint_blocks: int,
    requests: Sequence[Tuple[int, int, bool]],
    config: Optional[SystemConfig] = None,
    num_shards: int = 1,
    *,
    static_sbsize: Optional[int] = None,
    workload: str = "parallel",
    fsck: bool = False,
) -> SimResult:
    """Replay a request stream through an in-process sharded bank.

    This is the golden oracle for the parallel runtime: same shard
    construction (:func:`~repro.sim.system.build_shard_backend`), same
    per-shard request sub-streams, same snapshot/merge path -- just no
    processes.  ``ParallelShardRuntime.run`` must match its return value
    exactly.
    """
    from repro.controller.sharded import ShardedORAMBank
    from repro.sim.system import build_shard_backend

    config = config or SystemConfig()
    shards = [
        build_shard_backend(
            scheme,
            footprint_blocks,
            config,
            index,
            num_shards,
            static_sbsize=static_sbsize,
        )
        for index in range(num_shards)
    ]
    bank = ShardedORAMBank(shards)
    results = bank.access_batch(list(requests))
    completions: List[int] = [r.completion_cycle for r in results]
    bank.finalize(max(completions, default=0))
    if fsck:
        from repro.faults.fsck import run_fsck_bank

        report = run_fsck_bank(bank)
        if not report.ok:
            raise RuntimeError(f"serial reference fsck failed: {report.summary()}")
    return merge_shard_snapshots(
        bank.snapshot_shards(), completions, workload=workload, scheme=scheme
    )


def replay_issued_schedule(
    scheme: str,
    footprint_blocks: int,
    issued: Sequence[Tuple[int, int, bool]],
    config: Optional[SystemConfig] = None,
    num_shards: int = 1,
    *,
    static_sbsize: Optional[int] = None,
    workload: str = "serve",
    parallel: bool = False,
    checkpoint_dir: Optional[str] = None,
) -> SimResult:
    """Replay a serving front end's issued-access schedule.

    :attr:`repro.serve.ServingFrontEnd.issued` records every ORAM access
    the front end performed as ``(addr, issue_cycle, is_write)`` in issue
    order.  Replaying that schedule through a fresh bank of the same shape
    must merge to the exact SimResult the front end reported -- serially
    (the default) or through a :class:`~repro.parallel.runtime.
    ParallelShardRuntime` when ``parallel`` is set, which pins the front
    end as a drop-in scheduler for the process-parallel executor.
    """
    if not parallel:
        return run_serial_reference(
            scheme,
            footprint_blocks,
            issued,
            config,
            num_shards,
            static_sbsize=static_sbsize,
            workload=workload,
        )
    from repro.parallel.runtime import ParallelShardRuntime

    runtime = ParallelShardRuntime(
        scheme,
        footprint_blocks,
        config,
        num_shards,
        static_sbsize=static_sbsize,
        checkpoint_dir=checkpoint_dir,
    )
    try:
        return runtime.run(issued, workload=workload)
    finally:
        runtime.close()
