"""Wire protocol between the parallel front-end and its shard workers.

Everything that crosses a process boundary is defined here: the
:class:`ShardSpec` a worker is spawned with, and the shapes of the
command/reply tuples exchanged over the two ``multiprocessing`` queues.
Tuples (not classes) cross the queues so a reply is cheap to pickle and
the protocol is trivially versionable by shape.

Commands (front-end -> worker)::

    ("batch", seq, [(local_addr, now, is_write), ...])
    ("drain", seq, now)      # barrier: finalize the backend at `now`
    ("stats", seq)           # sample a counter snapshot
    ("fsck", seq)            # audit the shard's ORAM invariants
    ("checkpoint", seq)      # force a checkpoint outside the cadence
    ("throttle", None, flag) # degraded-mode switch; no reply
    ("hang", None, seconds)  # chaos hook: stall the command loop; no reply
    ("shutdown",)

Replies (worker -> front-end)::

    ("ready", last_seq, [[seq, completions], ...])   # after (re)spawn
    ("batch_done", seq, [completion, ...], checkpointed_seq)
    ("heartbeat", seq, done_count)   # mid-batch progress (liveness proof)
    ("drained", seq)
    ("stats", seq, snapshot_dict)
    ("fsck_done", seq, ok, summary)
    ("checkpoint_done", seq, checkpointed_seq)
    ("error", seq_or_None, traceback_text)

Sequence numbers are per-worker and strictly increasing; a worker that
receives a batch it already applied (a replay after the reply was lost in
a crash) answers from its stored reply window instead of re-executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.faults.injector import FaultConfig


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to rebuild its shard from scratch.

    The spec is pure data (picklable) and the backend construction it
    drives -- :func:`repro.sim.system.build_shard_backend` -- derives the
    shard RNG from ``(config.seed, shard_index)`` alone, so a worker
    reconstructs a shard bit-identical to the one the serial
    :class:`~repro.controller.sharded.ShardedORAMBank` would build.

    Attributes:
        base_scheme: scheme name with suffixes already stripped
            ("oram", "stat", "dyn", ...).
        footprint_blocks: the *global* workload footprint.
        num_shards: bank width; this worker owns global addresses
            congruent to ``shard_index`` mod ``num_shards``.
        checkpoint_path: where this worker persists its backend state
            (``None`` disables checkpointing -- a death is then fatal).
        checkpoint_every: batches between periodic checkpoints; ``0``
            keeps only the genesis checkpoint, so recovery replays the
            whole history (bounded memory requires ``>= 1``).
        replay_window: how many recent batch replies the worker stores
            inside its checkpoint; must cover the front-end's maximum
            in-flight batches or a reply lost in a crash is unrecoverable.
        rng_restart_salt: 0 on first boot; a respawn passes the restart
            attempt number so the recovered shard draws a fresh (still
            deterministic) leaf stream instead of replaying the original
            one from the start.
        heartbeat_every: completions between mid-batch ``heartbeat``
            replies (0 disables).  Heartbeats let the front-end tell a
            slow worker from a hung one under deadline enforcement.
        fault_config: optional in-worker fault injection.  The worker
            salts the config seed with ``(shard_index, rng_restart_salt)``
            so every shard -- and every respawn -- draws an independent,
            still deterministic fault stream.
    """

    base_scheme: str
    footprint_blocks: int
    num_shards: int
    shard_index: int
    config: SystemConfig
    static_sbsize: Optional[int] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    replay_window: int = 8
    rng_restart_salt: int = 0
    heartbeat_every: int = 0
    fault_config: Optional[FaultConfig] = None
