"""Process-parallel execution of sharded ORAM banks.

The serial simulator already interleaves a
:class:`~repro.controller.sharded.ShardedORAMBank`'s channels in one
process; this package runs each channel in its own worker process and
proves (by bit-identical merged results) that the cut changes nothing but
wall-clock time.  See :mod:`repro.parallel.runtime` for the execution and
failure model, :mod:`repro.parallel.protocol` for what crosses the
process boundary, and ``DESIGN.md`` section 9 for the full ladder.
"""

from repro.parallel.merge import merge_shard_snapshots, run_serial_reference
from repro.parallel.protocol import ShardSpec
from repro.parallel.runtime import ParallelShardRuntime, WorkerFailure

__all__ = [
    "ParallelShardRuntime",
    "ShardSpec",
    "WorkerFailure",
    "merge_shard_snapshots",
    "run_serial_reference",
]
