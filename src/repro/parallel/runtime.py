"""The process-parallel shard runtime: N workers, one merged result.

:class:`ParallelShardRuntime` is the front-end.  It partitions an
address-tagged request stream across the bank's channels
(``shard = addr % N``, arrival order preserved within a shard -- the same
partition :meth:`ShardedORAMBank.access_batch` uses), ships each shard's
sub-stream as sequence-numbered batches to a worker process, and merges
the per-shard completions and counter snapshots back into the exact
:class:`~repro.sim.results.SimResult` the in-process serial bank produces.
Shards share nothing by construction (own tree, stash, RNG fork), so the
cross-process cut is free of coherence traffic and the merged result is
bit-identical to serial for any worker count.

Failure model: workers checkpoint their whole backend after every
``checkpoint_every`` batches *before* acknowledging (see
:mod:`repro.parallel.worker`).  The front-end detects a dead worker
(liveness poll while waiting on its reply queue), respawns it from the
latest checkpoint, re-serves acknowledgements the crash swallowed out of
the checkpoint's reply window, and replays only the batches the
checkpoint had not yet captured.  Every demand access is therefore
applied and counted exactly once -- "zero lost writes" in a timing
simulator means the merged accounting is indistinguishable from a run
that never crashed (completions of replayed batches may differ, since a
recovered shard draws a fresh deterministic RNG stream).

Observability: per-worker queue-depth gauges, batch round-trip latency
histograms, and restart counters land in a
:class:`~repro.observability.metrics.MetricsRegistry` under
``parallel.worker<i>.*``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.observability.metrics import MetricsRegistry
from repro.parallel.merge import merge_shard_snapshots
from repro.parallel.protocol import ShardSpec
from repro.parallel.worker import shard_worker_main
from repro.sim.results import SimResult

#: liveness-poll interval while waiting on a reply queue (seconds)
_POLL_S = 0.02


class WorkerFailure(RuntimeError):
    """A shard worker failed beyond what the recovery ladder can heal."""


class _Worker:
    """Front-end bookkeeping for one shard worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.commands = None
        self.replies = None
        self.next_seq = 0
        #: sent, not yet acknowledged: seq -> (positions, batch)
        self.pending: Dict[int, Tuple[List[int], list]] = {}
        #: acknowledged but not yet covered by a checkpoint (replay fodder)
        self.unckpt: Dict[int, Tuple[List[int], list]] = {}
        self.sent_at: Dict[int, float] = {}
        self.restarts = 0

    @property
    def inflight(self) -> int:
        return len(self.pending)


def _drain_nowait(replies):
    """``get_nowait`` that treats a crash-corrupted queue as empty.

    A worker killed mid-``put`` can leave a truncated pickle in the pipe;
    reading it raises instead of returning.  The abandoned queue is
    replaced on respawn, so any unreadable tail is equivalent to no reply.
    """
    try:
        return replies.get_nowait()
    except queue_module.Empty:
        return None
    except Exception:
        return None


class ParallelShardRuntime:
    """Run each channel of a sharded ORAM bank in its own process.

    Args:
        scheme: base scheme name ("oram", "stat", "dyn", ... -- no
            prefetch/periodic suffixes; prefetchers live core-side and the
            runtime replays a pre-captured miss stream).
        footprint_blocks: global workload footprint (shards are scaled to
            their slice exactly as :meth:`SecureSystem.build` does).
        num_workers: bank width; one worker process per shard.
        checkpoint_dir: directory for per-worker checkpoints (stale files
            from a previous runtime are removed at startup -- the runtime
            owns the directory).  ``None`` disables durability: a worker
            death becomes fatal.
        checkpoint_every: batches between worker checkpoints (1 = durable
            after every batch; 0 = genesis checkpoint only, recovery then
            replays the full history).
        batch_size: requests per shipped batch.
        max_inflight: per-worker cap on unacknowledged batches; bounded by
            the worker's reply replay window (sized to ``2 * max_inflight``)
            so a lost acknowledgement is always recoverable.
        max_restarts: per-worker respawn budget before giving up.
        metrics: optional shared registry for the per-worker gauges.
    """

    def __init__(
        self,
        scheme: str,
        footprint_blocks: int,
        config: Optional[SystemConfig] = None,
        num_workers: int = 2,
        *,
        static_sbsize: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        batch_size: int = 64,
        max_inflight: int = 4,
        max_restarts: int = 2,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if scheme == "dram":
            raise ValueError("sharded banks model ORAM channels, not DRAM")
        if batch_size < 1 or max_inflight < 1:
            raise ValueError("batch_size and max_inflight must be positive")
        self.scheme = scheme
        self.footprint_blocks = footprint_blocks
        self.config = config or SystemConfig()
        self.num_workers = num_workers
        self.static_sbsize = static_sbsize
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.max_restarts = max_restarts
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self._ctx = multiprocessing.get_context()
        self._workers = [_Worker(index) for index in range(num_workers)]
        if checkpoint_dir:
            os.makedirs(checkpoint_dir, exist_ok=True)
            for worker in self._workers:
                path = self._checkpoint_path(worker.index)
                if os.path.exists(path):
                    os.remove(path)
        for worker in self._workers:
            self._spawn(worker)
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def _checkpoint_path(self, index: int) -> str:
        return os.path.join(self.checkpoint_dir, f"shard{index:02d}.ckpt")

    def _spec(self, index: int, restart_salt: int) -> ShardSpec:
        return ShardSpec(
            base_scheme=self.scheme,
            footprint_blocks=self.footprint_blocks,
            num_shards=self.num_workers,
            shard_index=index,
            config=self.config,
            static_sbsize=self.static_sbsize,
            checkpoint_path=(
                self._checkpoint_path(index) if self.checkpoint_dir else None
            ),
            checkpoint_every=self.checkpoint_every,
            replay_window=max(2 * self.max_inflight, 8),
            rng_restart_salt=restart_salt,
        )

    def _spawn(self, worker: _Worker) -> Tuple[int, list]:
        """Start (or restart) a worker; returns its ready announcement."""
        worker.commands = self._ctx.Queue()
        worker.replies = self._ctx.Queue()
        spec = self._spec(worker.index, worker.restarts)
        worker.process = self._ctx.Process(
            target=shard_worker_main,
            args=(spec, worker.commands, worker.replies),
            daemon=True,
            name=f"repro-shard-{worker.index}",
        )
        worker.process.start()
        reply = self._await_reply(worker)
        if reply[0] == "error":
            raise WorkerFailure(f"worker {worker.index} failed to start: {reply[2]}")
        if reply[0] != "ready":
            raise WorkerFailure(
                f"worker {worker.index} sent {reply[0]!r} before ready"
            )
        return reply[1], reply[2]

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for worker in self._workers:
            process = worker.process
            if process is None or not process.is_alive():
                continue
            try:
                worker.commands.put(("shutdown",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "ParallelShardRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # --------------------------------------------------------------- pumping
    def _await_reply(self, worker: _Worker):
        """Block until *worker* replies; raise :class:`WorkerFailure` if it
        dies first (the caller owns recovery, since only it knows which
        commands the dead incarnation's queue took with it)."""
        while True:
            try:
                return worker.replies.get(timeout=_POLL_S)
            except queue_module.Empty:
                if worker.process.is_alive():
                    continue
                # One last drain: the worker may have replied, then died.
                reply = _drain_nowait(worker.replies)
                if reply is not None:
                    return reply
                raise WorkerFailure(
                    f"worker {worker.index} died "
                    f"(exitcode {worker.process.exitcode})"
                )

    def _send_batch(
        self, worker: _Worker, positions: List[int], batch: list
    ) -> None:
        seq = worker.next_seq
        worker.next_seq += 1
        worker.pending[seq] = (positions, batch)
        worker.sent_at[seq] = time.perf_counter()
        worker.commands.put(("batch", seq, batch))
        self.registry.gauge(f"parallel.worker{worker.index}.queue_depth").set(
            worker.inflight
        )

    def _record_ack(
        self,
        worker: _Worker,
        seq: int,
        completions: Sequence[int],
        checkpointed_seq: int,
        results: List[Optional[int]],
    ) -> bool:
        """Apply one ``batch_done``; True if it recorded new completions.

        A re-acknowledgement of a batch that was already recorded before a
        crash (replayed purely to reconstruct worker state) keeps the
        original completions and returns False.
        """
        newly_recorded = False
        entry = worker.pending.pop(seq, None)
        if entry is not None:
            positions, _batch = entry
            if results[positions[0]] is None:
                for position, cycle in zip(positions, completions):
                    results[position] = cycle
                newly_recorded = True
            if seq > checkpointed_seq:
                worker.unckpt[seq] = entry
            sent = worker.sent_at.pop(seq, None)
            if sent is not None:
                self.registry.histogram(
                    f"parallel.worker{worker.index}.batch_roundtrip_us"
                ).record(int((time.perf_counter() - sent) * 1e6))
            self.registry.counter(f"parallel.worker{worker.index}.batches").inc()
        for covered in [s for s in worker.unckpt if s <= checkpointed_seq]:
            del worker.unckpt[covered]
        self.registry.gauge(f"parallel.worker{worker.index}.queue_depth").set(
            worker.inflight
        )
        return newly_recorded

    # -------------------------------------------------------------- recovery
    def _recover(self, worker: _Worker) -> None:
        """Respawn a dead worker from its checkpoint and replay the gap."""
        if not self.checkpoint_dir:
            raise WorkerFailure(
                f"worker {worker.index} died (exitcode "
                f"{worker.process.exitcode}) and checkpointing is disabled"
            )
        if worker.restarts >= self.max_restarts:
            raise WorkerFailure(
                f"worker {worker.index} exceeded its restart budget "
                f"({self.max_restarts})"
            )
        worker.process.join(timeout=5)
        worker.restarts += 1
        self.registry.counter(f"parallel.worker{worker.index}.restarts").inc()
        # Fresh queues (via _spawn): the old ones may hold a torn pickle.
        restored_seq, window = self._spawn(worker)
        stored = {seq for seq, _completions in window}
        # Everything un-acknowledged or un-checkpointed goes back through
        # the worker.  Batches the restored checkpoint already covers are
        # answered from its reply window without re-execution; the rest
        # re-run from the checkpointed state.
        replay = dict(worker.unckpt)
        replay.update(worker.pending)
        worker.unckpt = {}
        worker.pending = {}
        worker.sent_at = {}
        for seq in sorted(replay):
            positions, batch = replay[seq]
            if seq <= restored_seq and seq not in stored:
                raise WorkerFailure(
                    f"worker {worker.index}: batch {seq} is inside the "
                    f"restored checkpoint but outside its reply window"
                )
            worker.pending[seq] = (positions, batch)
            worker.sent_at[seq] = time.perf_counter()
            worker.commands.put(("batch", seq, batch))

    # ------------------------------------------------------------------- run
    def run(
        self,
        requests: Sequence[Tuple[int, int, bool]],
        *,
        workload: str = "parallel",
        fsck: bool = False,
    ) -> SimResult:
        """Replay an ``(addr, now, is_write)`` stream; merge the results.

        Returns a :class:`SimResult` bit-identical to
        :func:`repro.parallel.merge.run_serial_reference` over the same
        stream, scheme, and shard count (restart telemetry stays in the
        metrics registry, deliberately outside the result).
        """
        if self._closed:
            raise WorkerFailure("runtime is closed")
        requests = list(requests)
        num_workers = self.num_workers
        # Partition by channel, preserving arrival order within a shard --
        # the same split the serial bank's access_batch performs.
        per_worker: List[List[Tuple[int, Tuple[int, int, bool]]]] = [
            [] for _ in range(num_workers)
        ]
        for position, (addr, now, is_write) in enumerate(requests):
            per_worker[addr % num_workers].append(
                (position, (addr // num_workers, now, is_write))
            )
        batches: List[List[Tuple[List[int], list]]] = []
        for assigned in per_worker:
            chunks = []
            for start in range(0, len(assigned), self.batch_size):
                chunk = assigned[start : start + self.batch_size]
                chunks.append(
                    ([position for position, _ in chunk], [r for _, r in chunk])
                )
            batches.append(chunks)
        results: List[Optional[int]] = [None] * len(requests)
        cursors = [0] * num_workers
        unrecorded = sum(len(chunks) for chunks in batches)
        while unrecorded:
            progressed = False
            for worker in self._workers:
                chunks = batches[worker.index]
                while (
                    cursors[worker.index] < len(chunks)
                    and worker.inflight < self.max_inflight
                ):
                    positions, batch = chunks[cursors[worker.index]]
                    cursors[worker.index] += 1
                    self._send_batch(worker, positions, batch)
                    progressed = True
            for worker in self._workers:
                if not worker.pending:
                    continue
                try:
                    reply = worker.replies.get_nowait()
                except queue_module.Empty:
                    if worker.process.is_alive():
                        continue
                    reply = _drain_nowait(worker.replies)
                    if reply is None:
                        self._recover(worker)
                        progressed = True
                        continue
                if reply[0] == "error":
                    raise WorkerFailure(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                if reply[0] != "batch_done":
                    raise WorkerFailure(
                        f"worker {worker.index} sent unexpected "
                        f"{reply[0]!r} during a run"
                    )
                _op, seq, completions, checkpointed_seq = reply
                if self._record_ack(
                    worker, seq, completions, checkpointed_seq, results
                ):
                    unrecorded -= 1
                progressed = True
            if not progressed:
                time.sleep(0.001)
        # Barrier: drain every worker at the globally last completion so
        # finalize semantics match the serial reference, then snapshot.
        horizon = max((c for c in results if c is not None), default=0)
        snapshots = self._barrier(horizon, fsck, results)
        completions_final = [c for c in results if c is not None]
        if len(completions_final) != len(requests):
            raise WorkerFailure("lost completions: merge would under-count")
        return merge_shard_snapshots(
            snapshots,
            completions_final,
            workload=workload,
            scheme=self.scheme,
        )

    def _barrier(
        self, horizon: int, fsck: bool, results: List[Optional[int]]
    ) -> List[dict]:
        """Drain + (optionally) fsck + snapshot every worker."""
        snapshots: List[Optional[dict]] = [None] * self.num_workers
        fsck_failures: List[str] = []
        for worker in self._workers:
            self._send_barrier_commands(worker, horizon, fsck)
        for worker in self._workers:
            while snapshots[worker.index] is None:
                try:
                    reply = self._await_reply(worker)
                except WorkerFailure:
                    # Death at the barrier: heal (replaying any batches the
                    # last checkpoint missed), then re-issue the barrier
                    # commands the old command queue took with it.
                    self._recover(worker)
                    self._send_barrier_commands(worker, horizon, fsck)
                    continue
                if reply[0] == "error":
                    raise WorkerFailure(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                if reply[0] == "batch_done":
                    # Ack of a recovery replay: route through the normal
                    # bookkeeping (already-recorded completions are kept).
                    _op, seq, completions, checkpointed_seq = reply
                    self._record_ack(
                        worker, seq, completions, checkpointed_seq, results
                    )
                elif reply[0] == "stats":
                    snapshots[worker.index] = reply[2]
                elif reply[0] == "fsck_done" and not reply[2]:
                    fsck_failures.append(reply[3])
        if fsck and fsck_failures:
            raise WorkerFailure("parallel fsck failed: " + "; ".join(fsck_failures))
        return snapshots  # type: ignore[return-value]

    def _send_barrier_commands(
        self, worker: _Worker, horizon: int, fsck: bool
    ) -> None:
        worker.commands.put(("drain", worker.next_seq, horizon))
        worker.next_seq += 1
        if fsck:
            worker.commands.put(("fsck", worker.next_seq))
            worker.next_seq += 1
        worker.commands.put(("stats", worker.next_seq))
        worker.next_seq += 1

    # ------------------------------------------------------------ inspection
    def metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Return (or merge into) the registry holding the worker gauges."""
        if registry is None:
            return self.registry
        from repro.observability.collect import collect_parallel

        return collect_parallel(self, registry)

    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self._workers)

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker process (fault-injection hook for tests)."""
        process = self._workers[index].process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5)
