"""The process-parallel shard runtime: N workers, one merged result.

:class:`ParallelShardRuntime` is the front-end.  It partitions an
address-tagged request stream across the bank's channels
(``shard = addr % N``, arrival order preserved within a shard -- the same
partition :meth:`ShardedORAMBank.access_batch` uses), ships each shard's
sub-stream as sequence-numbered batches to a worker process, and merges
the per-shard completions and counter snapshots back into the exact
:class:`~repro.sim.results.SimResult` the in-process serial bank produces.
Shards share nothing by construction (own tree, stash, RNG fork), so the
cross-process cut is free of coherence traffic and the merged result is
bit-identical to serial for any worker count.

Failure model: workers checkpoint their whole backend after every
``checkpoint_every`` batches *before* acknowledging (see
:mod:`repro.parallel.worker`).  The front-end detects a dead worker
(liveness poll while waiting on its reply queue), respawns it from the
latest checkpoint, re-serves acknowledgements the crash swallowed out of
the checkpoint's reply window, and replays only the batches the
checkpoint had not yet captured.  Every demand access is therefore
applied and counted exactly once -- "zero lost writes" in a timing
simulator means the merged accounting is indistinguishable from a run
that never crashed (completions of replayed batches may differ, since a
recovered shard draws a fresh deterministic RNG stream).

Observability: per-worker queue-depth gauges, batch round-trip latency
histograms, and restart counters land in a
:class:`~repro.observability.metrics.MetricsRegistry` under
``parallel.worker<i>.*``.

Health control plane (optional): constructed with a
:class:`~repro.health.HealthPolicy`, the runtime wraps every worker in a
:class:`~repro.health.CircuitBreaker` and enforces wall-clock deadlines.
Workers emit mid-batch ``heartbeat`` replies; a worker whose in-flight
batches make no progress (no ack, no heartbeat) for ``batch_deadline_s``
is declared *hung*, terminated, and -- like a killed worker -- lands in
QUARANTINE instead of being respawned immediately.  While quarantined,
its shard is served by an in-process fallback backend restored from the
worker's checkpoint, one batch at a time, with one dummy-path access
padding every request so fallback traffic keeps the uniform-leaf access
shape.  After the breaker's cooldown the fallback state is checkpointed
back and a fresh worker is respawned half-open (PROBING, inflight capped
at 1); enough successful probe batches re-admit it to full pipelining.
DEGRADED workers (tripped latency window) run with halved inflight and
their backend's super-block merges / prefetcher throttled via the
``throttle`` command.  Without a policy, behavior is bit-identical to
the pre-health runtime.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.faults.injector import FaultConfig
from repro.health import HealthControlPlane, HealthPolicy, HealthState
from repro.observability.metrics import MetricsRegistry
from repro.parallel.merge import merge_shard_snapshots
from repro.parallel.protocol import ShardSpec
from repro.parallel.worker import shard_worker_main
from repro.sim.results import SimResult

#: liveness-poll interval while waiting on a reply queue (seconds)
_POLL_S = 0.02


class WorkerFailure(RuntimeError):
    """A shard worker failed beyond what the recovery ladder can heal."""


class _Worker:
    """Front-end bookkeeping for one shard worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.commands = None
        self.replies = None
        self.next_seq = 0
        #: sent, not yet acknowledged: seq -> (positions, batch)
        self.pending: Dict[int, Tuple[List[int], list]] = {}
        #: acknowledged but not yet covered by a checkpoint (replay fodder)
        self.unckpt: Dict[int, Tuple[List[int], list]] = {}
        self.sent_at: Dict[int, float] = {}
        self.restarts = 0
        self.hangs = 0
        #: last wall-clock instant this worker proved progress (spawn,
        #: send, heartbeat, or any reply) -- the deadline reference point
        self.last_progress = 0.0
        #: whether the worker process was told to run degraded
        self.throttled = False
        # quarantine bookkeeping: the in-process stand-in backend, the
        # last seq applied to it, and its recent seq -> completions window
        self.fallback = None
        self.fallback_seq = -1
        self.fallback_window: Dict[int, List[int]] = {}
        #: restart budget exhausted: stay on the fallback, never probe
        self.no_probe = False

    @property
    def inflight(self) -> int:
        return len(self.pending)


def _drain_nowait(replies):
    """``get_nowait`` that treats a crash-corrupted queue as empty.

    A worker killed mid-``put`` can leave a truncated pickle in the pipe;
    reading it raises instead of returning.  The abandoned queue is
    replaced on respawn, so any unreadable tail is equivalent to no reply.
    """
    try:
        return replies.get_nowait()
    except queue_module.Empty:
        return None
    except Exception:
        return None


class ParallelShardRuntime:
    """Run each channel of a sharded ORAM bank in its own process.

    Args:
        scheme: base scheme name ("oram", "stat", "dyn", ... -- no
            prefetch/periodic suffixes; prefetchers live core-side and the
            runtime replays a pre-captured miss stream).
        footprint_blocks: global workload footprint (shards are scaled to
            their slice exactly as :meth:`SecureSystem.build` does).
        num_workers: bank width; one worker process per shard.
        checkpoint_dir: directory for per-worker checkpoints (stale files
            from a previous runtime are removed at startup -- the runtime
            owns the directory).  ``None`` disables durability: a worker
            death becomes fatal.
        checkpoint_every: batches between worker checkpoints (1 = durable
            after every batch; 0 = genesis checkpoint only, recovery then
            replays the full history).
        batch_size: requests per shipped batch.
        max_inflight: per-worker cap on unacknowledged batches; bounded by
            the worker's reply replay window (sized to ``2 * max_inflight``)
            so a lost acknowledgement is always recoverable.
        max_restarts: per-worker respawn budget before giving up.
        metrics: optional shared registry for the per-worker gauges.
        health_policy: enable the health control plane (per-worker
            circuit breakers, quarantine fallback routing, half-open
            probing).  Requires ``checkpoint_dir`` -- the fallback path
            is restored from the worker's checkpoint.  Also supplies
            defaults for the three enforcement knobs below.
        batch_deadline_s: wall-clock seconds an in-flight worker may go
            without progress (ack or heartbeat) before it is declared
            hung and terminated.  ``None`` takes the policy's value, or
            disables enforcement when no policy is given; 0 disables.
        heartbeat_every: completions between mid-batch worker heartbeats
            (``None``: policy value, or 0 without a policy).
        join_timeout_s: ``Process.join`` timeout for every lifecycle
            path -- shutdown, terminate-after-hang, post-mortem join
            (``None``: policy value, or 5 s without a policy).
        fault_config: in-worker fault injection (seed salted per shard
            and per respawn); the chaos harness's storm knob.
    """

    def __init__(
        self,
        scheme: str,
        footprint_blocks: int,
        config: Optional[SystemConfig] = None,
        num_workers: int = 2,
        *,
        static_sbsize: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        batch_size: int = 64,
        max_inflight: int = 4,
        max_restarts: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        health_policy: Optional[HealthPolicy] = None,
        batch_deadline_s: Optional[float] = None,
        heartbeat_every: Optional[int] = None,
        join_timeout_s: Optional[float] = None,
        fault_config: Optional[FaultConfig] = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if scheme == "dram":
            raise ValueError("sharded banks model ORAM channels, not DRAM")
        if batch_size < 1 or max_inflight < 1:
            raise ValueError("batch_size and max_inflight must be positive")
        if health_policy is not None and not checkpoint_dir:
            raise ValueError(
                "the health control plane needs checkpoint_dir: quarantine "
                "routing restores the fallback path from worker checkpoints"
            )
        self.scheme = scheme
        self.footprint_blocks = footprint_blocks
        self.config = config or SystemConfig()
        self.num_workers = num_workers
        self.static_sbsize = static_sbsize
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.max_restarts = max_restarts
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.health = (
            HealthControlPlane(num_workers, health_policy, metrics=self.registry)
            if health_policy is not None
            else None
        )
        self.join_timeout_s = (
            join_timeout_s
            if join_timeout_s is not None
            else (health_policy.join_timeout_s if health_policy else 5.0)
        )
        self.batch_deadline_s = (
            batch_deadline_s
            if batch_deadline_s is not None
            else (health_policy.batch_deadline_s if health_policy else 0.0)
        )
        self.heartbeat_every = (
            heartbeat_every
            if heartbeat_every is not None
            else (health_policy.heartbeat_every if health_policy else 0)
        )
        self.fault_config = fault_config
        self._ctx = multiprocessing.get_context()
        self._workers = [_Worker(index) for index in range(num_workers)]
        if checkpoint_dir:
            os.makedirs(checkpoint_dir, exist_ok=True)
            for worker in self._workers:
                path = self._checkpoint_path(worker.index)
                if os.path.exists(path):
                    os.remove(path)
        for worker in self._workers:
            self._spawn(worker)
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def _checkpoint_path(self, index: int) -> str:
        return os.path.join(self.checkpoint_dir, f"shard{index:02d}.ckpt")

    def _spec(self, index: int, restart_salt: int) -> ShardSpec:
        return ShardSpec(
            base_scheme=self.scheme,
            footprint_blocks=self.footprint_blocks,
            num_shards=self.num_workers,
            shard_index=index,
            config=self.config,
            static_sbsize=self.static_sbsize,
            checkpoint_path=(
                self._checkpoint_path(index) if self.checkpoint_dir else None
            ),
            checkpoint_every=self.checkpoint_every,
            replay_window=max(2 * self.max_inflight, 8),
            rng_restart_salt=restart_salt,
            heartbeat_every=self.heartbeat_every,
            fault_config=self.fault_config,
        )

    def _spawn(self, worker: _Worker) -> Tuple[int, list]:
        """Start (or restart) a worker; returns its ready announcement."""
        worker.commands = self._ctx.Queue()
        worker.replies = self._ctx.Queue()
        spec = self._spec(worker.index, worker.restarts)
        worker.process = self._ctx.Process(
            target=shard_worker_main,
            args=(spec, worker.commands, worker.replies),
            daemon=True,
            name=f"repro-shard-{worker.index}",
        )
        worker.process.start()
        worker.last_progress = time.perf_counter()
        worker.throttled = False
        reply = self._await_reply(worker)
        if reply[0] == "error":
            raise WorkerFailure(f"worker {worker.index} failed to start: {reply[2]}")
        if reply[0] != "ready":
            raise WorkerFailure(
                f"worker {worker.index} sent {reply[0]!r} before ready"
            )
        return reply[1], reply[2]

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for worker in self._workers:
            process = worker.process
            if process is None or not process.is_alive():
                continue
            try:
                worker.commands.put(("shutdown",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            process.join(timeout=self.join_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self.join_timeout_s)

    def __enter__(self) -> "ParallelShardRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # --------------------------------------------------------------- pumping
    def _deadline_expired(self, worker: _Worker) -> bool:
        return (
            self.batch_deadline_s > 0
            and time.perf_counter() - worker.last_progress > self.batch_deadline_s
        )

    def _terminate_hung(self, worker: _Worker) -> None:
        """Declare a live-but-silent worker hung and take it down."""
        worker.hangs += 1
        self.registry.counter(f"parallel.worker{worker.index}.hangs").inc()
        process = worker.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=self.join_timeout_s)

    def _await_reply(self, worker: _Worker, *, deadline: bool = False):
        """Block until *worker* replies; raise :class:`WorkerFailure` if it
        dies first (the caller owns recovery, since only it knows which
        commands the dead incarnation's queue took with it).  Heartbeats
        are consumed here -- they refresh the progress clock but are never
        surfaced.  With ``deadline=True`` a worker that stays silent past
        ``batch_deadline_s`` is terminated and reported as a failure."""
        while True:
            try:
                reply = worker.replies.get(timeout=_POLL_S)
            except queue_module.Empty:
                if worker.process.is_alive():
                    if deadline and self._deadline_expired(worker):
                        self._terminate_hung(worker)
                        raise WorkerFailure(
                            f"worker {worker.index} hung: no progress for "
                            f"{self.batch_deadline_s:.3f}s"
                        )
                    continue
                # One last drain: the worker may have replied, then died.
                reply = _drain_nowait(worker.replies)
                if reply is not None:
                    worker.last_progress = time.perf_counter()
                    return reply
                raise WorkerFailure(
                    f"worker {worker.index} died "
                    f"(exitcode {worker.process.exitcode})"
                )
            worker.last_progress = time.perf_counter()
            if reply[0] == "heartbeat":
                continue
            return reply

    def _send_batch(
        self, worker: _Worker, positions: List[int], batch: list
    ) -> None:
        seq = worker.next_seq
        worker.next_seq += 1
        worker.pending[seq] = (positions, batch)
        worker.sent_at[seq] = time.perf_counter()
        # A send restarts the progress clock: deadlines measure silence
        # *after* work was handed over, not idle time between batches.
        worker.last_progress = worker.sent_at[seq]
        worker.commands.put(("batch", seq, batch))
        self.registry.gauge(f"parallel.worker{worker.index}.queue_depth").set(
            worker.inflight
        )

    def _record_ack(
        self,
        worker: _Worker,
        seq: int,
        completions: Sequence[int],
        checkpointed_seq: int,
        results: List[Optional[int]],
    ) -> bool:
        """Apply one ``batch_done``; True if it recorded new completions.

        A re-acknowledgement of a batch that was already recorded before a
        crash (replayed purely to reconstruct worker state) keeps the
        original completions and returns False.
        """
        newly_recorded = False
        entry = worker.pending.pop(seq, None)
        if entry is not None:
            positions, _batch = entry
            if results[positions[0]] is None:
                for position, cycle in zip(positions, completions):
                    results[position] = cycle
                newly_recorded = True
            if seq > checkpointed_seq:
                worker.unckpt[seq] = entry
            sent = worker.sent_at.pop(seq, None)
            roundtrip_us = 0
            if sent is not None:
                roundtrip_us = int((time.perf_counter() - sent) * 1e6)
                self.registry.histogram(
                    f"parallel.worker{worker.index}.batch_roundtrip_us"
                ).record(roundtrip_us)
            self.registry.counter(f"parallel.worker{worker.index}.batches").inc()
            self._feed_health_ack(worker, roundtrip_us)
        for covered in [s for s in worker.unckpt if s <= checkpointed_seq]:
            del worker.unckpt[covered]
        self.registry.gauge(f"parallel.worker{worker.index}.queue_depth").set(
            worker.inflight
        )
        return newly_recorded

    # --------------------------------------------------------- health feeding
    def _feed_health_ack(self, worker: _Worker, roundtrip_us: int) -> None:
        """One batch acknowledgement reached the front-end: feed the
        breaker.  Probe acks count toward re-admission; normal acks feed
        the latency window (microseconds stand in for cycles -- the policy
        knob is documented as round-trip µs for the parallel runtime)."""
        if self.health is None:
            return
        state = self.health.state(worker.index)
        if state is HealthState.PROBING:
            self.health.record_probe(worker.index, True)
            if self.health.state(worker.index) is HealthState.HEALTHY:
                self._set_worker_throttle(worker, False)
            return
        self.health.record_access(worker.index, True, roundtrip_us)
        self._set_worker_throttle(
            worker, self.health.state(worker.index) is HealthState.DEGRADED
        )

    def _set_worker_throttle(self, worker: _Worker, flag: bool) -> None:
        if worker.throttled == flag:
            return
        process = worker.process
        if process is None or not process.is_alive():
            return
        worker.commands.put(("throttle", None, flag))
        worker.throttled = flag

    # -------------------------------------------------------------- recovery
    def _fail_worker(self, worker: _Worker, reason: str, results) -> int:
        """Route one dead/hung worker through the configured ladder.

        Without a health plane this is the original immediate
        respawn-and-replay (:meth:`_recover`).  With one, the worker is
        quarantined: its outstanding batches are resolved against an
        in-process fallback backend and subsequent traffic is served
        there until the breaker re-admits it.  Returns how many batches
        were newly recorded into *results* (0 on the respawn path, where
        replayed batches are acknowledged through the queues instead).
        """
        if self.health is None:
            self._recover(worker)
            return 0
        return self._quarantine(worker, reason, results)

    def _recover(self, worker: _Worker) -> None:
        """Respawn a dead worker from its checkpoint and replay the gap."""
        if not self.checkpoint_dir:
            raise WorkerFailure(
                f"worker {worker.index} died (exitcode "
                f"{worker.process.exitcode}) and checkpointing is disabled"
            )
        if worker.restarts >= self.max_restarts:
            raise WorkerFailure(
                f"worker {worker.index} exceeded its restart budget "
                f"({self.max_restarts})"
            )
        worker.process.join(timeout=self.join_timeout_s)
        worker.restarts += 1
        self.registry.counter(f"parallel.worker{worker.index}.restarts").inc()
        # Fresh queues (via _spawn): the old ones may hold a torn pickle.
        restored_seq, window = self._spawn(worker)
        stored = {seq for seq, _completions in window}
        # Everything un-acknowledged or un-checkpointed goes back through
        # the worker.  Batches the restored checkpoint already covers are
        # answered from its reply window without re-execution; the rest
        # re-run from the checkpointed state.
        replay = dict(worker.unckpt)
        replay.update(worker.pending)
        worker.unckpt = {}
        worker.pending = {}
        worker.sent_at = {}
        for seq in sorted(replay):
            positions, batch = replay[seq]
            if seq <= restored_seq and seq not in stored:
                raise WorkerFailure(
                    f"worker {worker.index}: batch {seq} is inside the "
                    f"restored checkpoint but outside its reply window"
                )
            worker.pending[seq] = (positions, batch)
            worker.sent_at[seq] = time.perf_counter()
            worker.commands.put(("batch", seq, batch))

    def _quarantine(self, worker: _Worker, reason: str, results) -> int:
        """Trip the breaker and swing the shard onto its fallback path.

        The fallback backend is rebuilt in-process from the worker's
        checkpoint (without the worker's fault injector: the front-end
        process is the trusted domain, faults model worker memory).
        Outstanding batches are resolved immediately -- answered from the
        checkpoint's reply window when it already covers them, re-executed
        on the fallback otherwise -- so no completion is ever lost.
        """
        self.health.record_hard_failure(worker.index, reason)
        process = worker.process
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=self.join_timeout_s)
        # The fallback is the shard's next incarnation: it advances the
        # restart salt so its leaf stream is fresh, like any respawn.
        worker.restarts += 1
        self.registry.counter(f"parallel.worker{worker.index}.restarts").inc()
        from repro.oram.checkpoint import restore_backend
        from repro.sim.system import build_shard_backend

        backend = build_shard_backend(
            self.scheme,
            self.footprint_blocks,
            self.config,
            worker.index,
            self.num_workers,
            static_sbsize=self.static_sbsize,
            rng_restart_salt=worker.restarts,
        )
        runtime_state = restore_backend(
            backend, self._checkpoint_path(worker.index)
        )
        restored_seq = runtime_state.get("last_seq", -1)
        window = {
            seq: list(completions)
            for seq, completions in runtime_state.get("replies", [])
        }
        worker.fallback = backend
        worker.fallback_seq = restored_seq
        worker.fallback_window = window
        replay = dict(worker.unckpt)
        replay.update(worker.pending)
        worker.unckpt = {}
        worker.pending = {}
        worker.sent_at = {}
        recorded = 0
        for seq in sorted(replay):
            positions, batch = replay[seq]
            if seq <= restored_seq:
                completions = window.get(seq)
                if completions is None:
                    raise WorkerFailure(
                        f"worker {worker.index}: batch {seq} is inside the "
                        f"restored checkpoint but outside its reply window"
                    )
            else:
                completions = self._fallback_execute(worker, seq, batch)
            if results[positions[0]] is None:
                for position, cycle in zip(positions, completions):
                    results[position] = cycle
                recorded += 1
        return recorded

    def _fallback_execute(
        self, worker: _Worker, seq: int, batch: list
    ) -> List[int]:
        """Serve one batch on the quarantined shard's fallback backend.

        Every request is padded with one dummy-path access, so fallback
        (and probe) traffic presents the same fixed two-path shape and
        the leaf distribution the shard exposes stays uniform.
        """
        backend = worker.fallback
        health = self.health
        completions = []
        for addr, now, is_write in batch:
            result = backend.demand_access(addr, now, is_write)
            completions.append(backend.dummy_path_access(result.completion_cycle))
            health.record_fallback(worker.index)
        worker.fallback_seq = seq
        worker.fallback_window[seq] = completions
        keep = max(2 * self.max_inflight, 8)
        for old in sorted(worker.fallback_window)[:-keep]:
            del worker.fallback_window[old]
        self.registry.counter(
            f"parallel.worker{worker.index}.fallback_batches"
        ).inc()
        return completions

    def _try_readmit(self, worker: _Worker) -> bool:
        """Checkpoint the fallback and respawn the worker half-open.

        Returns True when the worker was respawned into PROBING.  A
        worker whose restart budget is exhausted stays on its fallback
        permanently (degraded-but-correct beats fatal)."""
        health = self.health
        if worker.no_probe or not health.breakers[worker.index].ready_to_probe:
            return False
        if worker.restarts >= self.max_restarts:
            worker.no_probe = True
            self.registry.counter(
                f"parallel.worker{worker.index}.probe_denied"
            ).inc()
            return False
        from repro.oram.checkpoint import save_backend

        save_backend(
            worker.fallback,
            self._checkpoint_path(worker.index),
            {
                "last_seq": worker.fallback_seq,
                "replies": [
                    [seq, completions]
                    for seq, completions in sorted(worker.fallback_window.items())
                ],
            },
        )
        health.begin_probe_if_ready(worker.index)
        worker.fallback = None
        worker.fallback_window = {}
        worker.restarts += 1
        self.registry.counter(f"parallel.worker{worker.index}.restarts").inc()
        self._spawn(worker)
        # Probe under throttle: the shard earns full rate back only once
        # the breaker re-admits it.
        self._set_worker_throttle(worker, True)
        return True

    def _is_quarantined(self, worker: _Worker) -> bool:
        return (
            self.health is not None
            and self.health.state(worker.index) is HealthState.QUARANTINED
        )

    def _inflight_cap(self, worker: _Worker) -> int:
        """Pipelining depth by health state: probes go one at a time,
        degraded workers at half rate, healthy ones at full depth."""
        if self.health is None:
            return self.max_inflight
        state = self.health.state(worker.index)
        if state is HealthState.PROBING:
            return 1
        if state is HealthState.DEGRADED:
            return max(1, self.max_inflight // 2)
        return self.max_inflight

    def _pump_quarantined(
        self, worker: _Worker, chunks, cursors, results
    ) -> int:
        """Advance a quarantined shard by at most one fallback batch.

        One batch per pump iteration keeps the scheduler fair: the other
        workers' queues are serviced between fallback batches.  Returns
        the number of batches newly recorded (0 or 1)."""
        if self._try_readmit(worker):
            return 0
        if cursors[worker.index] >= len(chunks):
            return 0
        positions, batch = chunks[cursors[worker.index]]
        cursors[worker.index] += 1
        seq = worker.next_seq
        worker.next_seq += 1
        completions = self._fallback_execute(worker, seq, batch)
        recorded = 0
        if results[positions[0]] is None:
            for position, cycle in zip(positions, completions):
                results[position] = cycle
            recorded = 1
        return recorded

    # ------------------------------------------------------------------- run
    def run(
        self,
        requests: Sequence[Tuple[int, int, bool]],
        *,
        workload: str = "parallel",
        fsck: bool = False,
    ) -> SimResult:
        """Replay an ``(addr, now, is_write)`` stream; merge the results.

        Returns a :class:`SimResult` bit-identical to
        :func:`repro.parallel.merge.run_serial_reference` over the same
        stream, scheme, and shard count (restart telemetry stays in the
        metrics registry, deliberately outside the result).
        """
        if self._closed:
            raise WorkerFailure("runtime is closed")
        requests = list(requests)
        num_workers = self.num_workers
        # Partition by channel, preserving arrival order within a shard --
        # the same split the serial bank's access_batch performs.
        per_worker: List[List[Tuple[int, Tuple[int, int, bool]]]] = [
            [] for _ in range(num_workers)
        ]
        for position, (addr, now, is_write) in enumerate(requests):
            per_worker[addr % num_workers].append(
                (position, (addr // num_workers, now, is_write))
            )
        batches: List[List[Tuple[List[int], list]]] = []
        for assigned in per_worker:
            chunks = []
            for start in range(0, len(assigned), self.batch_size):
                chunk = assigned[start : start + self.batch_size]
                chunks.append(
                    ([position for position, _ in chunk], [r for _, r in chunk])
                )
            batches.append(chunks)
        results: List[Optional[int]] = [None] * len(requests)
        cursors = [0] * num_workers
        unrecorded = sum(len(chunks) for chunks in batches)
        while unrecorded:
            progressed = False
            for worker in self._workers:
                chunks = batches[worker.index]
                if self._is_quarantined(worker):
                    recorded = self._pump_quarantined(
                        worker, chunks, cursors, results
                    )
                    if recorded:
                        unrecorded -= recorded
                        progressed = True
                    continue
                cap = self._inflight_cap(worker)
                while (
                    cursors[worker.index] < len(chunks)
                    and worker.inflight < cap
                ):
                    positions, batch = chunks[cursors[worker.index]]
                    cursors[worker.index] += 1
                    self._send_batch(worker, positions, batch)
                    progressed = True
            for worker in self._workers:
                if not worker.pending:
                    continue
                try:
                    reply = worker.replies.get_nowait()
                except queue_module.Empty:
                    if worker.process.is_alive():
                        if self._deadline_expired(worker):
                            self._terminate_hung(worker)
                            unrecorded -= self._fail_worker(
                                worker, "hang", results
                            )
                            progressed = True
                        continue
                    reply = _drain_nowait(worker.replies)
                    if reply is None:
                        unrecorded -= self._fail_worker(worker, "death", results)
                        progressed = True
                        continue
                worker.last_progress = time.perf_counter()
                if reply[0] == "heartbeat":
                    progressed = True
                    continue
                if reply[0] == "error":
                    raise WorkerFailure(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                if reply[0] != "batch_done":
                    raise WorkerFailure(
                        f"worker {worker.index} sent unexpected "
                        f"{reply[0]!r} during a run"
                    )
                _op, seq, completions, checkpointed_seq = reply
                if self._record_ack(
                    worker, seq, completions, checkpointed_seq, results
                ):
                    unrecorded -= 1
                progressed = True
            if not progressed:
                time.sleep(0.001)
        # Barrier: drain every worker at the globally last completion so
        # finalize semantics match the serial reference, then snapshot.
        horizon = max((c for c in results if c is not None), default=0)
        snapshots = self._barrier(horizon, fsck, results)
        completions_final = [c for c in results if c is not None]
        if len(completions_final) != len(requests):
            raise WorkerFailure("lost completions: merge would under-count")
        return merge_shard_snapshots(
            snapshots,
            completions_final,
            workload=workload,
            scheme=self.scheme,
        )

    def _barrier(
        self, horizon: int, fsck: bool, results: List[Optional[int]]
    ) -> List[dict]:
        """Drain + (optionally) fsck + snapshot every worker."""
        snapshots: List[Optional[dict]] = [None] * self.num_workers
        fsck_failures: List[str] = []
        for worker in self._workers:
            if not self._is_quarantined(worker):
                self._send_barrier_commands(worker, horizon, fsck)
        for worker in self._workers:
            while snapshots[worker.index] is None:
                if self._is_quarantined(worker):
                    # The shard lives in the front-end process now; the
                    # barrier runs directly against its fallback backend.
                    snapshots[worker.index] = self._fallback_barrier(
                        worker, horizon, fsck, fsck_failures
                    )
                    break
                try:
                    reply = self._await_reply(worker, deadline=True)
                except WorkerFailure as failure:
                    # Death (or hang) at the barrier: heal, then re-issue
                    # the barrier commands the old command queue took with
                    # it -- unless the health plane quarantined the shard,
                    # in which case the loop snapshots its fallback.
                    self._fail_worker(
                        worker,
                        "hang" if "hung" in str(failure) else "death",
                        results,
                    )
                    if not self._is_quarantined(worker):
                        self._send_barrier_commands(worker, horizon, fsck)
                    continue
                if reply[0] == "error":
                    raise WorkerFailure(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                if reply[0] == "batch_done":
                    # Ack of a recovery replay: route through the normal
                    # bookkeeping (already-recorded completions are kept).
                    _op, seq, completions, checkpointed_seq = reply
                    self._record_ack(
                        worker, seq, completions, checkpointed_seq, results
                    )
                elif reply[0] == "stats":
                    snapshots[worker.index] = reply[2]
                elif reply[0] == "fsck_done" and not reply[2]:
                    fsck_failures.append(reply[3])
        if fsck and fsck_failures:
            raise WorkerFailure("parallel fsck failed: " + "; ".join(fsck_failures))
        return snapshots  # type: ignore[return-value]

    def _send_barrier_commands(
        self, worker: _Worker, horizon: int, fsck: bool
    ) -> None:
        worker.last_progress = time.perf_counter()
        worker.commands.put(("drain", worker.next_seq, horizon))
        worker.next_seq += 1
        if fsck:
            worker.commands.put(("fsck", worker.next_seq))
            worker.next_seq += 1
        worker.commands.put(("stats", worker.next_seq))
        worker.next_seq += 1

    def _fallback_barrier(
        self, worker: _Worker, horizon: int, fsck: bool, fsck_failures: List[str]
    ) -> dict:
        """Drain + fsck + snapshot a quarantined shard's fallback backend
        -- the in-process mirror of the worker barrier commands."""
        from repro.controller.sharded import snapshot_shard_stats

        backend = worker.fallback
        backend.finalize(max(horizon, backend.busy_until))
        if fsck:
            from repro.faults.fsck import run_fsck

            report = run_fsck(backend.oram)
            if not report.ok:
                fsck_failures.append(report.summary())
        return snapshot_shard_stats(backend)

    # ------------------------------------------------------------ inspection
    def metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Return (or merge into) the registry holding the worker gauges."""
        if registry is None:
            return self.registry
        from repro.observability.collect import collect_parallel

        return collect_parallel(self, registry)

    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self._workers)

    def total_hangs(self) -> int:
        return sum(worker.hangs for worker in self._workers)

    def worker_restarts(self) -> List[int]:
        return [worker.restarts for worker in self._workers]

    def worker_hangs(self) -> List[int]:
        return [worker.hangs for worker in self._workers]

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker process (fault-injection hook for tests)."""
        process = self._workers[index].process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=self.join_timeout_s)

    def hang_worker(self, index: int, seconds: float = 3600.0) -> None:
        """Stall one worker's command loop (chaos hook).

        The worker stays alive but stops serving batches and heartbeats
        for *seconds* -- the failure mode the old runtime could only wait
        out.  With deadline enforcement the front-end detects the silence,
        terminates the process, and runs the recovery ladder."""
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            worker.commands.put(("hang", None, seconds))
