"""The shard worker: one process, one ORAM controller, one command loop.

A worker owns exactly one channel of the bank -- a complete
:class:`~repro.memory.oram_backend.ORAMBackend` with its own tree, stash,
position-map hierarchy, and access pipeline -- rebuilt inside the child
process from the :class:`~repro.parallel.protocol.ShardSpec` (specs are
data; live backends never cross a process boundary).  It drains command
tuples from its queue and pushes reply tuples back; the shapes are
documented in :mod:`repro.parallel.protocol`.

Durability: when the spec carries a checkpoint path, the worker persists
its entire backend (via :func:`repro.oram.checkpoint.save_backend`) every
``checkpoint_every`` batches, *before* acknowledging the batch, and keeps
a window of recent ``(seq, completions)`` replies inside the checkpoint's
runtime section.  A respawned worker therefore reports exactly which
batches survived (``last_seq``) and can re-serve acknowledgements the
crash swallowed -- the front-end replays only what is genuinely missing.
"""

from __future__ import annotations

import os
import traceback

from repro.controller.sharded import snapshot_shard_stats
from repro.oram.checkpoint import restore_backend, save_backend
from repro.parallel.protocol import ShardSpec


def build_worker_backend(spec: ShardSpec):
    """Rebuild this worker's shard exactly as the serial bank would."""
    from repro.sim.system import build_shard_backend

    injector = None
    if spec.fault_config is not None:
        from dataclasses import replace

        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            replace(
                spec.fault_config,
                seed=spec.fault_config.seed
                + 1009 * spec.shard_index
                + 31 * spec.rng_restart_salt,
            )
        )
    return build_shard_backend(
        spec.base_scheme,
        spec.footprint_blocks,
        spec.config,
        spec.shard_index,
        spec.num_shards,
        static_sbsize=spec.static_sbsize,
        fault_injector=injector,
        rng_restart_salt=spec.rng_restart_salt,
    )


def _checkpoint(backend, spec: ShardSpec, last_seq: int, window) -> int:
    save_backend(
        backend,
        spec.checkpoint_path,
        {"last_seq": last_seq, "replies": [list(entry) for entry in window]},
    )
    return last_seq


def shard_worker_main(spec: ShardSpec, commands, replies) -> None:
    """Entry point of the worker process (target of ``Process``)."""
    try:
        backend = build_worker_backend(spec)
        last_seq = -1
        window = []  # recent [seq, completions] pairs, oldest first
        if spec.checkpoint_path and os.path.exists(spec.checkpoint_path):
            runtime = restore_backend(backend, spec.checkpoint_path)
            last_seq = runtime.get("last_seq", -1)
            window = [list(entry) for entry in runtime.get("replies", [])]
            checkpointed_seq = last_seq
        elif spec.checkpoint_path:
            # Genesis checkpoint: a crash before the first periodic
            # checkpoint must still leave something to restore from.
            checkpointed_seq = _checkpoint(backend, spec, last_seq, window)
        else:
            checkpointed_seq = last_seq
        replies.put(("ready", last_seq, [list(entry) for entry in window]))
    except Exception:
        replies.put(("error", None, traceback.format_exc()))
        return

    batches_since_checkpoint = 0
    while True:
        command = commands.get()
        op = command[0]
        seq = command[1] if len(command) > 1 else None
        try:
            if op == "shutdown":
                return
            if op == "batch":
                batch = command[2]
                if seq <= last_seq:
                    # Replay of already-applied work: the crash swallowed
                    # the acknowledgement, not the effects.  Answer from
                    # the stored window instead of re-executing.
                    for stored_seq, stored in window:
                        if stored_seq == seq:
                            replies.put(
                                ("batch_done", seq, stored, checkpointed_seq)
                            )
                            break
                    else:
                        replies.put(
                            (
                                "error",
                                seq,
                                f"batch {seq} predates the replay window "
                                f"(last_seq={last_seq})",
                            )
                        )
                    continue
                completions = []
                for addr, now, is_write in batch:
                    completions.append(
                        backend.demand_access(addr, now, is_write).completion_cycle
                    )
                    # Mid-batch liveness proof: under deadline enforcement
                    # the front-end must tell "slow" from "hung", and the
                    # only evidence that crosses the process boundary is a
                    # reply.  The final completion is announced by
                    # batch_done itself, so no heartbeat follows it.
                    if (
                        spec.heartbeat_every
                        and len(completions) % spec.heartbeat_every == 0
                        and len(completions) < len(batch)
                    ):
                        replies.put(("heartbeat", seq, len(completions)))
                last_seq = seq
                window.append([seq, completions])
                del window[: -max(spec.replay_window, 1)]
                batches_since_checkpoint += 1
                if (
                    spec.checkpoint_path
                    and spec.checkpoint_every
                    and batches_since_checkpoint >= spec.checkpoint_every
                ):
                    checkpointed_seq = _checkpoint(backend, spec, last_seq, window)
                    batches_since_checkpoint = 0
                replies.put(("batch_done", seq, completions, checkpointed_seq))
            elif op == "drain":
                backend.finalize(max(command[2], backend.busy_until))
                replies.put(("drained", seq))
            elif op == "stats":
                replies.put(("stats", seq, snapshot_shard_stats(backend)))
            elif op == "fsck":
                from repro.faults.fsck import run_fsck

                report = run_fsck(backend.oram)
                replies.put(("fsck_done", seq, report.ok, report.summary()))
            elif op == "checkpoint":
                if spec.checkpoint_path:
                    checkpointed_seq = _checkpoint(backend, spec, last_seq, window)
                replies.put(("checkpoint_done", seq, checkpointed_seq))
            elif op == "throttle":
                # Degraded-mode switch from the front-end's breaker: no
                # reply, so it never perturbs the seq/ack bookkeeping.
                backend.set_degraded(bool(command[2]))
            elif op == "hang":
                # Chaos hook: stall the command loop without dying.  The
                # batches queued behind this command stop being served,
                # which is exactly the failure deadline enforcement must
                # catch (a kill is detectable by liveness; a hang is not).
                import time

                time.sleep(command[2])
            else:
                replies.put(("error", seq, f"unknown command {op!r}"))
        except Exception:
            replies.put(("error", seq, traceback.format_exc()))
