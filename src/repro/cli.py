"""Command-line interface: run simulations and experiments without pytest.

Usage (also via ``python -m repro``):

    repro list                               # workloads and schemes
    repro run -w ocean_c -s oram,stat,dyn    # one Figure 8 bar
    repro run -w YCSB -s dyn --accesses 40000
    repro sweep locality -s stat,dyn         # Figure 6a
    repro sweep stash -w ocean_c             # Figure 12
    repro run -w ocean_c -s dyn --shards 4   # channel-interleaved ORAM bank
    repro run -w mcf -s dyn --trace-out mcf.jsonl   # per-access span trace
    repro trace -w mcf -o mcf.trace          # export a trace file
    repro trace --report mcf.jsonl           # summarize a span trace
    repro metrics -w ocean_c -s dyn          # metrics registry + uniformity
    repro audit -w ocean_c                   # obliviousness statistics
    repro parity --scheme all                # one trace, every ORAMScheme

Every command prints the same tables the benchmark harness records; the
heavy lifting lives in :mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.experiments import experiment_config, run_schemes
from repro.analysis.tables import format_table
from repro.profiling import Profiler
from repro.security.observer import AccessObserver
from repro.security.statistics import chi_square_uniformity, lag_autocorrelation
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace
from repro.workloads.base import trace_for
from repro.workloads.dbms import DBMS_PROFILES, dbms_trace
from repro.workloads.spec06 import SPEC06_BY_NAME, SPEC06_PROFILES
from repro.workloads.splash2 import SPLASH2_BY_NAME, SPLASH2_PROFILES
from repro.workloads.synthetic import locality_mix_trace

KNOWN_SCHEMES = [
    "dram", "dram_pre", "oram", "oram_pre", "stat", "dyn",
    "dyn_sm_nb", "dyn_am_nb", "dyn_am_ab", "dyn_sm_ab",
    "oram_intvl", "stat_intvl", "dyn_intvl",
]


def build_trace(workload: str, accesses: int, seed: int = 42) -> Trace:
    """Trace for any named workload (real benchmark or ``locality:<pct>``)."""
    if workload.startswith("locality:"):
        fraction = float(workload.split(":", 1)[1]) / 100.0
        return locality_mix_trace(fraction, accesses=accesses)
    if workload in SPLASH2_BY_NAME:
        return trace_for(SPLASH2_BY_NAME[workload], accesses=accesses)
    if workload in SPEC06_BY_NAME:
        return trace_for(SPEC06_BY_NAME[workload], accesses=accesses)
    if workload in ("YCSB", "TPCC"):
        return dbms_trace(workload, accesses=accesses)
    raise SystemExit(f"unknown workload '{workload}' (see `repro list`)")


def _parse_schemes(raw: str) -> List[str]:
    schemes = [s.strip() for s in raw.split(",") if s.strip()]
    for scheme in schemes:
        base = scheme
        if base not in KNOWN_SCHEMES:
            raise SystemExit(f"unknown scheme '{scheme}' (see `repro list`)")
    return schemes


# ------------------------------------------------------------------ commands
def cmd_list(args) -> int:
    print("Schemes:")
    print("  " + ", ".join(KNOWN_SCHEMES))
    print("\nWorkloads:")
    for title, profiles in [
        ("Splash2", SPLASH2_PROFILES),
        ("SPEC06", SPEC06_PROFILES),
        ("DBMS", DBMS_PROFILES),
    ]:
        names = ", ".join(p.name for p in profiles)
        print(f"  {title}: {names}")
    print("  synthetic: locality:<percent>  (e.g. locality:80)")
    return 0


def _fault_build_kwargs(args):
    """Per-scheme ``SecureSystem.build`` kwargs for the ``--fault-*`` flags.

    Returns None when fault injection is off.  Each scheme gets a *fresh*
    injector (they hold a private RNG stream), all seeded identically so
    schemes see the same fault schedule.
    """
    transient = getattr(args, "fault_transient", 0.0)
    delay = getattr(args, "fault_delay", 0.0)
    if not transient and not delay:
        return None
    from repro.faults import FaultConfig, FaultInjector

    fault_config = FaultConfig(
        seed=args.fault_seed,
        transient_rate=transient,
        delay_rate=delay,
        delay_cycles=args.fault_delay_cycles,
    )

    def build_kwargs(scheme):
        if scheme.startswith("dram"):
            return {}
        return {"fault_injector": FaultInjector(fault_config)}

    return build_kwargs


def _run_build_kwargs(args):
    """Compose the ``--fault-*``, ``--shards``, and ``--health-policy``
    flags into build kwargs."""
    faults = _fault_build_kwargs(args)
    shards = getattr(args, "shards", 1)
    policy_spec = getattr(args, "health_policy", None)
    if faults is None and shards == 1 and policy_spec is None:
        return None
    policy = None
    if policy_spec is not None:
        if shards == 1:
            raise SystemExit("--health-policy needs a sharded bank (--shards > 1)")
        from repro.health import HealthPolicy

        try:
            policy = HealthPolicy.parse(policy_spec)
        except ValueError as error:
            raise SystemExit(str(error))

    def build_kwargs(scheme):
        kwargs = dict(faults(scheme)) if faults is not None else {}
        if shards != 1 and not scheme.startswith("dram"):
            kwargs["num_shards"] = shards
            if policy is not None:
                kwargs["health_policy"] = policy
        return kwargs

    return build_kwargs


def _trace_out_path(template: str, scheme: str, schemes: List[str]) -> str:
    """Span-trace output path; multi-scheme runs get one file per scheme."""
    if len(schemes) == 1:
        return template
    stem, dot, suffix = template.rpartition(".")
    if not dot:
        return f"{template}.{scheme}"
    return f"{stem}.{scheme}.{suffix}"


def _dram_config(args, config):
    """Apply ``--dram-model`` / ``--channels`` / ``--treetop`` to an
    experiment config."""
    treetop = getattr(args, "treetop", None)
    if treetop is not None:
        try:
            config = replace(
                config, oram=replace(config.oram, treetop_levels=treetop)
            )
        except ValueError as exc:
            raise SystemExit(f"--treetop: {exc}")
    model = getattr(args, "dram_model", None)
    channels = getattr(args, "channels", None)
    if model is None and channels is None:
        return config
    if channels is not None and model is None:
        model = "channel"  # --channels alone selects the channel model
    if channels is None:
        channels = 4 if model == "channel" else 1
    if channels < 1:
        raise SystemExit("--channels must be at least 1")
    return replace(
        config, dram=replace(config.dram, model=model, num_channels=channels)
    )


def cmd_run(args) -> int:
    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    schemes = _parse_schemes(args.schemes)
    shards = getattr(args, "shards", 1)
    config = _dram_config(args, experiment_config())
    print(
        f"{trace.name}: {len(trace)} references over {trace.footprint_blocks} "
        f"blocks ({trace.write_fraction:.0%} writes)"
        + (f", {shards}-shard ORAM bank" if shards != 1 else "")
        + (
            f", {config.dram.num_channels}-channel DRAM"
            if config.dram.model == "channel"
            else ""
        )
    )
    profilers = {}
    recorders = {}
    hooks = []
    if getattr(args, "profile", False):
        hooks.append(lambda scheme, system: profilers.__setitem__(
            scheme, Profiler().attach(system)
        ))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.observability import JsonlTraceRecorder

        def attach_trace(scheme, system):
            if scheme.startswith("dram"):
                return  # DRAM baselines have no pipeline to trace
            path = _trace_out_path(trace_out, scheme, schemes)
            recorders[scheme] = system.attach_recorder(JsonlTraceRecorder(path))

        hooks.append(attach_trace)
    system_hook = None
    if hooks:
        def system_hook(scheme, system):
            for hook in hooks:
                hook(scheme, system)
    faults_on = _fault_build_kwargs(args)
    results = run_schemes(
        trace,
        schemes,
        config=config,
        warmup_fraction=args.warmup,
        system_hook=system_hook,
        build_kwargs=_run_build_kwargs(args),
    )
    baseline = results.get("oram") or next(iter(results.values()))
    rows = []
    for scheme in schemes:
        r = results[scheme]
        rows.append(
            [
                scheme,
                r.cycles,
                r.llc_misses,
                r.total_memory_accesses,
                r.speedup_over(baseline),
                r.merges,
                r.breaks,
                int(r.extra.get("stash_soft_overflows", 0)),
            ]
        )
    print(
        format_table(
            ["scheme", "cycles", "llc_misses", "mem_accesses",
             f"speedup_vs_{baseline.scheme}", "merges", "breaks", "soft_ovf"],
            rows,
        )
    )
    if config.dram.model == "channel":
        print(f"\nchannel interconnect ({config.dram.num_channels} channels):")
        channel_rows = []
        for scheme in schemes:
            r = results[scheme]
            if "interconnect_streamed_paths" not in r.extra:
                continue  # DRAM baselines have no ORAM interconnect
            channel_rows.append(
                [
                    scheme,
                    int(r.extra["interconnect_streamed_paths"]),
                    int(r.extra["interconnect_untracked_paths"]),
                    int(r.extra["interconnect_row_hits"]),
                    int(r.extra["interconnect_row_misses"]),
                    int(r.extra["interconnect_bank_wait_cycles"]),
                ]
            )
        print(
            format_table(
                ["scheme", "streamed", "untracked", "row_hits",
                 "row_misses", "bank_wait_cyc"],
                channel_rows,
            )
        )
    if faults_on is not None:
        print("\nfault injection (seed %d):" % args.fault_seed)
        fault_rows = []
        for scheme in schemes:
            r = results[scheme]
            fault_rows.append(
                [
                    scheme,
                    int(r.extra.get("injected_transients", 0)),
                    int(r.extra.get("injected_delays", 0)),
                    int(r.extra.get("fault_retries", 0)),
                    int(r.extra.get("fault_delay_cycles", 0)),
                    int(r.extra.get("forced_evictions", 0)),
                ]
            )
        print(
            format_table(
                ["scheme", "transients", "delays", "retries",
                 "delay_cycles", "forced_evict"],
                fault_rows,
            )
        )
    for scheme in schemes:
        profiler = profilers.get(scheme)
        if profiler is not None and profiler.profile is not None:
            print()
            print(profiler.profile.report())
    for scheme, recorder in recorders.items():
        recorder.close()
        print(
            f"\nwrote {recorder.span_count()} spans "
            f"({len(recorder.records)} records) for {scheme} to {recorder.path}"
        )
    return 0


def cmd_sweep(args) -> int:
    schemes = _parse_schemes(args.schemes)
    config = experiment_config()
    rows = []
    if args.parameter == "locality":
        for pct in (0, 20, 40, 60, 80, 100):
            trace = locality_mix_trace(pct / 100.0, accesses=args.accesses)
            res = run_schemes(trace, ["oram"] + schemes, config=config, warmup_fraction=args.warmup)
            rows.append(
                [f"{pct}%"] + [res[s].speedup_over(res["oram"]) for s in schemes]
            )
        print(format_table(["locality"] + schemes, rows))
        return 0
    if args.parameter == "stash":
        trace = build_trace(args.workload, args.accesses, seed=args.seed)
        for stash in (25, 50, 100, 200, 400):
            cfg = experiment_config(stash_blocks=stash)
            res = run_schemes(trace, ["oram"] + schemes, config=cfg, warmup_fraction=args.warmup)
            rows.append(
                [stash] + [res[s].speedup_over(res["oram"]) for s in schemes]
            )
        print(format_table(["stash"] + schemes, rows))
        return 0
    if args.parameter == "z":
        trace = build_trace(args.workload, args.accesses, seed=args.seed)
        for z in (3, 4, 5):
            cfg = experiment_config(bucket_size=z)
            res = run_schemes(trace, ["oram"] + schemes, config=cfg, warmup_fraction=args.warmup)
            rows.append([z] + [res[s].speedup_over(res["oram"]) for s in schemes])
        print(format_table(["Z"] + schemes, rows))
        return 0
    raise SystemExit(f"unknown sweep parameter '{args.parameter}'")


def cmd_trace(args) -> int:
    if args.report:
        from repro.observability import InMemoryRecorder, collect_trace, read_jsonl_trace

        recorder = InMemoryRecorder()
        recorder.records = read_jsonl_trace(args.report)
        starts = [r for r in recorder.events() if r["event"] == "run_start"]
        for event in starts:
            print(
                f"run: {event.get('workload', '?')} on {event.get('scheme', '?')} "
                f"({event.get('entries', '?')} trace entries)"
            )
        registry = collect_trace(recorder)
        print(registry.render(f"trace report ({args.report})"))
        return 0
    if not args.output:
        raise SystemExit("either -o/--output (export) or --report is required")
    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    trace.save(args.output)
    print(
        f"wrote {len(trace)} entries ({trace.footprint_blocks} blocks) "
        f"to {args.output}"
    )
    return 0


def cmd_metrics(args) -> int:
    """One traced run: metrics registry report + live uniformity monitor."""
    from repro.observability import (
        InMemoryRecorder,
        LeafUniformityMonitor,
        collect_trace,
    )

    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    if args.scheme not in KNOWN_SCHEMES or args.scheme.startswith("dram"):
        raise SystemExit(f"metrics needs an ORAM scheme, not '{args.scheme}'")
    # Probe geometry first: the monitor needs the scaled tree's leaf count.
    config = experiment_config()
    num_leaves = config.oram.scaled_to_footprint(trace.footprint_blocks).num_leaves
    monitor = LeafUniformityMonitor(num_leaves, window=args.window)
    system = SecureSystem.build(
        args.scheme, trace.footprint_blocks, config, observer=monitor
    )
    recorder = system.attach_recorder(InMemoryRecorder())
    result = system.run(trace)
    print(
        f"{trace.name} on {args.scheme}: {result.cycles:,} cycles, "
        f"{result.llc_misses:,} LLC misses"
    )
    registry = system.metrics()
    collect_trace(recorder, registry)
    print(registry.render("metrics"))
    monitor.flush()
    print(monitor.render())
    return 0 if monitor.healthy else 1


def cmd_audit(args) -> int:
    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    observer = AccessObserver()
    system = SecureSystem.build(
        args.scheme, trace.footprint_blocks, experiment_config(), observer=observer
    )
    system.run(trace)
    leaves = observer.leaves()
    num_leaves = system.backend.oram.config.num_leaves
    _, p = chi_square_uniformity(leaves, num_leaves)
    corr = lag_autocorrelation(leaves, lag=1)
    print(f"{len(leaves)} path accesses over {num_leaves} leaves")
    print(f"uniformity chi^2 p-value: {p:.4f}")
    print(f"lag-1 autocorrelation:    {corr:+.4f}")
    verdict = "OBLIVIOUS" if p > 1e-3 and abs(corr) < 0.05 else "SUSPECT"
    print(f"verdict: {verdict}")
    return 0 if verdict == "OBLIVIOUS" else 1


def cmd_parity(args) -> int:
    """Drive every ORAMScheme implementation with one shared seeded trace."""
    from repro.controller.scheme import SCHEME_FACTORIES, build_scheme
    from repro.faults.fsck import run_fsck
    from repro.utils.rng import DeterministicRng

    if args.scheme == "all":
        names = list(SCHEME_FACTORIES)
    elif args.scheme in SCHEME_FACTORIES:
        names = [args.scheme]
    else:
        known = ", ".join(sorted(SCHEME_FACTORIES)) + ", all"
        raise SystemExit(f"unknown ORAM scheme '{args.scheme}' (known: {known})")
    rng = DeterministicRng(args.seed)
    addrs = [rng.randint(0, args.blocks - 1) for _ in range(args.accesses)]
    rows = []
    for name in names:
        scheme = build_scheme(
            name, levels=args.levels, num_blocks=args.blocks, seed=args.seed
        )
        max_on_chip = 0
        drains = 0
        for addr in addrs:
            scheme.begin_access([addr])
            scheme.finish_access()
            drains += scheme.drain_stash()
            if scheme.stash_occupancy > max_on_chip:
                max_on_chip = scheme.stash_occupancy
        report = run_fsck(scheme)
        rows.append(
            [name, len(addrs), max_on_chip, drains,
             "clean" if report.ok else f"{len(report.errors)} error(s)"]
        )
    print(
        format_table(
            ["scheme", "accesses", "max_on_chip", "bg_evictions", "fsck"], rows
        )
    )
    return 0 if all(row[-1] == "clean" for row in rows) else 1


def cmd_parallel(args) -> int:
    """Race the process-parallel shard runtime against the serial bank."""
    import dataclasses
    import tempfile
    import time

    scheme = args.scheme
    unsupported = (
        scheme not in KNOWN_SCHEMES
        or scheme.startswith("dram")
        or scheme.endswith(("_pre", "_spre", "_mpre", "_intvl"))
    )
    if unsupported:
        raise SystemExit(
            f"scheme '{scheme}' cannot run on a sharded bank "
            "(base ORAM schemes only; no prefetch/periodic suffixes)"
        )
    from repro.parallel import ParallelShardRuntime, run_serial_reference
    from repro.parallel.merge import requests_from_trace

    health_policy = None
    if getattr(args, "health_policy", None):
        from repro.health import HealthPolicy

        try:
            health_policy = HealthPolicy.parse(args.health_policy)
        except ValueError as error:
            raise SystemExit(str(error))

    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    requests = requests_from_trace(trace)
    config = _dram_config(args, experiment_config())
    workers = args.parallel_workers
    print(
        f"{trace.name}: {len(requests)} demand requests over "
        f"{trace.footprint_blocks} blocks, {workers}-worker parallel bank"
        + (
            f", {config.dram.num_channels}-channel DRAM"
            if config.dram.model == "channel"
            else ""
        )
    )
    begin = time.perf_counter()
    serial = run_serial_reference(
        scheme,
        trace.footprint_blocks,
        requests,
        config,
        num_shards=workers,
        workload=trace.name,
    )
    serial_s = time.perf_counter() - begin
    with tempfile.TemporaryDirectory(prefix="repro-parallel-") as checkpoint_dir:
        with ParallelShardRuntime(
            scheme,
            trace.footprint_blocks,
            config,
            workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            batch_size=args.batch,
            health_policy=health_policy,
        ) as runtime:
            begin = time.perf_counter()
            parallel = runtime.run(requests, workload=trace.name, fsck=args.fsck)
            parallel_s = time.perf_counter() - begin
            restarts = runtime.total_restarts()
    identical = dataclasses.asdict(serial) == dataclasses.asdict(parallel)
    rows = [
        ["serial", f"{serial_s:.2f}", serial.cycles, serial.demand_requests],
        ["parallel", f"{parallel_s:.2f}", parallel.cycles, parallel.demand_requests],
    ]
    print(format_table(["mode", "wall_s", "sim_cycles", "demand"], rows))
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(
        f"\nwall-clock speedup: {speedup:.2f}x   merged result: "
        + ("bit-identical to serial" if identical else "MISMATCH")
        + (f"   worker restarts: {restarts}" if restarts else "")
    )
    return 0 if identical else 1


def cmd_serve(args) -> int:
    """Drive the deadline-aware serving front end over a sharded bank."""
    from repro.config import ServeConfig
    from repro.observability import collect_serve
    from repro.serve import ClosedLoopSource, OpenLoopSource, ServingFrontEnd

    scheme = args.scheme
    unsupported = (
        scheme not in KNOWN_SCHEMES
        or scheme.startswith("dram")
        or scheme.endswith(("_pre", "_spre", "_mpre", "_intvl"))
    )
    if unsupported:
        raise SystemExit(
            f"scheme '{scheme}' cannot run on a sharded bank "
            "(base ORAM schemes only; no prefetch/periodic suffixes)"
        )
    weights = None
    if args.weights:
        weights = [int(w) for w in args.weights.split(",") if w.strip()]
        if len(weights) != args.tenants:
            raise SystemExit(
                f"--weights names {len(weights)} tenants, --tenants says "
                f"{args.tenants}"
            )
    health_policy = None
    if args.health_policy:
        from repro.health import HealthPolicy

        try:
            health_policy = HealthPolicy.parse(args.health_policy)
        except ValueError as error:
            raise SystemExit(str(error))
    if args.mode == "open":
        source = OpenLoopSource.synthetic(
            args.tenants,
            args.requests,
            footprint_per_tenant=args.footprint,
            gap_mean=args.gap,
            locality=args.locality,
            write_fraction=args.write_frac,
            deadline_cycles=args.deadline,
            weights=weights,
            seed=args.seed,
        )
    else:
        source = ClosedLoopSource(
            args.tenants,
            args.clients,
            args.requests,
            footprint_per_tenant=args.footprint,
            think_mean=args.think,
            write_fraction=args.write_frac,
            deadline_cycles=args.deadline,
            weights=weights,
            seed=args.seed,
        )
    serve_config = ServeConfig(
        enabled=not args.bypass,
        batch_size=args.batch,
        deadline_cycles=args.deadline,
        queue_capacity=args.queue_capacity,
        max_backlog=args.max_backlog,
        coalesce=not args.no_coalesce,
    )
    workload = f"serve_{args.mode}"
    # One shared config for the live bank AND the replay check below --
    # a --treetop override must shape both identically or the replayed
    # SimResult diverges on public timing alone.
    config = _dram_config(args, experiment_config())
    frontend = ServingFrontEnd.build(
        scheme,
        source.footprint_blocks,
        config,
        args.shards,
        serve_config=serve_config,
        health_policy=health_policy,
        workload=workload,
    )
    mode_desc = (
        f"open loop, mean gap {args.gap:g}"
        if args.mode == "open"
        else f"closed loop, {args.clients} clients/tenant, think {args.think:g}"
    )
    print(
        f"{workload}: {args.tenants} tenants over a {args.shards}-shard "
        f"'{scheme}' bank ({mode_desc}, deadline {args.deadline:,})"
    )
    report = frontend.run(source)
    print(report.render())
    if args.metrics:
        print(collect_serve(frontend).render("serve metrics"))
    if args.parallel_check:
        if health_policy is not None:
            raise SystemExit(
                "--parallel-check needs a health-free bank: quarantine "
                "dummy padding is invisible to the replayed schedule"
            )
        import dataclasses

        from repro.parallel.merge import replay_issued_schedule

        replayed = replay_issued_schedule(
            scheme,
            source.footprint_blocks,
            frontend.issued,
            config,
            args.shards,
            workload=workload,
            parallel=True,
        )
        if replayed == report.sim:
            print(
                f"parallel check: {len(frontend.issued)} issued accesses "
                "replay bit-identically through the worker runtime"
            )
        else:
            print("parallel check FAILED: replayed SimResult differs")
            for field in dataclasses.fields(replayed):
                ours = getattr(report.sim, field.name)
                theirs = getattr(replayed, field.name)
                if ours != theirs:
                    print(f"  {field.name}: serve={ours} replay={theirs}")
            return 1
    return 0


def cmd_chaos(args) -> int:
    """Cross-layer chaos storm: KV ladder + parallel runtime + bank plane."""
    import json

    from repro.faults.chaos import ChaosScenario, chaos_policy, run_chaos
    from repro.health import HealthPolicy

    if args.ops < 0:
        raise SystemExit("--ops must be >= 0")
    # The default 20k-op soak splits 40/20/40 across the layers.
    parallel_ops = (2 * args.ops) // 5
    kv_ops = args.ops - 2 * ((2 * args.ops) // 5)
    scenario = ChaosScenario(
        name=args.name,
        seed=args.seed,
        scheme=args.scheme,
        num_shards=args.shards,
        parallel_ops=parallel_ops,
        kv_ops=kv_ops,
        bank_ops=(2 * args.ops) // 5,
    )
    policy = chaos_policy()
    if args.health_policy:
        try:
            policy = HealthPolicy.parse(args.health_policy)
        except ValueError as error:
            raise SystemExit(str(error))
    layers = tuple(
        layer.strip() for layer in args.layers.split(",") if layer.strip()
    )
    report = run_chaos(scenario, policy, layers=layers)
    print(report.render())
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.output}")
    return 0 if report.ok else 1


# --------------------------------------------------------------------- main
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PrORAM reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and schemes").set_defaults(func=cmd_list)

    def common(p, workload_required=True):
        p.add_argument("-w", "--workload", required=workload_required, default="ocean_c")
        p.add_argument("--accesses", type=int, default=60_000)
        p.add_argument("--warmup", type=float, default=0.5)
        p.add_argument("--seed", type=int, default=42)

    run_p = sub.add_parser("run", help="run one workload through schemes")
    common(run_p)
    run_p.add_argument("-s", "--schemes", default="oram,stat,dyn")
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="report simulator throughput (accesses/sec, phase timers, "
        "component counters) per scheme",
    )
    run_p.add_argument(
        "--fault-transient",
        type=float,
        default=0.0,
        metavar="RATE",
        help="per-access transient read-failure probability (ORAM schemes)",
    )
    run_p.add_argument(
        "--fault-delay",
        type=float,
        default=0.0,
        metavar="RATE",
        help="per-access delayed-response probability (ORAM schemes)",
    )
    run_p.add_argument(
        "--fault-delay-cycles",
        type=int,
        default=200,
        metavar="CYCLES",
        help="extra latency per delayed response",
    )
    run_p.add_argument(
        "--fault-seed",
        type=int,
        default=1,
        help="fault-schedule seed (same seed -> same schedule)",
    )
    run_p.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="channel-interleave the ORAM over N independent controller "
        "instances (1 = the paper's single serialized controller)",
    )
    run_p.add_argument(
        "--health-policy",
        metavar="KEY=VAL,...",
        default=None,
        help="attach a per-shard circuit-breaker control plane to the "
        "sharded bank (requires --shards > 1); keys are HealthPolicy "
        "fields, e.g. window=32,quarantine_cooldown=16",
    )
    run_p.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a per-access span trace (JSONL) per ORAM scheme; "
        "multi-scheme runs insert the scheme name before the suffix",
    )
    run_p.add_argument(
        "--dram-model",
        choices=["flat", "channel"],
        default=None,
        help="memory interconnect: 'flat' (the paper's scalar path cost, "
        "default) or 'channel' (stream each path's buckets over "
        "channel/bank-aware DRAM)",
    )
    run_p.add_argument(
        "--channels",
        type=int,
        default=None,
        metavar="N",
        help="DRAM channels for the channel interconnect (implies "
        "--dram-model channel; bandwidth_gbps is per channel)",
    )
    run_p.add_argument(
        "--treetop",
        dest="treetop",
        type=int,
        default=None,
        metavar="K",
        help="pin the top K levels of the nominal ORAM tree in on-chip "
        "SRAM; every path access streams only the bottom levels "
        "(DESIGN.md §13)",
    )
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="parameter sweeps (locality/stash/z)")
    sweep_p.add_argument("parameter", choices=["locality", "stash", "z"])
    common(sweep_p, workload_required=False)
    sweep_p.add_argument("-s", "--schemes", default="stat,dyn")
    sweep_p.set_defaults(func=cmd_sweep)

    trace_p = sub.add_parser(
        "trace", help="export a workload trace, or summarize a span trace"
    )
    common(trace_p, workload_required=False)
    trace_p.add_argument("-o", "--output", default=None)
    trace_p.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="summarize a span-trace JSONL written by `repro run --trace-out`",
    )
    trace_p.set_defaults(func=cmd_trace)

    metrics_p = sub.add_parser(
        "metrics", help="metrics registry + leaf-uniformity report for one run"
    )
    common(metrics_p)
    metrics_p.add_argument("-s", "--scheme", default="dyn")
    metrics_p.add_argument(
        "--window",
        type=int,
        default=4096,
        metavar="N",
        help="leaf observations per uniformity test window",
    )
    metrics_p.set_defaults(func=cmd_metrics)

    audit_p = sub.add_parser("audit", help="obliviousness audit of a scheme")
    common(audit_p)
    audit_p.add_argument("-s", "--scheme", default="dyn")
    audit_p.set_defaults(func=cmd_audit)

    parallel_p = sub.add_parser(
        "parallel",
        help="race the process-parallel shard runtime against the serial bank",
    )
    common(parallel_p, workload_required=False)
    parallel_p.set_defaults(accesses=8_000)
    parallel_p.add_argument("-s", "--scheme", default="dyn")
    parallel_p.add_argument(
        "--parallel-workers",
        type=int,
        default=2,
        metavar="N",
        help="shard/worker-process count (one ORAM channel per process)",
    )
    parallel_p.add_argument(
        "--batch",
        type=int,
        default=64,
        metavar="REQUESTS",
        help="requests per shipped batch",
    )
    parallel_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="BATCHES",
        help="worker checkpoint cadence (1 = after every batch)",
    )
    parallel_p.add_argument(
        "--fsck",
        action="store_true",
        help="audit every shard's ORAM invariants in-worker after the run",
    )
    parallel_p.add_argument(
        "--health-policy",
        metavar="KEY=VAL[,...]",
        help="supervise workers with per-shard circuit breakers "
        "(heartbeats, deadlines, quarantine fallback); see DESIGN.md §10",
    )
    parallel_p.add_argument(
        "--dram-model",
        choices=["flat", "channel"],
        default=None,
        help="memory interconnect inside each worker's shard (see `run`)",
    )
    parallel_p.add_argument(
        "--channels",
        type=int,
        default=None,
        metavar="N",
        help="DRAM channels per shard (implies --dram-model channel)",
    )
    parallel_p.add_argument(
        "--treetop",
        dest="treetop",
        type=int,
        default=None,
        metavar="K",
        help="pin the top K nominal tree levels on-chip in every shard "
        "(see `run`)",
    )
    parallel_p.set_defaults(func=cmd_parallel)

    serve_p = sub.add_parser(
        "serve",
        help="deadline-aware multi-tenant serving front end over a "
        "sharded bank (open/closed-loop load generator)",
    )
    serve_p.add_argument("-s", "--scheme", default="dyn")
    serve_p.add_argument("--mode", choices=["open", "closed"], default="open")
    serve_p.add_argument("--shards", type=int, default=4, metavar="N")
    serve_p.add_argument("--tenants", type=int, default=3, metavar="K")
    serve_p.add_argument(
        "--weights",
        default=None,
        metavar="W0,W1,...",
        help="per-tenant fair-share weights (default: equal)",
    )
    serve_p.add_argument(
        "--requests",
        type=int,
        default=2_000,
        metavar="N",
        help="open loop: requests per tenant; closed loop: per client",
    )
    serve_p.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="closed loop: client population per tenant",
    )
    serve_p.add_argument(
        "--footprint", type=int, default=2_048, metavar="BLOCKS",
        help="private address region per tenant",
    )
    serve_p.add_argument(
        "--gap", type=float, default=600.0, metavar="CYCLES",
        help="open loop: mean inter-arrival gap per tenant",
    )
    serve_p.add_argument(
        "--think", type=float, default=5_000.0, metavar="CYCLES",
        help="closed loop: mean client think time",
    )
    serve_p.add_argument("--locality", type=float, default=0.5)
    serve_p.add_argument("--write-frac", type=float, default=0.2)
    serve_p.add_argument("--batch", type=int, default=8, metavar="N",
                         help="per-shard batch quota")
    serve_p.add_argument("--deadline", type=int, default=30_000,
                         metavar="CYCLES")
    serve_p.add_argument("--queue-capacity", type=int, default=64, metavar="N")
    serve_p.add_argument("--max-backlog", type=int, default=512, metavar="N")
    serve_p.add_argument("--no-coalesce", action="store_true",
                         help="disable super-block request coalescing")
    serve_p.add_argument(
        "--bypass",
        action="store_true",
        help="disable every serving policy (bit-identical to the raw bank)",
    )
    serve_p.add_argument(
        "--health-policy",
        metavar="KEY=VAL[,...]",
        help="attach per-shard circuit breakers; DEGRADED shards get "
        "smaller batch quotas, QUARANTINED shards reroute at admission",
    )
    serve_p.add_argument(
        "--parallel-check",
        action="store_true",
        help="replay the issued schedule through the process-parallel "
        "runtime and require a bit-identical SimResult",
    )
    serve_p.add_argument("--metrics", action="store_true",
                         help="print the serve.* metrics registry")
    serve_p.add_argument("--seed", type=int, default=42)
    serve_p.add_argument(
        "--treetop",
        dest="treetop",
        type=int,
        default=None,
        metavar="K",
        help="pin the top K nominal tree levels on-chip in every shard "
        "(see `run`)",
    )
    serve_p.set_defaults(func=cmd_serve)

    chaos_p = sub.add_parser(
        "chaos",
        help="seed-deterministic multi-fault storm across all resilience "
        "layers (KV ladder, parallel runtime, in-process bank)",
    )
    chaos_p.add_argument("--name", default="storm")
    chaos_p.add_argument("--ops", type=int, default=20_000,
                         help="total ops, split 40/20/40 over parallel/kv/bank")
    chaos_p.add_argument("--shards", type=int, default=4, metavar="N")
    chaos_p.add_argument("-s", "--scheme", default="dyn")
    chaos_p.add_argument("--seed", type=int, default=11)
    chaos_p.add_argument(
        "--layers",
        default="kv,parallel,bank",
        help="comma-separated subset of kv,parallel,bank",
    )
    chaos_p.add_argument(
        "--health-policy",
        metavar="KEY=VAL,...",
        default=None,
        help="override the storm-tuned HealthPolicy (same grammar as "
        "`repro run --health-policy`)",
    )
    chaos_p.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="write the full JSON report")
    chaos_p.set_defaults(func=cmd_chaos)

    parity_p = sub.add_parser(
        "parity", help="run one seeded trace through every ORAMScheme"
    )
    parity_p.add_argument(
        "--scheme",
        default="all",
        help="path | ring | tree | sqrt | all (default: all)",
    )
    parity_p.add_argument("--accesses", type=int, default=2_000)
    parity_p.add_argument("--blocks", type=int, default=96)
    parity_p.add_argument("--levels", type=int, default=6)
    parity_p.add_argument("--seed", type=int, default=7)
    parity_p.set_defaults(func=cmd_parity)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
