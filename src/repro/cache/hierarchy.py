"""Two-level inclusive cache hierarchy: per-core L1 + shared LLC (Table 1).

The simulator models a single tile (one memory controller, section 5.1), so
there is one L1 and one LLC.  The hierarchy is *inclusive*: every L1 line
is also in the LLC, and evicting an LLC line back-invalidates the L1.  In
the ORAM configurations every line leaving the LLC must return to the ORAM
domain (the block was removed from the tree when fetched), so the hierarchy
reports each LLC eviction -- dirty or clean -- to a victim callback.

Prefetched blocks are inserted into the LLC only (not the L1), matching
"the other blocks are prefetched and put into the LLC" (section 3.2); their
first use is therefore an LLC hit, which is where the scheme's hit-bit
update hooks in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cache.set_associative import EvictedLine, SetAssociativeCache
from repro.config import CacheConfig


@dataclass
class HierarchyAccess:
    """Outcome of one processor access."""

    level: str  # "l1", "llc", or "miss"
    latency: int


class CacheHierarchy:
    """L1 + shared LLC with inclusive back-invalidation."""

    def __init__(
        self,
        l1_config: CacheConfig,
        llc_config: CacheConfig,
        victim_callback: Optional[Callable[[int, bool], None]] = None,
    ):
        self.l1 = SetAssociativeCache(l1_config, name="l1")
        self.llc = SetAssociativeCache(llc_config, name="llc")
        #: called as (addr, dirty) for every line leaving the LLC
        self.victim_callback = victim_callback
        self.llc_hits_on_prefetch_path = 0
        # Access outcomes are value objects with config-constant latencies;
        # reusing three shared instances avoids one allocation per
        # processor access.  Callers treat them as read-only.
        self._l1_outcome = HierarchyAccess("l1", l1_config.hit_latency)
        self._llc_outcome = HierarchyAccess(
            "llc", l1_config.hit_latency + llc_config.hit_latency
        )
        self._miss_outcome = HierarchyAccess("miss", 0)

    # ----------------------------------------------------------------- access
    def access(self, addr: int, is_write: bool) -> HierarchyAccess:
        """Processor load/store at line address ``addr``.

        On an L1 miss / LLC hit the line is promoted into the L1.  On a full
        miss the caller must fetch from memory and then call
        :meth:`fill_demand`.
        """
        if self.l1.lookup(addr, is_write):
            if is_write:
                # Write-through of the dirty bit to the LLC keeps eviction
                # bookkeeping simple (the LLC is the point of coherence with
                # the ORAM domain).
                self.llc.mark_dirty(addr)
            return self._l1_outcome
        if self.llc.lookup(addr, is_write):
            self._promote_to_l1(addr)
            return self._llc_outcome
        return self._miss_outcome

    def _promote_to_l1(self, addr: int) -> None:
        victim = self.l1.insert(addr, dirty=False)
        # Inclusive hierarchy: the L1 victim's data is still in the LLC
        # (dirtiness was written through), so the eviction is silent.
        del victim

    # ------------------------------------------------------------------ fills
    def fill_demand(self, addr: int, is_write: bool) -> None:
        """Install a demand-fetched line in both levels."""
        self._insert_llc(addr, dirty=is_write)
        self._promote_to_l1(addr)

    def fill_prefetch(self, addr: int) -> None:
        """Install a prefetched line in the LLC only."""
        self._insert_llc(addr, dirty=False)

    def _insert_llc(self, addr: int, dirty: bool) -> None:
        victim = self.llc.insert(addr, dirty=dirty)
        if victim is not None:
            self._handle_llc_eviction(victim)

    def _handle_llc_eviction(self, victim: EvictedLine) -> None:
        # Inclusive: pull the line out of the L1 as well; the L1 copy's
        # dirtiness is already reflected in the LLC state (write-through of
        # the dirty bit in :meth:`access`).
        self.l1.invalidate(victim.addr)
        if self.victim_callback is not None:
            self.victim_callback(victim.addr, victim.dirty)

    def invalidate(self, addr: int) -> None:
        """Drop a line entirely (tests)."""
        self.l1.invalidate(addr)
        victim = self.llc.invalidate(addr)
        if victim is not None and self.victim_callback is not None:
            self.victim_callback(victim.addr, victim.dirty)

    # ------------------------------------------------------------------- misc
    def contains(self, addr: int) -> bool:
        """LLC tag probe (the merge algorithm's neighbor check)."""
        return self.llc.contains(addr)

    def resident_addresses(self) -> List[int]:
        return self.llc.resident_addresses()
