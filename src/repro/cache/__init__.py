"""Set-associative write-back caches (Table 1: 32 KB L1, 512 KB shared LLC)."""

from repro.cache.hierarchy import CacheHierarchy, HierarchyAccess
from repro.cache.set_associative import EvictedLine, SetAssociativeCache

__all__ = [
    "CacheHierarchy",
    "EvictedLine",
    "HierarchyAccess",
    "SetAssociativeCache",
]
