"""A set-associative, write-back, write-allocate cache with LRU replacement.

Addresses are *block* (cacheline) addresses throughout the simulator; the
byte offset within a line never matters to any experiment, so traces and
caches all operate at line granularity.

The LLC additionally supports the tag probe the merge algorithm needs
(section 4.5.2: "we need to probe the LLC to check if the neighbor block B'
exists in the cache.  Only the tag array of the LLC needs to be accessed"),
exposed as :meth:`SetAssociativeCache.contains`, which does not disturb
replacement state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.config import CacheConfig


@dataclass(slots=True)
class EvictedLine:
    """A victim pushed out of a cache set."""

    addr: int
    dirty: bool


class SetAssociativeCache:
    """LRU set-associative cache storing presence + dirty state per line."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        # Each set maps addr -> dirty flag; OrderedDict order is LRU->MRU.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.probe_count = 0

    def _set_for(self, addr: int) -> "OrderedDict[int, bool]":
        # Kept for tests/introspection; the access methods below inline the
        # index arithmetic (they are called millions of times per run).
        return self._sets[addr % self._num_sets]

    # ----------------------------------------------------------------- access
    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Demand access: True on hit.  Updates LRU order and dirty state."""
        cache_set = self._sets[addr % self._num_sets]
        if addr in cache_set:
            cache_set.move_to_end(addr)
            if is_write:
                cache_set[addr] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Tag probe: presence check with no replacement side effects."""
        self.probe_count += 1
        return addr in self._sets[addr % self._num_sets]

    def insert(self, addr: int, dirty: bool = False, at_mru: bool = True) -> Optional[EvictedLine]:
        """Fill a line, evicting the LRU victim of the set if necessary.

        ``at_mru`` selects the replacement-priority position the line ends
        up in, whether or not it was already present: ``True`` installs or
        promotes the line at the MRU end (demand fills), ``False`` installs
        or demotes it at the LRU end (low-priority fills that should be the
        set's next victim).  An already-present line keeps its dirty state
        (OR-ed with ``dirty``), only its position moves.

        Returns the victim (None when the set had room or the line was
        already present).
        """
        cache_set = self._sets[addr % self._num_sets]
        if addr in cache_set:
            cache_set[addr] = cache_set[addr] or dirty
            cache_set.move_to_end(addr, last=at_mru)
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self._assoc:
            victim_addr, victim_dirty = cache_set.popitem(last=False)
            victim = EvictedLine(victim_addr, victim_dirty)
            self.evictions += 1
        cache_set[addr] = dirty
        if not at_mru:
            cache_set.move_to_end(addr, last=False)
        return victim

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove a line (inclusive-hierarchy back-invalidation)."""
        cache_set = self._sets[addr % self._num_sets]
        if addr in cache_set:
            dirty = cache_set.pop(addr)
            return EvictedLine(addr, dirty)
        return None

    def mark_dirty(self, addr: int) -> None:
        cache_set = self._sets[addr % self._num_sets]
        if addr in cache_set:
            cache_set[addr] = True

    # ------------------------------------------------------------------ misc
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_addresses(self) -> List[int]:
        """All line addresses currently cached (tests / invariant checks)."""
        out: List[int] = []
        for cache_set in self._sets:
            out.extend(cache_set.keys())
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
