"""Span schema for per-access traces.

One **span** describes one complete trip through the
:class:`~repro.controller.pipeline.AccessPipeline`: which request kind
entered (demand / prefetch / writeback / periodic dummy), which shard
served it, the cycle interval it occupied, how many cycles each pipeline
phase contributed, and the side effects it produced (super-block merges
and breaks, fault retries, stash occupancy after the access).

The hot path emits spans as plain dicts -- building a dataclass per
access would roughly double the allocation cost of tracing -- so this
module is the *schema* authority: :data:`SPAN_FIELDS` documents every
key a pipeline span carries, and :class:`Span` is the typed wrapper used
when reading traces back (CLI reports, tests, offline analysis).

Recorders also carry **events**: non-access records such as run start /
end markers and periodic-schedule dummies.  Events share the trace
stream and are distinguished by their ``"event"`` key; spans have none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Every key of a pipeline span, in schema order.  ``phases`` maps phase
#: name -> cycles for exactly the phases the pipeline ran (posmap,
#: path_read, remap, writeback).
SPAN_FIELDS: Tuple[str, ...] = (
    "seq",          # global emission index (0-based, per recorder)
    "kind",         # "demand" | "prefetch" | "writeback"
    "addr",         # block address served (global address on a sharded bank)
    "shard",        # shard index (0 for a single controller)
    "start",        # cycle the access issued
    "end",          # cycle the access completed
    "phases",       # {phase name: cycles}
    "fault_delay",  # extra cycles spent in fault recovery
    "retries",      # fault retries consumed by this access
    "evictions",    # background evictions folded into this access
    "posmap_extra", # extra path accesses for PosMap recursion misses
    "stash",        # stash occupancy after the access completed
    "merges",       # super-block merges performed during the access
    "breaks",       # super-block breaks performed during the access
)


@dataclass
class Span:
    """Typed view of one pipeline span (used on the *read* side)."""

    seq: int
    kind: str
    addr: int
    shard: int
    start: int
    end: int
    phases: Dict[str, int] = field(default_factory=dict)
    fault_delay: int = 0
    retries: int = 0
    evictions: int = 0
    posmap_extra: int = 0
    stash: int = 0
    merges: int = 0
    breaks: int = 0

    @property
    def latency(self) -> int:
        return self.end - self.start

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Span":
        """Build a span from a recorded dict (e.g. a parsed JSONL line)."""
        return cls(**{name: record[name] for name in SPAN_FIELDS if name in record})


def is_span(record: Mapping[str, Any]) -> bool:
    """True for access spans, False for event records."""
    return "event" not in record
