"""Live leaf-histogram uniformity monitoring.

Path ORAM's security argument rests on every path access touching a leaf
drawn uniformly at random (paper section 2.1); a skewed leaf histogram is
the first observable symptom of a remap bug.  The offline harness in
:mod:`repro.security.statistics` audits finished runs; this monitor does
the same chi-squared test *during* a run, over a sliding window of recent
leaf observations, so long soaks can flag a uniformity regression at the
window where it appears instead of diluting it into millions of healthy
accesses.

The monitor speaks the :class:`~repro.security.observer.AccessObserver`
protocol (``on_path_access(leaf, kind)``), so it drops in anywhere an
observer is accepted -- including *in front of* an existing observer via
``forward_to``, which lets an audit run keep its full transcript while
the monitor watches windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.security.statistics import INSUFFICIENT_DATA, chi_square_uniformity


@dataclass
class UniformityCheck:
    """Result of one windowed chi-squared test."""

    window_index: int
    samples: int
    statistic: float
    p_value: float

    @property
    def sufficient(self) -> bool:
        return (self.statistic, self.p_value) != INSUFFICIENT_DATA or self.samples > 0


class LeafUniformityMonitor:
    """Sliding-window chi-squared uniformity test over observed leaves.

    Args:
        num_leaves: leaf-label space size of the monitored tree.
        window: observations per test window.
        alpha: p-value threshold below which a window is flagged.
        forward_to: optional downstream observer that still receives every
            ``on_path_access`` call (observer chaining).
    """

    def __init__(
        self,
        num_leaves: int,
        window: int = 4096,
        alpha: float = 1e-4,
        forward_to=None,
    ):
        if num_leaves < 2:
            raise ValueError("need at least two leaves to test uniformity")
        self.num_leaves = num_leaves
        self.window = window
        self.alpha = alpha
        self.forward_to = forward_to
        self.checks: List[UniformityCheck] = []
        self._buffer: List[int] = []
        self._windows_seen = 0

    # ------------------------------------------------------ observer protocol
    def on_path_access(self, leaf: int, kind: str = "real") -> None:
        self._buffer.append(leaf)
        if len(self._buffer) >= self.window:
            self._run_check()
        if self.forward_to is not None:
            self.forward_to.on_path_access(leaf, kind)

    # --------------------------------------------------------------- checking
    def _run_check(self) -> None:
        statistic, p_value = chi_square_uniformity(self._buffer, self.num_leaves)
        self.checks.append(
            UniformityCheck(
                window_index=self._windows_seen,
                samples=len(self._buffer),
                statistic=statistic,
                p_value=p_value,
            )
        )
        self._windows_seen += 1
        self._buffer.clear()

    def flush(self) -> Optional[UniformityCheck]:
        """Test whatever partial window remains (end of run).

        A short tail returns an insufficient-data check (p = 1.0) instead
        of raising -- exactly the guard added to ``chi_square_uniformity``.
        """
        if not self._buffer:
            return None
        self._run_check()
        return self.checks[-1]

    # ---------------------------------------------------------------- queries
    @property
    def flagged(self) -> List[UniformityCheck]:
        return [check for check in self.checks if check.p_value < self.alpha]

    @property
    def healthy(self) -> bool:
        """True when no completed window fell below the alpha threshold."""
        return not self.flagged

    def render(self) -> str:
        lines = [
            f"leaf uniformity: {len(self.checks)} windows of {self.window} "
            f"(alpha={self.alpha:g})"
        ]
        if not self.checks:
            lines.append("  no complete windows observed")
            return "\n".join(lines)
        worst = min(self.checks, key=lambda check: check.p_value)
        lines.append(
            f"  worst window #{worst.window_index}: chi2={worst.statistic:.1f} "
            f"p={worst.p_value:.4g} over {worst.samples} samples"
        )
        status = "healthy" if self.healthy else f"FLAGGED ({len(self.flagged)} windows)"
        lines.append(f"  status: {status}")
        return "\n".join(lines)
