"""Structured tracing and metrics for the PrORAM simulator.

The subsystem has four parts (see DESIGN.md section 8):

* **Spans** (:mod:`.spans`) -- the per-access record schema: one span per
  trip through the access pipeline, carrying cycle timestamps, per-phase
  attribution, stash occupancy, super-block merge/break counts, and
  fault/retry outcomes.
* **Recorders** (:mod:`.recorder`) -- span sinks.  ``None`` /
  :class:`NullRecorder` is the zero-cost disabled state (the golden
  ``SimResult`` is bit-identical); :class:`InMemoryRecorder` backs tests
  and CLI reports; :class:`JsonlTraceRecorder` writes deterministic
  one-object-per-line trace files.
* **Metrics** (:mod:`.metrics`, :mod:`.collect`) -- counters, gauges and
  cycle-bucketed histograms in a :class:`MetricsRegistry`, populated by
  snapshot collectors that replace the ad-hoc stats dicts.
* **Uniformity** (:mod:`.uniformity`) -- a live leaf-histogram
  chi-squared monitor built on :mod:`repro.security.statistics`.
"""

from .collect import (
    collect_parallel,
    collect_recovery,
    collect_serve,
    collect_system,
    collect_trace,
    system_counters,
)
from .metrics import Counter, CycleHistogram, Gauge, MetricsRegistry
from .recorder import (
    InMemoryRecorder,
    JsonlTraceRecorder,
    NullRecorder,
    TraceRecorder,
    attach_recorder,
    read_jsonl_trace,
)
from .spans import SPAN_FIELDS, Span, is_span
from .uniformity import LeafUniformityMonitor, UniformityCheck

__all__ = [
    "Counter",
    "CycleHistogram",
    "Gauge",
    "InMemoryRecorder",
    "JsonlTraceRecorder",
    "LeafUniformityMonitor",
    "MetricsRegistry",
    "NullRecorder",
    "SPAN_FIELDS",
    "Span",
    "TraceRecorder",
    "UniformityCheck",
    "attach_recorder",
    "collect_parallel",
    "collect_recovery",
    "collect_serve",
    "collect_system",
    "collect_trace",
    "is_span",
    "read_jsonl_trace",
    "system_counters",
]
