"""Trace recorders: the sink side of the tracing subsystem.

A recorder receives span and event dicts from the access pipeline (see
:mod:`repro.observability.spans` for the schema).  Three implementations:

* :class:`NullRecorder` -- the disabled state.  Components never consult
  a recorder directly; they check ``recorder is None`` (or the
  ``enabled`` flag) before building a span, so disabled tracing costs
  one attribute read per access and the golden ``SimResult`` stays
  bit-identical.
* :class:`InMemoryRecorder` -- accumulates records in a list.  Used by
  tests, the CLI report path, and the overhead benchmark.
* :class:`JsonlTraceRecorder` -- buffers records and serializes one JSON
  object per line on :meth:`close`.  Serialization uses sorted keys and
  compact separators, so a fixed-seed run produces a byte-identical
  trace file.

Recorders are deliberately synchronous and single-threaded, matching the
simulator: there is no queue or flush thread to make runs nondeterministic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from .spans import Span, is_span


class TraceRecorder:
    """Interface + disabled default.  ``enabled`` gates all emission."""

    enabled = False

    def record_span(self, span: Dict[str, Any]) -> None:  # pragma: no cover
        pass

    def record_event(self, event: str, **data: Any) -> None:  # pragma: no cover
        pass

    def close(self) -> None:  # pragma: no cover
        pass


class NullRecorder(TraceRecorder):
    """Explicit no-op recorder (``TraceRecorder`` already is one)."""


class InMemoryRecorder(TraceRecorder):
    """Collects raw record dicts in memory.

    ``next_seq`` hands out the global span sequence numbers; the emitting
    pipeline stamps them so that interleaved shards share one ordering.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._seq = 0

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def record_span(self, span: Dict[str, Any]) -> None:
        self.records.append(span)

    def record_event(self, event: str, **data: Any) -> None:
        record: Dict[str, Any] = {"event": event}
        record.update(data)
        self.records.append(record)

    # ---------------------------------------------------------------- queries
    def spans(self) -> Iterator[Span]:
        for record in self.records:
            if is_span(record):
                yield Span.from_record(record)

    def events(self) -> Iterator[Dict[str, Any]]:
        for record in self.records:
            if not is_span(record):
                yield record

    def span_count(self) -> int:
        return sum(1 for record in self.records if is_span(record))

    def phase_totals(self) -> Dict[str, int]:
        """Sum of per-phase cycles over all spans (+ ``fault`` delays).

        Mirrors the shape of ``AccessPipeline.breakdown()`` so traces can
        be reconciled against ``SimResult.extra`` phase accounting.
        """
        totals: Dict[str, int] = {}
        fault = 0
        for record in self.records:
            if not is_span(record):
                continue
            for name, cycles in record["phases"].items():
                totals[name] = totals.get(name, 0) + cycles
            fault += record.get("fault_delay", 0)
        totals["fault"] = fault
        return totals


class JsonlTraceRecorder(InMemoryRecorder):
    """Writes the trace as one compact JSON object per line on close.

    Buffering until :meth:`close` keeps file I/O out of the simulated
    access path entirely -- the per-access cost is identical to
    :class:`InMemoryRecorder` -- and makes the written bytes a pure
    function of the recorded dicts.
    """

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
                fh.write("\n")


def read_jsonl_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def attach_recorder(backend, recorder: Optional[TraceRecorder]):
    """Attach ``recorder`` to a backend (single controller or sharded bank).

    Returns the recorder for chaining.  Backends without tracing support
    (plain DRAM / insecure baselines) are left untouched.
    """
    setter = getattr(backend, "set_recorder", None)
    if setter is not None:
        setter(recorder)
    return recorder
