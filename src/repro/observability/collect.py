"""Metric collection: one place that knows where every counter lives.

Historically each consumer walked the component graph itself -- the
profiler built one ad-hoc ``Dict[str, int]``, benchmarks another, and the
CLI a third.  This module centralizes that walk: :func:`collect_system`
samples a finished :class:`~repro.sim.system.SecureSystem` into a
:class:`~repro.observability.metrics.MetricsRegistry` under stable
dot-separated names, and :func:`system_counters` flattens the registry
back into the legacy profiler key set (the part after the first dot), so
existing artifacts keep their schema.

Collection is snapshot-style: components keep owning their cheap inline
counters (dataclass fields, bare attributes -- the hot path never touches
a registry), and the registry is populated by copying after the run.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import CycleHistogram, MetricsRegistry
from .recorder import InMemoryRecorder
from .spans import is_span


def _treetop_flushes(registry: MetricsRegistry, prefix: str, oram) -> None:
    """Export ``{prefix}.treetop_flushes`` / ``.treetop_flushed_buckets``
    when the controller's tree carries a treetop cache."""
    cache = getattr(getattr(oram, "tree", None), "treetop", None)
    if cache is None:
        return
    registry.counter(f"{prefix}.treetop_flushes").set(cache.flushes)
    registry.counter(f"{prefix}.treetop_flushed_buckets").set(cache.flushed_buckets)


def collect_system(system, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Sample every component counter of a finished system run.

    Registry names group by component: ``cache.*``, ``backend.*``,
    ``oram.*``, ``pipeline.*``, ``bank.*``, ``faults.*``, ``scheme.*``.
    The flat legacy key of each metric is the name after the first dot.
    """
    registry = registry if registry is not None else MetricsRegistry()
    hierarchy = system.hierarchy
    registry.counter("cache.l1_hits").set(hierarchy.l1.hits)
    registry.counter("cache.l1_misses").set(hierarchy.l1.misses)
    registry.counter("cache.llc_hits").set(hierarchy.llc.hits)
    registry.counter("cache.llc_misses").set(hierarchy.llc.misses)
    registry.counter("cache.llc_evictions").set(hierarchy.llc.evictions)
    registry.counter("cache.llc_tag_probes").set(hierarchy.llc.probe_count)

    backend = system.backend
    stats = backend.stats
    registry.counter("backend.demand_requests").set(stats.demand_requests)
    registry.counter("backend.write_accesses").set(stats.write_accesses)
    registry.counter("backend.posmap_accesses").set(stats.posmap_accesses)
    registry.counter("backend.dummy_accesses").set(stats.dummy_accesses)
    registry.counter("backend.memory_accesses").set(stats.memory_accesses)

    oram = getattr(backend, "oram", None)
    if oram is not None:
        registry.gauge("oram.stash_max_occupancy").set(oram.stash.max_occupancy)
        registry.counter("oram.stash_soft_overflows").set(oram.stash_soft_overflows)
        registry.counter("oram.real_path_accesses").set(oram.real_accesses)
        registry.counter("oram.dummy_path_accesses").set(oram.dummy_accesses)

    # Per-phase pipeline attribution: a single controller exposes its
    # pipeline directly; a sharded bank sums over its channels.
    pipeline = getattr(backend, "pipeline", None)
    if pipeline is not None:
        for name, cycles in pipeline.breakdown().items():
            registry.counter(f"pipeline.phase_{name}_cycles").set(cycles)
    elif hasattr(backend, "phase_breakdown"):
        for name, cycles in backend.phase_breakdown().items():
            registry.counter(f"pipeline.phase_{name}_cycles").set(cycles)
        registry.gauge("bank.num_shards").set(backend.num_shards)
        health = getattr(backend, "health", None)
        if health is not None:
            health.to_registry(registry)

    # Memory-interconnect occupancy: per-channel gauges/counters for a
    # single controller, per-shard prefixes for a sharded bank.  The
    # treetop flush counter lives on the functional tree (write-back is a
    # tree-side event) but is exported under the interconnect namespace
    # next to its hit/bytes-saved siblings.
    interconnect = getattr(backend, "interconnect", None)
    if interconnect is not None:
        interconnect.to_registry(registry)
        _treetop_flushes(registry, "interconnect", getattr(backend, "oram", None))
    elif hasattr(backend, "shards"):
        for index, shard in enumerate(backend.shards):
            shard_interconnect = getattr(shard, "interconnect", None)
            if shard_interconnect is not None:
                shard_interconnect.to_registry(
                    registry, prefix=f"interconnect.shard{index}"
                )
                _treetop_flushes(
                    registry,
                    f"interconnect.shard{index}",
                    getattr(shard, "oram", None),
                )

    injector = getattr(backend, "injector", None)
    if injector is not None:
        registry.counter("faults.transient_faults").set(stats.transient_faults)
        registry.counter("faults.fault_retries").set(stats.fault_retries)
        registry.counter("faults.fault_delay_cycles").set(stats.fault_delay_cycles)
        registry.counter("faults.forced_evictions").set(stats.forced_evictions)
        registry.counter("faults.injected_faults").set(injector.stats.total_injected)

    scheme = getattr(backend, "scheme", None)
    if scheme is not None:
        registry.counter("scheme.merges").set(scheme.stats.merges)
        registry.counter("scheme.breaks").set(scheme.stats.breaks)
        registry.counter("scheme.prefetched_blocks").set(scheme.stats.prefetched_blocks)
        registry.counter("scheme.prefetch_hits").set(scheme.stats.prefetch_hits)
        registry.counter("scheme.prefetch_misses").set(scheme.stats.prefetch_misses)
    return registry


#: serve.* counters forced to exist (as zero) in every collection -- a
#: report that says 0 sheds beats one that silently omits the counter
_SERVE_COUNTERS = (
    "serve.offered",
    "serve.admitted",
    "serve.served",
    "serve.shed",
    "serve.shed_queue_full",
    "serve.shed_backlog",
    "serve.shed_pressure",
    "serve.coalesced",
    "serve.rerouted",
    "serve.fallback_issues",
    "serve.batches",
    "serve.full_closes",
    "serve.deadline_closes",
    "serve.drain_closes",
    "serve.deadline_misses",
)


def collect_serve(frontend, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Copy a :class:`~repro.serve.ServingFrontEnd`'s telemetry across.

    The front end populates its own registry as the event loop runs
    (``serve.*`` counters, per-tenant queue-peak gauges, and
    admission->completion / queue-wait :class:`CycleHistogram`\\ s); this
    copies the live values into *registry*, forces the standard counter
    set to exist, and adds the bank-level ``bank.num_shards`` gauge plus
    any attached health plane's ``health.*`` instruments -- one collection
    call gives the full serving picture.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for instrument in frontend.registry:
        if isinstance(instrument, CycleHistogram):
            target = registry.histogram(instrument.name)
            target.counts = list(instrument.counts)
            target.total = instrument.total
            target.sum = instrument.sum
        elif instrument.kind == "gauge":
            registry.gauge(instrument.name).set(instrument.value)
        else:
            registry.counter(instrument.name).set(instrument.value)
    for name in _SERVE_COUNTERS:
        registry.counter(name)
    registry.gauge("bank.num_shards").set(frontend.bank.num_shards)
    health = getattr(frontend.bank, "health", None)
    if health is not None:
        health.to_registry(registry)
    return registry


def collect_parallel(runtime, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Merge a ``ParallelShardRuntime``'s worker telemetry into *registry*.

    The runtime populates ``parallel.worker<i>.queue_depth`` gauges,
    ``.batches`` / ``.restarts`` / ``.hangs`` / ``.fallback_batches``
    counters, and a ``.batch_roundtrip_us`` latency histogram in its own
    registry as it pumps batches; this copies the current values across
    (create-or-get, so repeated collection is idempotent for gauges and
    overwrites counters with the live totals).  Restart and hang counters
    are forced to exist for every worker -- a report that says ``0`` beats
    one that silently omits the healthy shards -- and a health control
    plane, when attached, lands under its usual ``health.*`` names.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for instrument in runtime.registry:
        if isinstance(instrument, CycleHistogram):
            target = registry.histogram(instrument.name)
            target.counts = list(instrument.counts)
            target.total = instrument.total
            target.sum = instrument.sum
        elif instrument.kind == "gauge":
            registry.gauge(instrument.name).set(instrument.value)
        else:
            registry.counter(instrument.name).set(instrument.value)
    registry.gauge("parallel.num_workers").set(runtime.num_workers)
    for index, restarts in enumerate(runtime.worker_restarts()):
        registry.counter(f"parallel.worker{index}.restarts").set(restarts)
    for index, hangs in enumerate(runtime.worker_hangs()):
        registry.counter(f"parallel.worker{index}.hangs").set(hangs)
    health = getattr(runtime, "health", None)
    if health is not None:
        health.to_registry(registry)
    return registry


def collect_recovery(recovery, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register a :class:`~repro.faults.resilient.RecoveryStats` snapshot
    under ``recovery.*`` names."""
    registry = registry if registry is not None else MetricsRegistry()
    for key, value in recovery.as_dict().items():
        registry.counter(f"recovery.{key}").set(value)
    return registry


def collect_trace(
    recorder: InMemoryRecorder, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Distill a recorded trace into registry metrics.

    Produces per-kind span counters (``trace.spans.demand`` ...), a
    per-kind latency :class:`CycleHistogram`, per-phase cycle counters
    matching the pipeline breakdown, and a stash-occupancy histogram --
    the summary the ``repro trace`` report prints.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for record in recorder.records:
        if not is_span(record):
            registry.counter(f"trace.events.{record['event']}").inc()
            continue
        kind = record["kind"]
        registry.counter(f"trace.spans.{kind}").inc()
        registry.histogram(f"trace.latency.{kind}").record(
            record["end"] - record["start"]
        )
        registry.histogram("trace.stash_occupancy").record(record["stash"])
        for name, cycles in record["phases"].items():
            registry.counter(f"trace.phase_{name}_cycles").inc(cycles)
        registry.counter("trace.phase_fault_cycles").inc(record["fault_delay"])
        registry.counter("trace.retries").inc(record["retries"])
        registry.counter("trace.merges").inc(record["merges"])
        registry.counter("trace.breaks").inc(record["breaks"])
    return registry


def system_counters(system) -> Dict[str, int]:
    """Legacy flat counter dict (the profiler/benchmark artifact schema).

    Key = registry name after the first dot; the key set is exactly what
    ``Profiler._collect_counters`` used to hand-build.
    """
    counters: Dict[str, int] = {}
    for instrument in collect_system(system):
        if isinstance(instrument, CycleHistogram):
            continue
        counters[instrument.name.split(".", 1)[1]] = instrument.value
    return counters
